"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP 660
editable installs are unavailable offline; this file enables
``pip install -e . --no-use-pep517`` (and plain ``python setup.py develop``).
Package metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
