"""Resource governance: budgets, deadlines, fault injection, recovery.

The robustness contract of :mod:`repro.runtime`, asserted end to end:

* :class:`repro.runtime.Budget` semantics — deadlines and cancellation
  raise at checkpoints, model budgets accumulate, word caps surface as
  ``MemoryError`` so the tier-demotion handlers absorb them;
* the hypothesis interrupt/resume suite — a deadline, cancellation or
  budget raise mid-:class:`repro.sat.allsat.CubeStream` leaves the
  solver resumable, and the completed stream is exactly the
  uninterrupted one (duplicate-free and lossless), with clause learning
  on and off (``REPRO_CDCL``);
* the deterministic fault registry (``REPRO_FAULTS``) and the
  crash-tolerant pool — masks stay bit-identical for every injected
  worker-crash pattern, and compile OOMs demote one tier down with the
  demotion counters fired.
"""

import contextlib
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import runtime
from repro.logic import bitmodels, shards, sparse
from repro.logic.bitmodels import BitAlphabet, BitModelSet
from repro.logic.formula import Var, big_and, big_or, lnot
from repro.logic.shards import ShardedTable, pointwise_select
from repro.revision.batch import BatchCache, revise_many
from repro.revision.model_based import _tier_attempts
from repro.revision.registry import get_operator
from repro.runtime import faults
from repro.runtime import pool as rpool
from repro.sat import CnfInstance, bit_models, enumerate_models_blocking
from repro.sat.allsat import CubeStream


@pytest.fixture(autouse=True)
def disarm_faults():
    """Every test leaves the fault registry disarmed and counters clean."""
    yield
    faults.reset("")


@contextlib.contextmanager
def forced_tiers(table_max=0, shard_max=0):
    saved = (bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS)
    bitmodels._TABLE_MAX_LETTERS = table_max
    shards.SHARD_MAX_LETTERS = shard_max
    try:
        yield
    finally:
        bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS = saved


@contextlib.contextmanager
def checkpoint_interval(interval):
    saved = runtime.CHECKPOINT_INTERVAL
    runtime.CHECKPOINT_INTERVAL = interval
    try:
        yield
    finally:
        runtime.CHECKPOINT_INTERVAL = saved


# ---------------------------------------------------------------------------
# Budget semantics
# ---------------------------------------------------------------------------


class TestBudget:
    def test_checkpoint_noop_without_budget(self):
        runtime.checkpoint()  # must not raise
        assert runtime.current() is None

    def test_deadline_raises_engine_timeout(self):
        with runtime.Budget(deadline=0.0) as budget:
            time.sleep(0.002)
            with pytest.raises(runtime.EngineTimeout):
                runtime.checkpoint()
            assert budget.expired()
            assert budget.remaining() == 0.0
        assert runtime.current() is None

    def test_cancel_raises_cancelled(self):
        with runtime.Budget() as budget:
            runtime.checkpoint()  # fine until cancelled
            budget.cancel()
            assert budget.cancelled
            with pytest.raises(runtime.Cancelled):
                runtime.checkpoint()
        # Cancelled is an EngineTimeout: one except clause covers both.
        assert issubclass(runtime.Cancelled, runtime.EngineTimeout)

    def test_model_budget_accumulates(self):
        with runtime.Budget(max_models=10) as budget:
            runtime.charge_models(6)
            runtime.charge_models(4)
            assert budget.models_charged == 10
            with pytest.raises(runtime.BudgetExceeded):
                runtime.charge_models(1)

    def test_word_cap_is_a_memory_error(self):
        with runtime.Budget(max_words=100):
            runtime.charge_words(100, "fits")
            with pytest.raises(MemoryError):
                runtime.charge_words(101, "does not")
        with pytest.raises(runtime.MemoryBudgetExceeded):
            with runtime.Budget(max_words=1):
                runtime.charge_words(2)

    def test_innermost_budget_governs(self):
        with runtime.Budget(max_models=100) as outer:
            with runtime.Budget(max_models=2):
                assert runtime.current() is not outer
                with pytest.raises(runtime.BudgetExceeded):
                    runtime.charge_models(3)
            assert runtime.current() is outer
            runtime.charge_models(3)  # outer allows it

    def test_budget_reusable_counters_restart(self):
        budget = runtime.Budget(max_models=1)
        for _ in range(3):
            with budget:
                runtime.charge_models(1)
        assert budget.models_charged == 1

    def test_allows_fanout(self):
        assert runtime.allows_fanout()
        with runtime.Budget(max_models=5, max_words=10):
            # Pure accounting budgets fan out fine: charges happen in
            # the parent when results are combined.
            assert runtime.allows_fanout()
        with runtime.Budget(deadline=60.0):
            assert not runtime.allows_fanout()
        with runtime.Budget() as budget:
            assert runtime.allows_fanout()
            budget.cancel()
            assert not runtime.allows_fanout()

    def test_remaining_counts_down(self):
        with runtime.Budget(deadline=60.0) as budget:
            remaining = budget.remaining()
            assert 0.0 < remaining <= 60.0
        assert runtime.Budget().remaining() is None


# ---------------------------------------------------------------------------
# Fault registry
# ---------------------------------------------------------------------------


class TestFaults:
    def test_disarmed_by_default(self):
        faults.reset("")
        assert not faults.ACTIVE
        assert faults.trip("worker-crash") is None

    def test_trip_fires_on_the_armed_occurrence_only(self):
        faults.reset("worker-crash@2")
        assert faults.ACTIVE
        assert faults.trip("worker-crash") is None
        fired = faults.trip("worker-crash")
        assert fired is not None and fired == ""
        assert faults.trip("worker-crash") is None

    def test_param_and_multiple_entries(self):
        faults.reset("propagate-delay@1:0.25; alloc-oom@3")
        assert faults.armed("propagate-delay")
        assert faults.armed("alloc-oom")
        assert faults.trip("propagate-delay") == "0.25"
        assert faults.trip("alloc-oom") is None
        assert faults.trip("alloc-oom") is None
        assert faults.trip("alloc-oom") == ""

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            faults.reset("worker-crush@1")
        with pytest.raises(ValueError):
            faults.reset("worker-crash@0")

    def test_random_index_is_seed_deterministic(self):
        faults.reset("seed=7;worker-crash@r")
        first = faults._targets["worker-crash"][0]
        faults.reset("seed=7;worker-crash@r")
        assert faults._targets["worker-crash"][0] == first
        assert 1 <= first <= 8
        faults.reset("seed=8;worker-crash@r")
        other = faults._targets["worker-crash"][0]
        assert 1 <= other <= 8

    def test_reset_restarts_counters(self):
        faults.reset("alloc-oom@1")
        assert faults.trip("alloc-oom") is not None
        faults.reset("alloc-oom@1")
        assert faults.trip("alloc-oom") is not None

    def test_alloc_oom_site(self):
        faults.reset("alloc-oom@1")
        with pytest.raises(MemoryError):
            runtime.charge_words(1, "unit test")
        runtime.charge_words(1, "unit test")  # fault spent


# ---------------------------------------------------------------------------
# Crash-tolerant pools
# ---------------------------------------------------------------------------


def _square(value):
    return value * value


def _boom(value):
    raise RuntimeError(f"boom {value}")


class TestPools:
    def test_map_with_recovery_ordered(self):
        jobs = list(range(7))
        assert rpool.map_with_recovery(_square, jobs, workers=3) == [
            value * value for value in jobs
        ]
        assert rpool.map_with_recovery(_square, [], workers=3) == []

    @pytest.mark.parametrize("victim", [1, 2, 3, 4])
    def test_worker_crash_patterns_recover(self, victim):
        crashes = runtime.STATS["worker_crashes"]
        retries = runtime.STATS["inline_retries"]
        faults.reset(f"worker-crash@{victim}")
        jobs = list(range(4))
        assert rpool.map_with_recovery(_square, jobs, workers=2) == [
            value * value for value in jobs
        ]
        assert runtime.STATS["worker_crashes"] == crashes + 1
        assert runtime.STATS["inline_retries"] > retries

    def test_map_threads_matches_serial(self):
        items = list(range(9))
        expected = [value * value for value in items]
        assert rpool.map_threads(_square, items, workers=1) == expected
        assert rpool.map_threads(_square, items, workers=4) == expected

    def test_map_threads_propagates_errors(self):
        with pytest.raises(RuntimeError, match="boom"):
            rpool.map_threads(_boom, [1, 2, 3], workers=2)


# ---------------------------------------------------------------------------
# Interrupt/resume: the CubeStream contract
# ---------------------------------------------------------------------------


@st.composite
def cnf_cases(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    clause_count = draw(st.integers(min_value=0, max_value=9))
    instance = CnfInstance(num_vars)
    for _ in range(clause_count):
        size = draw(st.integers(min_value=1, max_value=3))
        instance.add_clause(
            [
                draw(st.sampled_from([1, -1]))
                * draw(st.integers(min_value=1, max_value=num_vars))
                for _ in range(size)
            ]
        )
    return instance


def _expand(cubes):
    models = []
    for cube in cubes:
        models.extend(cube.iter_models())
    return models


def _drain_with_interrupts(stream, mode):
    """Drive *stream* to completion, interrupting as hard as possible.

    ``mode="cancel"`` cancels the governing budget after every delivered
    cube (the next checkpoint — often mid-search with the interval at 1 —
    raises :class:`repro.runtime.Cancelled`); ``mode="models"`` grants
    the smallest workable model allowance per round so
    :class:`repro.runtime.BudgetExceeded` fires on nearly every delivery
    (the allowance doubles only when a round delivers nothing, since a
    wide cube charges all its covered models at once).  Either way the
    stream must complete exactly.
    """
    collected = []
    allowance = 1
    while True:
        budget = (
            runtime.Budget() if mode == "cancel"
            else runtime.Budget(max_models=allowance)
        )
        delivered = 0
        try:
            with budget:
                for cube in stream.cubes():
                    collected.append(cube)
                    delivered += 1
                    if mode == "cancel":
                        budget.cancel()
            return collected
        except (runtime.EngineTimeout, runtime.BudgetExceeded):
            allowance = allowance * 2 if delivered == 0 else 1


class TestInterruptResume:
    @settings(max_examples=120, deadline=None)
    @given(cnf_cases(), st.sampled_from(["cancel", "models"]),
           st.booleans())
    def test_interrupted_stream_is_lossless_and_duplicate_free(
        self, instance, mode, cdcl
    ):
        reference = set(enumerate_models_blocking(instance, None))
        saved = os.environ.get("REPRO_CDCL")
        try:
            os.environ["REPRO_CDCL"] = "1" if cdcl else "0"
            with checkpoint_interval(1):
                cubes = _drain_with_interrupts(CubeStream(instance), mode)
        finally:
            if saved is None:
                os.environ.pop("REPRO_CDCL", None)
            else:
                os.environ["REPRO_CDCL"] = saved
        models = _expand(cubes)
        assert len(models) == len(set(models))  # duplicate-free
        assert set(models) == reference  # lossless
        assert sum(cube.model_count() for cube in cubes) == len(reference)

    def test_deadline_interrupts_and_stream_resumes(self):
        # A slow propagate (injected) plus a tiny deadline: the timeout
        # lands mid-enumeration; re-entering cubes() finishes the stream.
        instance = CnfInstance(5)
        for i in range(1, 5):
            instance.add_clause([-i, i + 1])
        reference = set(enumerate_models_blocking(instance, None))
        stream = CubeStream(instance)
        faults.reset("propagate-delay@1:0.05")
        collected = []
        with checkpoint_interval(1):
            with pytest.raises(runtime.EngineTimeout):
                with runtime.Budget(deadline=0.01):
                    for cube in stream.cubes():
                        collected.append(cube)
            faults.reset("")
            collected.extend(stream.cubes())
        models = _expand(collected)
        assert len(models) == len(set(models))
        assert set(models) == reference

    def test_batch_driver_checkpoints_between_pairs(self):
        a, b = Var("a"), Var("b")
        pairs = [(big_and([a, b]), lnot(a))] * 3
        with runtime.Budget() as budget:
            budget.cancel()
            with pytest.raises(runtime.Cancelled):
                revise_many(pairs, "dalal")


# ---------------------------------------------------------------------------
# Tier demotion
# ---------------------------------------------------------------------------


def _bit_sets(letter_count=6):
    alphabet = BitAlphabet([chr(ord("a") + i) for i in range(letter_count)])
    t_bits = BitModelSet(alphabet, [0, 3, 5, 9])
    p_bits = BitModelSet(alphabet, [1, 2, 6, 7, 12])
    return t_bits, p_bits


class TestTierDemotion:
    def test_attempts_end_on_masks(self):
        alphabet = BitAlphabet([chr(ord("a") + i) for i in range(6)])
        with forced_tiers(table_max=0, shard_max=10):
            attempts = _tier_attempts(alphabet, 8)
            assert attempts[0] == "sharded"
            assert attempts[-1] == "masks"
            assert "sparse" in attempts
            assert _tier_attempts(alphabet, None) == ["sharded", "masks"]
        with forced_tiers(table_max=10, shard_max=10):
            assert _tier_attempts(alphabet, 8) == ["table", "masks"]

    def test_compile_oom_demotes_with_identical_masks(self):
        # Fresh model sets per call: compiled carriers are cached on the
        # BitModelSet, and a cached table never re-allocates.
        operator = get_operator("dalal")
        with forced_tiers(table_max=0, shard_max=10):
            baseline = operator.revise_sets(*_bit_sets())
            assert baseline.engine_tier == "sharded"
            before = runtime.STATS["demotions"]
            faults.reset("alloc-oom@1")
            demoted = operator.revise_sets(*_bit_sets())
        assert demoted.engine_tier.startswith("sharded-demoted-")
        assert set(demoted.bit_model_set.masks) == set(
            baseline.bit_model_set.masks
        )
        assert runtime.STATS["demotions"] > before

    def test_word_budget_demotes_like_real_oom(self):
        operator = get_operator("winslett")
        with forced_tiers(table_max=0, shard_max=10):
            baseline = operator.revise_sets(*_bit_sets())
            with runtime.Budget(max_words=0):
                demoted = operator.revise_sets(*_bit_sets())
        assert demoted.engine_tier.startswith("sharded-demoted-")
        assert set(demoted.bit_model_set.masks) == set(
            baseline.bit_model_set.masks
        )

    def test_shard_compile_oom_demotes_bit_models(self):
        names = [chr(ord("a") + i) for i in range(7)]
        formula = big_or([
            big_and([Var(names[0]), Var(names[1])]),
            big_and([lnot(Var(names[2])), Var(names[3]), Var(names[6])]),
        ])
        with forced_tiers(table_max=0, shard_max=10):
            baseline = bit_models(formula, names)
            before = runtime.STATS.get("demotions:sharded->masks", 0)
            faults.reset("shard-compile-oom@1")
            demoted = bit_models(formula, names)
            assert runtime.STATS["demotions:sharded->masks"] == before + 1
        assert set(demoted.masks) == set(baseline.masks)

    def test_warm_defers_tier_forcing_on_oom(self, monkeypatch):
        a, b, c = Var("a"), Var("b"), Var("c")
        theory = big_or([big_and([a, b]), c])
        with forced_tiers(table_max=0, shard_max=10):
            clean = BatchCache().warm(theory)
            cache = BatchCache()

            def refuse(self):
                raise MemoryError("no bitplane for you")

            monkeypatch.setattr(BitModelSet, "sharded", refuse)
            bits = cache.warm(theory)
            assert cache.tier_counts["warm-sharded-deferred"] == 1
        assert set(bits.masks) == set(clean.masks)


# ---------------------------------------------------------------------------
# Engine fan-outs under injected crashes: masks stay bit-identical
# ---------------------------------------------------------------------------


class TestEngineCrashRecovery:
    @pytest.mark.parametrize("victim", [1, 2])
    def test_pure_int_compile_survives_worker_crash(self, victim):
        names = [chr(ord("a") + i) for i in range(8)]
        formula = big_or([
            big_and([Var(names[0]), lnot(Var(names[4]))]),
            big_and([Var(names[2]), Var(names[7])]),
        ])
        serial = ShardedTable.from_formula(
            formula, names, backend="int", shard_bits=64, processes=1
        )
        faults.reset(f"worker-crash@{victim}")
        recovered = ShardedTable.from_formula(
            formula, names, backend="int", shard_bits=64, processes=2
        )
        assert recovered.int_shards() == serial.int_shards()

    @pytest.mark.parametrize("victim", [1, 2])
    def test_pointwise_int_survives_worker_crash(self, victim):
        alphabet = BitAlphabet([chr(ord("a") + i) for i in range(8)])
        p_table = ShardedTable.from_masks(
            alphabet, [1, 2, 3, 64, 130, 255], backend="int", shard_bits=64
        )
        t_masks = [0, 7, 9, 100, 200, 255]
        serial = pointwise_select("minimal", p_table, t_masks, processes=1)
        faults.reset(f"worker-crash@{victim}")
        recovered = pointwise_select(
            "minimal", p_table, t_masks, processes=2
        )
        assert recovered.int_shards() == serial.int_shards()

    def test_sparse_fanout_survives_worker_crash(self):
        alphabet = BitAlphabet([f"w{i:02d}" for i in range(40)])
        p_set = sparse.SparseModelSet.from_masks(
            alphabet, [1, 4, (1 << 35) | 1, 1 << 39], backend="int"
        )
        t_masks = [0, 5, 1 << 35, (1 << 39) | 3]
        serial = sparse.pointwise_select(
            "minimal", p_set, t_masks, processes=1
        )
        faults.reset("worker-crash@1")
        recovered = sparse.pointwise_select(
            "minimal", p_set, t_masks, processes=2
        )
        assert recovered.mask_list() == serial.mask_list()

    def test_deadline_disables_process_fanout(self):
        alphabet = BitAlphabet([chr(ord("a") + i) for i in range(8)])
        p_table = ShardedTable.from_masks(
            alphabet, [1, 2, 3], backend="int", shard_bits=64
        )
        # Under a deadline the fan-out must not engage: an armed
        # worker-crash fault would make any dispatched pool break, so a
        # correct serial path never consumes it.
        faults.reset("worker-crash@1")
        with runtime.Budget(deadline=60.0):
            result = pointwise_select(
                "minimal", p_table, [0, 7, 9, 100], processes=2
            )
        assert faults.trip("worker-crash") is not None  # still armed
        serial = pointwise_select("minimal", p_table, [0, 7, 9, 100],
                                  processes=1)
        assert result.int_shards() == serial.int_shards()
