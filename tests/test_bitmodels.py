"""Bitmask model-set engine: primitives and engine equivalence.

Three layers of assurance:

* unit tests for :class:`BitAlphabet` round-tripping, truth-table columns,
  the mask-level ``min⊆``/``max⊆`` pruning, and the table transforms
  (XOR translation, upward closure, minimal elements, Hamming balls);
* hypothesis tests asserting the bit-parallel :func:`truth_table` agrees
  with per-model :meth:`Formula.evaluate` on random formulas;
* hypothesis tests asserting the bitmask-backed operators return model
  sets identical to the retained frozenset reference engine
  (:mod:`repro.revision.reference`) on random ``(T, P)`` pairs, through
  both the table path and the mask-loop path of every operator.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Theory, land, lnot, lor, parse, var
from repro.logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    iter_set_bits,
    max_subset_masks,
    min_cardinality_masks,
    min_hamming_distance_tables,
    min_subset_masks,
    minimal_elements_table,
    table_of_masks,
    truth_table,
    upward_closure_table,
    xor_translate_table,
)
from repro.revision import (
    MODEL_BASED_NAMES,
    get_operator,
    reference_models,
    reference_revise,
    reference_select,
    revise,
)
from repro.sat import bit_models

LETTERS = ["a", "b", "c", "d", "e"]


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def formulas(letters=LETTERS, max_leaves=8):
    atoms = st.sampled_from(letters).map(var)
    literals = atoms | atoms.map(lnot)
    return st.recursive(
        literals,
        lambda children: st.tuples(children, children).map(
            lambda pair: land(*pair)
        )
        | st.tuples(children, children).map(lambda pair: lor(*pair))
        | st.tuples(children, children).map(lambda pair: pair[0] ^ pair[1])
        | st.tuples(children, children).map(lambda pair: pair[0] >> pair[1]),
        max_leaves=max_leaves,
    )


mask_lists = st.lists(st.integers(min_value=0, max_value=63), max_size=14)


# ---------------------------------------------------------------------------
# BitAlphabet round-tripping
# ---------------------------------------------------------------------------


class TestBitAlphabet:
    def test_letters_sorted_and_deduplicated(self):
        alphabet = BitAlphabet(["c", "a", "b", "a"])
        assert alphabet.letters == ("a", "b", "c")

    def test_mask_set_round_trip_all_masks(self):
        alphabet = BitAlphabet("dcba")
        for mask in alphabet.all_masks():
            assert alphabet.mask_of(alphabet.set_of(mask)) == mask

    @given(st.sets(st.sampled_from(LETTERS)))
    def test_set_mask_round_trip(self, model):
        alphabet = BitAlphabet(LETTERS)
        assert alphabet.set_of(alphabet.mask_of(model)) == frozenset(model)

    def test_foreign_letter_rejected(self):
        with pytest.raises(ValueError):
            BitAlphabet("ab").mask_of({"z"})

    def test_column_matches_bit_of_index(self):
        alphabet = BitAlphabet("abc")
        for name in alphabet.letters:
            column = alphabet.column(name)
            bit = alphabet.bit(name)
            for mask in alphabet.all_masks():
                assert (column >> mask) & 1 == (mask >> bit) & 1

    def test_popcount_layers_partition_the_space(self):
        alphabet = BitAlphabet("abcde")
        layers = alphabet.popcount_layers()
        assert len(layers) == 6
        for k, layer in enumerate(layers):
            assert set(iter_set_bits(layer)) == {
                mask for mask in alphabet.all_masks() if mask.bit_count() == k
            }

    def test_empty_alphabet(self):
        alphabet = BitAlphabet([])
        assert alphabet.table_bits == 1
        assert alphabet.mask_of([]) == 0
        assert alphabet.set_of(0) == frozenset()


# ---------------------------------------------------------------------------
# Mask-level min/max subset pruning
# ---------------------------------------------------------------------------


class TestMaskSubsetOperations:
    @given(mask_lists)
    def test_min_subset_masks_matches_naive(self, masks):
        unique = set(masks)
        naive = {
            m for m in unique
            if not any(o != m and o & m == o for o in unique)
        }
        assert set(min_subset_masks(masks)) == naive

    @given(mask_lists)
    def test_max_subset_masks_matches_naive(self, masks):
        unique = set(masks)
        naive = {
            m for m in unique
            if not any(o != m and o & m == m for o in unique)
        }
        assert set(max_subset_masks(masks)) == naive

    def test_min_cardinality_masks(self):
        assert min_cardinality_masks([0b111, 0b11, 0b1000]) == 1
        assert min_cardinality_masks(iter([0b1, 0b0, 0b11])) == 0
        with pytest.raises(ValueError):
            min_cardinality_masks([])


# ---------------------------------------------------------------------------
# Truth-table transforms
# ---------------------------------------------------------------------------


class TestTableTransforms:
    @given(mask_lists, st.integers(min_value=0, max_value=63))
    def test_xor_translate(self, masks, shift):
        alphabet = BitAlphabet("abcdef")
        table = table_of_masks(masks)
        translated = xor_translate_table(table, shift, alphabet)
        assert set(iter_set_bits(translated)) == {m ^ shift for m in set(masks)}

    @given(mask_lists)
    def test_upward_closure(self, masks):
        alphabet = BitAlphabet("abcdef")
        closure = upward_closure_table(table_of_masks(masks), alphabet)
        expected = {
            candidate
            for candidate in range(64)
            if any(m & candidate == m for m in set(masks))
        }
        assert set(iter_set_bits(closure)) == expected

    @given(mask_lists)
    def test_minimal_elements_table_matches_pruning(self, masks):
        alphabet = BitAlphabet("abcdef")
        minimal = minimal_elements_table(table_of_masks(masks), alphabet)
        assert set(iter_set_bits(minimal)) == set(min_subset_masks(masks))

    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=8),
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=8),
    )
    def test_min_hamming_distance(self, left, right):
        alphabet = BitAlphabet("abcdef")
        distance, ball = min_hamming_distance_tables(
            table_of_masks(left), table_of_masks(right), alphabet
        )
        expected = min((l ^ r).bit_count() for l in left for r in right)
        assert distance == expected
        selected = set(iter_set_bits(ball & table_of_masks(right)))
        assert selected == {
            r for r in right
            if min((l ^ r).bit_count() for l in left) == distance
        }

    def test_iter_set_bits_large_value(self):
        positions = {0, 7, 64, 1000, 4095}
        value = sum(1 << p for p in positions)
        assert set(iter_set_bits(value)) == positions
        assert list(iter_set_bits(0)) == []


# ---------------------------------------------------------------------------
# Bit-parallel evaluation vs per-model evaluate
# ---------------------------------------------------------------------------


class TestBitParallelEvaluation:
    @settings(max_examples=150, deadline=None)
    @given(formulas())
    def test_truth_table_agrees_with_evaluate(self, formula):
        alphabet = BitAlphabet(LETTERS)
        table = truth_table(formula, alphabet)
        for mask in alphabet.all_masks():
            assert bool(table >> mask & 1) == formula.evaluate(
                alphabet.set_of(mask)
            ), mask

    @settings(max_examples=75, deadline=None)
    @given(formulas())
    def test_bit_models_agrees_with_reference_enumeration(self, formula):
        bits = bit_models(formula, LETTERS)
        assert bits.to_frozensets() == reference_models(formula, LETTERS)

    def test_from_formula_paper_example(self):
        formula = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        bits = BitModelSet.from_formula(formula, BitAlphabet("abcd"))
        assert bits.to_frozensets() == {
            frozenset("ab"),
            frozenset("c"),
            frozenset("bd"),
            frozenset(),
        }


# ---------------------------------------------------------------------------
# BitModelSet algebra
# ---------------------------------------------------------------------------


class TestBitModelSet:
    def test_extend_to_is_shifted_cross_product(self):
        small = BitModelSet.from_interpretations(
            ["a", "c"], [frozenset("a"), frozenset("ac")]
        )
        lifted = small.extend_to(BitAlphabet("abcd"))
        assert lifted.to_frozensets() == {
            frozenset(base) | extra
            for base in ("a", "ac")
            for extra in (
                frozenset(),
                frozenset("b"),
                frozenset("d"),
                frozenset("bd"),
            )
        }

    def test_extend_to_same_alphabet_is_identity(self):
        bits = BitModelSet.from_interpretations(["a"], [frozenset("a")])
        assert bits.extend_to(BitAlphabet(["a"])) is bits

    def test_mask_outside_alphabet_rejected(self):
        with pytest.raises(ValueError):
            BitModelSet(BitAlphabet("ab"), [0b100])

    def test_restrict_to(self):
        bits = BitModelSet.from_interpretations(
            "abc", [frozenset("ab"), frozenset("c")]
        )
        projected = bits.restrict_to(BitAlphabet("ac"))
        assert projected.to_frozensets() == {frozenset("a"), frozenset("c")}


# ---------------------------------------------------------------------------
# Engine equivalence: bitmask operators vs frozenset reference
# ---------------------------------------------------------------------------


def _random_tp(draw_seed: int, letter_count: int):
    import sys
    from pathlib import Path

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    from _util import random_tp_pair

    return random_tp_pair(draw_seed, LETTERS[:letter_count])


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=5),
        st.sampled_from(sorted(MODEL_BASED_NAMES)),
    )
    def test_operators_match_reference_engine(self, seed, letter_count, name):
        t, p = _random_tp(seed, letter_count)
        result = revise(t, p, name)
        ref_alphabet, ref_models = reference_revise(Theory([t]), p, name)
        assert result.alphabet == ref_alphabet
        assert result.model_set == ref_models

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=31), max_size=6),
        st.lists(st.integers(min_value=0, max_value=31), max_size=6),
        st.sampled_from(sorted(MODEL_BASED_NAMES)),
    )
    def test_table_and_mask_selection_paths_agree(self, t_masks, p_masks, name):
        """The two engine encodings of every selection rule coincide."""
        operator = get_operator(name)
        alphabet = BitAlphabet(LETTERS)
        t_bits = BitModelSet(alphabet, t_masks)
        p_bits = BitModelSet(alphabet, p_masks)
        via_tables = set(operator._select_tables(t_bits, p_bits)) if t_masks and p_masks else None
        via_masks = (
            set(operator._select_masks(t_bits.masks, p_bits.masks))
            if t_masks and p_masks
            else None
        )
        assert via_tables == via_masks
        reference = reference_select(
            name,
            t_bits.to_frozensets(),
            p_bits.to_frozensets(),
        )
        selected = operator._select_bits(t_bits, p_bits)
        assert selected.to_frozensets() == reference

    def test_iterated_revision_matches_pairwise_reference(self):
        t = parse("a & b & c")
        steps = [parse("~a | ~b"), parse("~c & d")]
        for name in ("winslett", "forbus", "satoh", "dalal", "weber"):
            operator = get_operator(name)
            result = operator.iterate(Theory([t]), steps)
            # Reference: extend the first revision's models by hand, then
            # re-select with the frozenset engine.
            first = revise(t, steps[0], name)
            extended = operator._extend_models(
                first.model_set, first.alphabet, result.alphabet
            )
            p_models = reference_models(steps[1], result.alphabet)
            expected = reference_select(name, extended, p_models)
            assert result.model_set == expected, name
