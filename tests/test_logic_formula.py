"""Unit tests for the formula AST: construction, evaluation, substitution."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
    cube,
    fresh_names,
    iff,
    implies,
    land,
    lnot,
    lor,
    var,
    xor,
)

a, b, c = var("a"), var("b"), var("c")


class TestConstruction:
    def test_var_identity(self):
        assert Var("a") == Var("a")
        assert Var("a") != Var("b")
        assert hash(Var("a")) == hash(Var("a"))

    def test_var_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_land_flattens(self):
        result = land(a, land(b, c))
        assert isinstance(result, And)
        assert result.operands == (a, b, c)

    def test_lor_flattens(self):
        result = lor(lor(a, b), c)
        assert isinstance(result, Or)
        assert result.operands == (a, b, c)

    def test_land_identity_and_absorbing(self):
        assert land() == TRUE
        assert land(a) == a
        assert land(a, TRUE) == a
        assert land(a, FALSE) == FALSE

    def test_lor_identity_and_absorbing(self):
        assert lor() == FALSE
        assert lor(a) == a
        assert lor(a, FALSE) == a
        assert lor(a, TRUE) == TRUE

    def test_lnot_folds(self):
        assert lnot(TRUE) == FALSE
        assert lnot(FALSE) == TRUE
        assert lnot(lnot(a)) == a

    def test_implies_folds(self):
        assert implies(TRUE, a) == a
        assert implies(FALSE, a) == TRUE
        assert implies(a, TRUE) == TRUE
        assert implies(a, FALSE) == lnot(a)

    def test_iff_xor_fold(self):
        assert iff(TRUE, a) == a
        assert iff(FALSE, a) == lnot(a)
        assert xor(FALSE, a) == a
        assert xor(TRUE, a) == lnot(a)

    def test_operator_overloads(self):
        assert (a & b) == land(a, b)
        assert (a | b) == lor(a, b)
        assert (~a) == lnot(a)
        assert (a >> b) == implies(a, b)
        assert (a ^ b) == xor(a, b)

    def test_string_coercion(self):
        assert land("a", "b") == land(a, b)


class TestEvaluation:
    def test_var(self):
        assert a.evaluate({"a"})
        assert not a.evaluate(set())

    def test_connectives(self):
        f = (a & b) | ~c
        assert f.evaluate({"a", "b", "c"})
        assert f.evaluate(set())
        assert not f.evaluate({"c"})
        assert not f.evaluate({"a", "c"})

    def test_implies(self):
        f = a >> b
        assert f.evaluate(set())
        assert f.evaluate({"b"})
        assert f.evaluate({"a", "b"})
        assert not f.evaluate({"a"})

    def test_iff_xor(self):
        assert Iff(a, b).evaluate(set())
        assert Iff(a, b).evaluate({"a", "b"})
        assert not Iff(a, b).evaluate({"a"})
        assert Xor(a, b).evaluate({"a"})
        assert not Xor(a, b).evaluate({"a", "b"})

    def test_constants(self):
        assert TRUE.evaluate(set())
        assert not FALSE.evaluate({"a"})

    def test_extra_letters_in_model_ignored(self):
        assert (a & ~b).evaluate({"a", "z"})


class TestSizeAndVars:
    def test_paper_size_counts_occurrences(self):
        # |W| = number of distinct occurrences of variables (paper Section 2).
        f = a & (a | b)
        assert f.size() == 3

    def test_size_of_constants_is_zero(self):
        assert TRUE.size() == 0
        assert (a >> a).size() == 2

    def test_variables(self):
        f = (a & b) | (~a ^ c)
        assert f.variables() == frozenset({"a", "b", "c"})

    def test_node_count(self):
        assert a.node_count() == 1
        assert (a & b).node_count() == 3


class TestSubstitution:
    def test_simple(self):
        f = a & b
        assert f.substitute({"a": c}) == (c & b)

    def test_simultaneous_not_sequential(self):
        # x := y, y := x simultaneously swaps, it must not chain.
        x, y = var("x"), var("y")
        f = x & y
        swapped = f.substitute({"x": y, "y": x})
        assert swapped == (y & x)

    def test_paper_example(self):
        # Q = x1 & (x2 | ~x3); Q[{x1,x3}/{y1,~y3}] = y1 & (x2 | ~~y3)
        x1, x2, x3 = var("x1"), var("x2"), var("x3")
        y1, y3 = var("y1"), var("y3")
        q = x1 & (x2 | Not(x3))
        result = q.substitute({"x1": y1, "x3": Not(y3)})
        assert result == land(y1, lor(x2, Not(Not(y3))))

    def test_substitute_by_formula(self):
        f = a >> b
        result = f.substitute({"a": b & c})
        assert result == implies(b & c, b)

    def test_rename(self):
        f = a & ~b
        assert f.rename({"a": "x", "b": "y"}) == (var("x") & ~var("y"))

    def test_negate_letters_proposition_4_2(self):
        # Proposition 4.2: M |= F iff M △ H |= F[H/H̄].
        f = var("x1") & (var("x2") | ~var("x3"))
        h = {"x2", "x3"}
        flipped = f.negate_letters(h)
        model = frozenset({"x1"})
        assert f.evaluate(model)
        assert flipped.evaluate(model ^ frozenset(h))

    def test_empty_mapping_returns_self(self):
        f = a & b
        assert f.substitute({}) is f


class TestHelpers:
    def test_cube_unique_model(self):
        f = cube({"a", "c"}, ["a", "b", "c"])
        assert f.evaluate({"a", "c"})
        assert not f.evaluate({"a"})
        assert not f.evaluate({"a", "b", "c"})

    def test_fresh_names_avoid_collisions(self):
        names = fresh_names("y", 3, avoid={"y0", "y2"})
        assert names == ["y1", "y3", "y4"]
        assert len(set(names)) == 3
