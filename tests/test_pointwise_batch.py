"""Batched pointwise kernels: equivalence, dispatch, and determinism.

Three layers of assurance for :func:`repro.logic.shards.pointwise_select`
and :func:`repro.logic.shards.translate_union` (the multi-model kernels the
pointwise operators run on at sharded sizes):

* hypothesis equivalence at 6-10 letters against the per-model big-int
  engine (translate / minimal-or-ring / translate-back / union), on both
  storage backends — numpy bitplanes through the mask kernels *and* the
  forced blocked-bitplane path, pure-int shard lists including artificially
  small shard widths;
* determinism: worker count (1 vs N, threads on numpy, processes on
  pure-int) and block size never change the selected table, bit for bit,
  and disabling batching (``REPRO_POINTWISE_BATCH=0``'s module flag)
  reproduces the same result;
* the operator level: winslett/forbus/borgida forced onto the sharded tier
  under a multi-worker environment still match the big-int dispatch.
"""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import bitmodels
from repro.logic import shards
from repro.logic.bitmodels import (
    BitAlphabet,
    minimal_elements_table,
    xor_translate_table,
)
from repro.logic.shards import ShardedTable, pointwise_select, translate_union

LETTERS = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]

BACKENDS = ["int"] + (["numpy"] if shards._np is not None else [])

VARIANTS = [(backend, None) for backend in BACKENDS] + [("int", 64), ("int", 256)]

KINDS = ["minimal", "ring", "union"]


@contextlib.contextmanager
def sharded_tier(table_max=1):
    saved = bitmodels._TABLE_MAX_LETTERS
    bitmodels._TABLE_MAX_LETTERS = table_max
    try:
        yield
    finally:
        bitmodels._TABLE_MAX_LETTERS = saved


@contextlib.contextmanager
def dense_kernels():
    """Zero the sparse-kernel thresholds so the blocked bitplane path runs."""
    saved = (shards._MIN_MASK_MAX, shards._RING_MASK_MAX, shards._MASK_PAIR_BUDGET)
    shards._MIN_MASK_MAX = shards._RING_MASK_MAX = shards._MASK_PAIR_BUDGET = 0
    try:
        yield
    finally:
        shards._MIN_MASK_MAX, shards._RING_MASK_MAX, shards._MASK_PAIR_BUDGET = saved


def reference_pointwise(kind, table, t_masks, alphabet):
    """The per-model big-int engine: the semantics the kernels must match."""
    selected = 0
    for model in t_masks:
        diffs = xor_translate_table(table, model, alphabet)
        if kind == "minimal":
            part = minimal_elements_table(diffs, alphabet)
        elif kind == "ring":
            part = 0
            for layer in alphabet.popcount_layers():
                part = diffs & layer
                if part:
                    break
        else:
            selected |= diffs
            continue
        selected |= xor_translate_table(part, model, alphabet)
    return selected


@st.composite
def kernel_cases(draw):
    """(letters, table value, T-model masks) over 6-10 letters."""
    n = draw(st.integers(min_value=6, max_value=10))
    alphabet = BitAlphabet(LETTERS[:n])
    table = draw(st.integers(min_value=1, max_value=alphabet.full_table))
    t_masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=alphabet.universe),
            min_size=1,
            max_size=12,
            unique=True,
        )
    )
    return alphabet, table, sorted(t_masks)


@pytest.mark.parametrize("backend,shard_bits", VARIANTS)
@pytest.mark.parametrize("kind", KINDS)
class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(kernel_cases())
    def test_matches_per_model_big_int_engine(
        self, backend, shard_bits, kind, case
    ):
        alphabet, table, t_masks = case
        p_table = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        got = pointwise_select(kind, p_table, t_masks)
        assert got.to_int() == reference_pointwise(kind, table, t_masks, alphabet)

    @settings(max_examples=15, deadline=None)
    @given(kernel_cases())
    def test_batching_disabled_agrees(self, backend, shard_bits, kind, case):
        alphabet, table, t_masks = case
        p_table = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        batched = pointwise_select(kind, p_table, t_masks)
        saved = shards.POINTWISE_BATCH
        shards.POINTWISE_BATCH = False
        try:
            legacy = pointwise_select(kind, p_table, t_masks)
        finally:
            shards.POINTWISE_BATCH = saved
        assert batched == legacy


@pytest.mark.skipif(shards._np is None, reason="numpy backend unavailable")
@pytest.mark.parametrize("kind", KINDS)
class TestNumpyPaths:
    @settings(max_examples=20, deadline=None)
    @given(kernel_cases())
    def test_blocked_bitplane_path_matches_mask_kernels(self, kind, case):
        alphabet, table, t_masks = case
        p_table = ShardedTable.from_int(alphabet, table, backend="numpy")
        sparse = pointwise_select(kind, p_table, t_masks)
        with dense_kernels():
            dense = pointwise_select(kind, p_table, t_masks)
        assert sparse == dense

    def test_thread_fanout_is_deterministic(self, kind, monkeypatch):
        alphabet = BitAlphabet(LETTERS[:9])
        table = 0x9E3779B97F4A7C15_F0E1D2C3B4A59687 % alphabet.full_table or 1
        t_masks = list(range(0, alphabet.universe, 37))
        p_table = ShardedTable.from_int(alphabet, table, backend="numpy")
        serial = pointwise_select(kind, p_table, t_masks)
        monkeypatch.setenv("REPRO_PARALLEL", "4")
        monkeypatch.setenv("REPRO_PARALLEL_BLOCK", "3")
        with dense_kernels():
            fanned = pointwise_select(kind, p_table, t_masks)
        assert fanned == serial


class TestIntProcessFanout:
    @pytest.mark.parametrize("kind", KINDS)
    def test_process_fanout_is_deterministic(self, kind):
        alphabet = BitAlphabet(LETTERS[:8])
        table = 0x0123456789ABCDEF_FEDCBA9876543210 % alphabet.full_table or 1
        t_masks = list(range(0, alphabet.universe, 23))
        p_table = ShardedTable.from_int(
            alphabet, table, backend="int", shard_bits=64
        )
        serial = pointwise_select(kind, p_table, t_masks, processes=1)
        fanned = pointwise_select(kind, p_table, t_masks, processes=3)
        assert serial == fanned
        assert serial.to_int() == reference_pointwise(
            kind, table, t_masks, alphabet
        )


class TestTranslateUnion:
    @pytest.mark.parametrize("backend,shard_bits", VARIANTS)
    def test_empty_mask_list_is_empty_table(self, backend, shard_bits):
        alphabet = BitAlphabet(LETTERS[:6])
        p_table = ShardedTable.from_int(
            alphabet, 0b1011, backend=backend, shard_bits=shard_bits
        )
        assert not translate_union(p_table, []).any()

    @settings(max_examples=15, deadline=None)
    @given(kernel_cases())
    def test_wrapper_matches_union_kind(self, case):
        alphabet, table, t_masks = case
        for backend in BACKENDS:
            p_table = ShardedTable.from_int(alphabet, table, backend=backend)
            assert translate_union(p_table, t_masks) == pointwise_select(
                "union", p_table, t_masks
            )


class TestOperatorsUnderFanout:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=3, max_value=6),
        st.sampled_from(["winslett", "forbus", "borgida"]),
    )
    def test_sharded_tier_with_workers_matches_big_int(
        self, seed, letter_count, name
    ):
        import os
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        from _util import random_tp_pair

        from repro.revision import revise

        t, p = random_tp_pair(seed, LETTERS[:letter_count])
        reference = revise(t, p, name)
        saved = {
            key: os.environ.get(key)
            for key in ("REPRO_PARALLEL", "REPRO_PARALLEL_BLOCK")
        }
        os.environ["REPRO_PARALLEL"] = "2"
        os.environ["REPRO_PARALLEL_BLOCK"] = "2"
        try:
            with sharded_tier():
                fanned = revise(t, p, name)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        assert fanned.alphabet == reference.alphabet
        assert fanned.bit_model_set == reference.bit_model_set
