"""Property-based tests of the revision operators.

Covers:
* Fig. 2 containments between the six model-based operators;
* Proposition 2.1 (a model of T always has a revised model within V(P));
* the success postulate T * P |= P;
* irrelevance of syntax for model-based operators;
* the revision-vs-update distinction on consistent inputs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Theory, land, lnot, lor, parse, var
from repro.revision import MODEL_BASED_NAMES, OPERATORS, revise
from repro.sat import models as sat_models

ALPHABET = ["a", "b", "c", "d"]


def _random_formula(rng: random.Random, letters, clauses=3, width=3):
    """A random satisfiable-ish CNF-like formula."""
    parts = []
    for _ in range(rng.randint(1, clauses)):
        lits = []
        for _ in range(rng.randint(1, width)):
            name = rng.choice(letters)
            atom = var(name)
            lits.append(atom if rng.random() < 0.5 else lnot(atom))
        parts.append(lor(*lits))
    return land(*parts)


def _random_pair(seed: int):
    rng = random.Random(seed)
    while True:
        t = _random_formula(rng, ALPHABET)
        p = _random_formula(rng, ALPHABET)
        from repro.sat import is_satisfiable

        if is_satisfiable(t) and is_satisfiable(p):
            return t, p


# Provable arrows of Fig. 2: (subset, superset).
FIG2_CONTAINMENTS = [
    ("dalal", "satoh"),
    ("dalal", "forbus"),
    ("dalal", "weber"),
    ("forbus", "winslett"),
    ("satoh", "winslett"),
    ("satoh", "weber"),
    ("borgida", "winslett"),
]


class TestFig2Containments:
    @pytest.mark.parametrize("seed", range(30))
    def test_all_arrows_on_random_instances(self, seed):
        t, p = _random_pair(seed)
        results = {name: revise(t, p, name).model_set for name in MODEL_BASED_NAMES}
        for small, large in FIG2_CONTAINMENTS:
            assert results[small] <= results[large], (
                f"{small} ⊄ {large} on T={t}, P={p}"
            )

    @pytest.mark.parametrize("seed", range(30))
    def test_all_results_within_P(self, seed):
        t, p = _random_pair(seed)
        alphabet = sorted(t.variables() | p.variables())
        p_models = set(sat_models(p, alphabet))
        for name in MODEL_BASED_NAMES:
            assert revise(t, p, name).model_set <= p_models

    @pytest.mark.parametrize("seed", range(30))
    def test_nonempty_when_T_and_P_satisfiable(self, seed):
        t, p = _random_pair(seed)
        for name in MODEL_BASED_NAMES:
            assert revise(t, p, name).is_consistent(), name


class TestProposition21:
    """For every model M of T there is a model N of T * P with
    M △ N ⊆ V(P).

    Reproduction note: for the *pointwise* operators (Winslett, Forbus)
    this holds unconditionally — inclusion/cardinality-minimal differences
    never touch letters outside V(P), and every model of T contributes one.
    For the *global* operators, and for Borgida on consistent inputs (where
    it returns T ∧ P), the property can fail when T has several models
    (e.g. T = (~a&~b)|(a&b), P = ~a: Dalal's k = 0 keeps only {} and the
    T-model {a,b} has no revised model within V(P) = {a}).  The paper
    invokes the proposition through Eiter-Gottlob's Lemma 6.1, whose
    setting is a single-model T — under which it does hold for all six
    operators; both readings are asserted below, plus Borgida on
    inconsistent inputs (where it coincides with Winslett).
    """

    POINTWISE = ("winslett", "forbus")
    GLOBAL = ("satoh", "dalal", "weber")

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("name", POINTWISE)
    def test_pointwise_unconditional(self, seed, name):
        t, p = _random_pair(seed)
        alphabet = sorted(t.variables() | p.variables())
        vp = p.variables()
        result = revise(t, p, name)
        if not result.is_consistent():
            pytest.skip("degenerate instance")
        for m in sat_models(t, alphabet):
            assert any(
                (m ^ n) <= vp for n in result.model_set
            ), f"no close revised model for M={sorted(m)} under {name}"

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("name", MODEL_BASED_NAMES)
    def test_single_model_T_all_operators(self, seed, name):
        rng = random.Random(seed + 1000)
        # T: a complete conjunction of literals — exactly one model.
        m = frozenset(x for x in ALPHABET if rng.random() < 0.5)
        t = land(*(var(x) if x in m else lnot(var(x)) for x in ALPHABET))
        _, p = _random_pair(seed)
        vp = p.variables()
        result = revise(t, p, name)
        assert result.is_consistent()
        assert any((m ^ n) <= vp for n in result.model_set), name

    @pytest.mark.parametrize("seed", range(20))
    def test_borgida_on_inconsistent_inputs(self, seed):
        from repro.sat import is_satisfiable

        t, p = _random_pair(seed)
        if is_satisfiable(land(t, p)):
            pytest.skip("consistent pair: Borgida returns T ∧ P")
        alphabet = sorted(t.variables() | p.variables())
        vp = p.variables()
        result = revise(t, p, "borgida")
        for m in sat_models(t, alphabet):
            assert any((m ^ n) <= vp for n in result.model_set)

    def test_global_counterexample_documented(self):
        # The concrete failure instance described in the docstring.
        t = parse("(~a & ~b) | (a & b)")
        p = parse("~a")
        result = revise(t, p, "dalal")
        assert result.model_set == {frozenset()}
        m = frozenset({"a", "b"})
        assert not any((m ^ n) <= p.variables() for n in result.model_set)


class TestSuccessPostulate:
    @pytest.mark.parametrize("seed", range(15))
    def test_result_entails_P(self, seed):
        t, p = _random_pair(seed)
        for name in OPERATORS:
            if name == "nebel":
                continue  # same engine as gfuv; skip for speed
            result = revise(Theory.coerce(t), p, name)
            assert result.entails(p), name


class TestIrrelevanceOfSyntax:
    @pytest.mark.parametrize("name", MODEL_BASED_NAMES)
    def test_equivalent_presentations_same_result(self, name):
        p = parse("~b")
        t_one = Theory.parse_many("a & b")
        t_two = Theory.parse_many("a", "b")
        t_three = Theory.parse_many("a", "a -> b")
        results = {
            revise(t, p, name).model_set for t in (t_one, t_two, t_three)
        }
        assert len(results) == 1, f"{name} is syntax-sensitive"

    def test_gfuv_is_syntax_sensitive(self):
        p = parse("~b")
        r_flat = revise(Theory.parse_many("a", "b"), p, "gfuv")
        r_cond = revise(Theory.parse_many("a", "a -> b"), p, "gfuv")
        assert r_flat.model_set != r_cond.model_set


class TestRevisionVsUpdate:
    """Revision operators return T ∧ P on consistent inputs; update
    operators need not (Winslett's office example)."""

    @pytest.mark.parametrize("seed", range(15))
    def test_revision_consistent_case(self, seed):
        t, p = _random_pair(seed)
        from repro.sat import is_satisfiable

        if not is_satisfiable(land(t, p)):
            pytest.skip("inconsistent pair")
        alphabet = sorted(t.variables() | p.variables())
        conjunction_models = set(sat_models(land(t, p), alphabet))
        for name in ("borgida", "dalal", "satoh", "weber"):
            assert revise(t, p, name).model_set == conjunction_models, name

    def test_update_keeps_per_model_results(self):
        # Winslett on consistent input may strictly contain T ∧ P's models.
        t = parse("g | b")
        p = parse("~g")
        winslett = revise(t, p, "winslett").model_set
        assert frozenset() in winslett  # not a model of T ∧ P


class TestIteratedSemantics:
    def test_iterate_matches_manual_composition(self):
        t = parse("a & b & c")
        p1 = parse("~a")
        p2 = parse("~b")
        for name in MODEL_BASED_NAMES:
            op = OPERATORS[name]
            stepwise = op.revise_result(op.revise(t, p1), p2)
            driver = op.iterate(t, [p1, p2])
            assert stepwise == driver

    def test_iterate_empty_sequence(self):
        op = OPERATORS["dalal"]
        result = op.iterate(parse("a | b"), [])
        assert result.model_set == {
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b"}),
        }

    def test_alphabet_grows_with_new_letters(self):
        op = OPERATORS["dalal"]
        result = op.iterate(parse("a"), [parse("b")])
        assert result.alphabet == ("a", "b")
        # Dalal keeps a true (distance 0) and adopts b.
        assert result.model_set == {frozenset({"a", "b"})}

    def test_paper_section5_weber_example(self):
        # T = x1..x5 all true; P1 = ~x1 | ~x2; P2 = ~x5 (Section 5 example).
        t = parse("x1 & x2 & x3 & x4 & x5")
        p1 = parse("~x1 | ~x2")
        p2 = parse("~x5")
        result = OPERATORS["weber"].iterate(t, [p1, p2])
        assert result.model_set == {
            frozenset({"x1", "x3", "x4"}),
            frozenset({"x2", "x3", "x4"}),
            frozenset({"x3", "x4"}),
        }

    def test_operator_registry_lookup(self):
        from repro.revision import get_operator

        assert get_operator("DALAL").name == "dalal"
        with pytest.raises(ValueError):
            get_operator("nonexistent")
