"""Sharded truth-table tier: primitive equivalence and engine dispatch.

Four layers of assurance:

* hypothesis tests asserting every :class:`ShardedTable` primitive agrees
  with the Level-2 big-int primitive of :mod:`repro.logic.bitmodels` at
  n = 6–10 letters, on both backends (numpy bitplanes and the pure-int
  shard-list fallback, the latter also at artificially small shard widths
  so the cross-shard code paths run);
* formula compilation equivalence, serial and through the multiprocessing
  shard map;
* the six model-based operators forced onto the sharded tier return model
  sets identical to the retained frozenset reference engine;
* :class:`repro.logic.bitmodels.BitModelSet` laziness: sharded-backed sets
  answer count/membership/emptiness without materialising masks.
"""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Theory, land, lnot, lor, var
from repro.logic import bitmodels
from repro.logic import shards
from repro.logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    exists_table,
    iter_set_bits,
    min_hamming_distance_tables,
    minimal_elements_table,
    neighbors_table,
    table_of_masks,
    truth_table,
    upward_closure_table,
    xor_translate_table,
)
from repro.logic.shards import ShardedTable

LETTERS = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]

#: Both storage backends when numpy is importable, just the pure-int shard
#: fallback otherwise (the CI matrix runs a leg without numpy).
BACKENDS = ["int"] + (["numpy"] if shards._np is not None else [])

#: (backend, shard_bits) combinations; shard_bits=64 forces multi-shard
#: pure-int tables at 7+ letters so the cross-shard swaps/shifts run.
VARIANTS = [(backend, None) for backend in BACKENDS] + [("int", 64), ("int", 256)]


@contextlib.contextmanager
def sharded_tier(table_max=1):
    """Force the engine dispatch onto the sharded tier for small alphabets."""
    saved = bitmodels._TABLE_MAX_LETTERS
    bitmodels._TABLE_MAX_LETTERS = table_max
    try:
        yield
    finally:
        bitmodels._TABLE_MAX_LETTERS = saved


def formulas(letters, max_leaves=8):
    atoms = st.sampled_from(letters).map(var)
    literals = atoms | atoms.map(lnot)
    return st.recursive(
        literals,
        lambda children: st.tuples(children, children).map(
            lambda pair: land(*pair)
        )
        | st.tuples(children, children).map(lambda pair: lor(*pair))
        | st.tuples(children, children).map(lambda pair: pair[0] ^ pair[1])
        | st.tuples(children, children).map(lambda pair: pair[0] >> pair[1]),
        max_leaves=max_leaves,
    )


letter_counts = st.integers(min_value=6, max_value=10)


@st.composite
def table_values(draw):
    """(letter count, random table value) over 6-10 letters."""
    n = draw(letter_counts)
    value = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return n, value


# ---------------------------------------------------------------------------
# Primitive equivalence vs the big-int engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend,shard_bits", VARIANTS)
class TestPrimitiveEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(table_values())
    def test_int_round_trip_and_counts(self, backend, shard_bits, value):
        n, table = value
        alphabet = BitAlphabet(LETTERS[:n])
        sharded = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        assert sharded.to_int() == table
        assert sharded.popcount() == table.bit_count()
        assert sharded.any() == bool(table)
        assert list(sharded.iter_set_bits()) == list(iter_set_bits(table))

    @settings(max_examples=30, deadline=None)
    @given(table_values(), st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_elementwise_and_translate(self, backend, shard_bits, value, mask):
        n, table = value
        alphabet = BitAlphabet(LETTERS[:n])
        mask &= alphabet.universe
        other = (table * 0x9E3779B97F4A7C15) & alphabet.full_table
        left = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        right = ShardedTable.from_int(
            alphabet, other, backend=backend, shard_bits=shard_bits
        )
        assert (left & right).to_int() == table & other
        assert (left | right).to_int() == table | other
        assert (left ^ right).to_int() == table ^ other
        assert (~left).to_int() == table ^ alphabet.full_table
        assert left.xor_translate(mask).to_int() == xor_translate_table(
            table, mask, alphabet
        )

    @settings(max_examples=30, deadline=None)
    @given(table_values())
    def test_structural_transforms(self, backend, shard_bits, value):
        n, table = value
        alphabet = BitAlphabet(LETTERS[:n])
        sharded = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        assert sharded.minimal_elements().to_int() == minimal_elements_table(
            table, alphabet
        )
        assert sharded.neighbors().to_int() == neighbors_table(table, alphabet)
        assert sharded.upward_closure().to_int() == upward_closure_table(
            table, alphabet
        )

    @settings(max_examples=30, deadline=None)
    @given(table_values())
    def test_rings_partition_by_popcount(self, backend, shard_bits, value):
        n, table = value
        alphabet = BitAlphabet(LETTERS[:n])
        sharded = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        layers = alphabet.popcount_layers()
        for k in range(n + 1):
            assert sharded.ring(k).to_int() == table & layers[k]
        if table:
            k, ring = sharded.first_ring()
            expected = min(b.bit_count() for b in iter_set_bits(table))
            assert k == expected
            assert ring.to_int() == table & layers[k]

    @settings(max_examples=30, deadline=None)
    @given(table_values(), st.data())
    def test_min_hamming(self, backend, shard_bits, value, data):
        n, table = value
        alphabet = BitAlphabet(LETTERS[:n])
        other = data.draw(
            st.integers(min_value=1, max_value=alphabet.full_table)
        )
        if not table:
            table = 1
        left = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        right = ShardedTable.from_int(
            alphabet, other, backend=backend, shard_bits=shard_bits
        )
        distance, ball = left.min_hamming(right)
        ref_distance, ref_ball = min_hamming_distance_tables(
            table, other, alphabet
        )
        assert distance == ref_distance
        assert ball.to_int() == ref_ball

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=6, max_value=9), st.data())
    def test_from_formula_matches_truth_table(self, backend, shard_bits, n, data):
        letters = LETTERS[:n]
        alphabet = BitAlphabet(letters)
        formula = data.draw(formulas(letters))
        sharded = ShardedTable.from_formula(
            formula, alphabet, backend=backend, shard_bits=shard_bits
        )
        assert sharded.to_int() == truth_table(formula, alphabet)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_exists_bits_matches_exists_table(self, backend, shard_bits, data):
        n = data.draw(st.integers(min_value=6, max_value=8))
        alphabet = BitAlphabet(LETTERS[:n])
        table = data.draw(
            st.integers(min_value=0, max_value=alphabet.full_table)
        )
        quantified = data.draw(
            st.sets(st.sampled_from(alphabet.letters), max_size=n)
        )
        sharded = ShardedTable.from_int(
            alphabet, table, backend=backend, shard_bits=shard_bits
        )
        smoothed = sharded.exists_bits(alphabet.bit(name) for name in quantified)
        assert smoothed.to_int() == exists_table(table, quantified, alphabet)


# ---------------------------------------------------------------------------
# Shard map / multiprocessing
# ---------------------------------------------------------------------------


class TestShardMap:
    def test_parallel_compile_matches_serial(self):
        letters = LETTERS[:9]
        alphabet = BitAlphabet(letters)
        formula = land(
            lor(var("a"), lnot(var("e")), var("i")),
            var("b") ^ var("h"),
            lor(lnot(var("c")), var("d")),
        )
        parallel = ShardedTable.from_formula(
            formula, alphabet, backend="int", shard_bits=64, processes=2
        )
        assert parallel.to_int() == truth_table(formula, alphabet)

    @pytest.mark.parametrize("backend,shard_bits", VARIANTS)
    def test_int_shards_rejoin(self, backend, shard_bits):
        alphabet = BitAlphabet(LETTERS[:8])
        value = 0x1234_5678_9ABC_DEF0_0FED_CBA9_8765_4321
        sharded = ShardedTable.from_int(
            alphabet, value, backend=backend, shard_bits=shard_bits
        )
        pieces = sharded.int_shards()
        width = (
            sharded._shard_bits
            if sharded._shard_bits is not None
            else min(alphabet.table_bits, shards.SHARD_BITS)
        )
        rejoined = 0
        for index, piece in enumerate(pieces):
            rejoined |= piece << (index * width)
        assert rejoined == value

    def test_map_shards_popcount(self):
        alphabet = BitAlphabet(LETTERS[:8])
        value = (1 << 200) | (1 << 3) | (1 << 255)
        sharded = ShardedTable.from_int(
            alphabet, value, backend="int", shard_bits=64
        )
        counts = shards.map_shards(_popcount_shard, sharded, processes=2)
        assert sum(counts) == 3


def _popcount_shard(shard: int) -> int:
    return shard.bit_count()


# ---------------------------------------------------------------------------
# Engine dispatch: operators on the sharded tier
# ---------------------------------------------------------------------------


def _random_tp(draw_seed: int, letter_count: int):
    import sys
    from pathlib import Path

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    from _util import random_tp_pair

    return random_tp_pair(draw_seed, LETTERS[:letter_count])


class TestShardedTierDispatch:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=6),
        st.data(),
    )
    def test_operators_match_reference_on_sharded_tier(
        self, seed, letter_count, data
    ):
        from repro.revision import MODEL_BASED_NAMES, reference_revise, revise

        name = data.draw(st.sampled_from(sorted(MODEL_BASED_NAMES)))
        t, p = _random_tp(seed, letter_count)
        with sharded_tier():
            result = revise(t, p, name)
            if len(result.alphabet) > 1 and result.is_consistent():
                # Non-degenerate results over alphabets past the (forced)
                # table cutoff really came out of the sharded tier.
                assert isinstance(result.bit_model_set._sharded, ShardedTable)
        ref_alphabet, ref_models = reference_revise(Theory([t]), p, name)
        assert result.alphabet == ref_alphabet
        assert result.model_set == ref_models

    def test_bit_models_sharded_matches_table_path(self):
        from repro.sat import bit_models

        t, p = _random_tp(7, 6)
        reference = bit_models(t, LETTERS[:6])
        with sharded_tier():
            sharded = bit_models(t, LETTERS[:6])
            assert sharded._sharded is not None
        assert sharded == reference
        assert sharded.to_frozensets() == reference.to_frozensets()

    def test_minimum_distance_sharded_tier(self):
        from repro.compact.dalal import minimum_distance

        t, p = _random_tp(11, 6)
        reference = minimum_distance(Theory([t]), p)
        with sharded_tier():
            assert minimum_distance(Theory([t]), p) == reference

    def test_delta_bits_sharded_tier(self):
        from repro.revision import delta_bits
        from repro.sat import bit_models

        t, p = _random_tp(23, 6)
        alphabet = BitAlphabet(LETTERS[:6])
        reference = delta_bits(bit_models(t, alphabet), bit_models(p, alphabet))
        with sharded_tier():
            t_bits = bit_models(t, alphabet)
            p_bits = bit_models(p, alphabet)
            assert delta_bits(t_bits, p_bits) == reference

    def test_revision_result_entails_on_sharded_tier(self):
        from repro.revision import revise

        t, p = _random_tp(5, 5)
        reference = revise(t, p, "dalal")
        query = lor(var("a"), lnot(var("b")))
        expected = reference.entails(query)
        with sharded_tier():
            result = revise(t, p, "dalal")
            assert result.entails(query) == expected
            assert result.model_count() == reference.model_count()


# ---------------------------------------------------------------------------
# BitModelSet laziness
# ---------------------------------------------------------------------------


class TestLazyBitModelSet:
    def test_sharded_backed_set_defers_mask_materialisation(self):
        alphabet = BitAlphabet(LETTERS[:8])
        table = (1 << 77) | (1 << 3) | (1 << 200)
        sharded = ShardedTable.from_int(alphabet, table)
        bits = BitModelSet.from_sharded(alphabet, sharded)
        assert bits._masks is None
        assert bits.count() == 3
        assert len(bits) == 3
        assert bool(bits)
        assert 77 in bits and 78 not in bits
        assert bits._masks is None  # still no frozenset
        assert bits.masks == frozenset({3, 77, 200})

    def test_table_backed_set_defers_mask_materialisation(self):
        alphabet = BitAlphabet(LETTERS[:6])
        bits = BitModelSet.from_table(alphabet, 0b1011)
        assert bits._masks is None
        assert bits.count() == 3 and 1 in bits and 2 not in bits
        assert bits._masks is None
        assert sorted(bits.iter_masks()) == [0, 1, 3]

    def test_cross_encoding_equality(self):
        alphabet = BitAlphabet(LETTERS[:6])
        table = 0b100110
        from_table = BitModelSet.from_table(alphabet, table)
        from_sharded = BitModelSet.from_sharded(
            alphabet, ShardedTable.from_int(alphabet, table)
        )
        from_masks = BitModelSet(alphabet, [1, 2, 5])
        assert from_table == from_sharded == from_masks

    def test_alphabet_interning_reuses_memos(self):
        first = BitAlphabet.coerce(["x", "y", "z"])
        second = BitAlphabet.coerce(["z", "y", "x"])
        assert first is second
        assert first.full_table == 0xFF
        assert first._full is not None
