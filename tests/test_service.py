"""The resilient revision service, demanded end to end.

Every robustness claim of :mod:`repro.service` is made to happen here
via the deterministic fault registry (``service-worker-crash`` /
``service-worker-hang`` / ``service-queue-full``) or the per-request
``fault_once`` directive:

* request streams under injected worker crashes and hangs complete
  every request with masks bit-identical to a fault-free run (retries
  probe the shared semantics, so a crash is invisible except in the
  counters);
* a full admission queue sheds with a *typed* response — a caller never
  hangs on an unserved request;
* the circuit breaker opens after N consecutive worker deaths on one
  request and closes again after its cooldown;
* hedged stragglers race a second worker, first result wins;
* degraded requests are served one tier down and say so;
* shutdown leaves no orphan worker processes;
* :func:`repro.runtime.pool.map_with_recovery` kills its pool when the
  caller's deadline expires mid-map instead of leaking workers.

The whole suite runs on both backends: CI repeats it under
``REPRO_NO_NUMPY=1``.
"""

import multiprocessing
import string
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import runtime
from repro.logic.formula import as_formula
from repro.logic.theory import Theory
from repro.revision.batch import BatchCache
from repro.revision.registry import get_operator
from repro.runtime import faults
from repro.runtime import pool as rpool
from repro.service import (
    Request,
    RevisionService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.frontend import STATS


@pytest.fixture(autouse=True)
def clean_slate():
    """Disarmed faults and zeroed counters around every test."""
    faults.reset("")
    faults.STATS.reset()
    STATS.reset()
    yield
    faults.reset("")


def _wait_counter(group, key, minimum, timeout=5.0):
    """Poll a counter until it reaches *minimum* (restarts are scheduled
    with backoff, so shutdown can otherwise win the race)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if group[key] >= minimum:
            return True
        time.sleep(0.02)
    return group[key] >= minimum


def _fast_config(**overrides) -> ServiceConfig:
    """Small timing constants so supervision paths run in milliseconds."""
    defaults = dict(
        workers=2,
        heartbeat_s=0.05,
        monitor_interval_s=0.02,
        hang_timeout_s=0.5,
        hang_grace_s=0.3,
        backoff_base_s=0.01,
        backoff_max_s=0.1,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


#: A little mixed-KB request stream (theory, updates, query) — enough
#: shape for fairness/retry tests without slowing the suite down.
STREAM = [
    ("kb-a", "a & b", ("~a",), "b"),
    ("kb-b", "(a | b) & c", ("~c",), None),
    ("kb-a", "a & b", ("~a", "~b"), None),
    ("kb-c", "a | b | c", ("~a & ~b",), "c"),
    ("kb-b", "(a | b) & c", ("~c", "a"), "a"),
    ("kb-a", "a & b", ("~b",), "a"),
]


def _direct_masks(theory, updates, operator="dalal"):
    """Ground truth: the engine's own iterated revision, run inline."""
    result = get_operator(operator).iterate(
        Theory.coerce((theory,)), [as_formula(u) for u in updates]
    )
    return sorted(result.bit_model_set.iter_masks()), result.alphabet


def _run_stream(service, stream=STREAM):
    futures = [
        service.submit(Request(
            kind="revise", kb=kb, theory=theory, updates=updates,
            query=query,
        ))
        for kb, theory, updates, query in stream
    ]
    return [future.result(60) for future in futures]


def _assert_stream_ok(responses, stream=STREAM):
    assert len(responses) == len(stream)  # nothing lost, nothing extra
    for response, (kb, theory, updates, query) in zip(responses, stream):
        assert response.status == "ok", response.error
        masks, letters = _direct_masks(theory, updates)
        assert response.masks == masks
        assert tuple(response.letters) == letters
        if query is not None:
            direct = get_operator("dalal").iterate(
                Theory.coerce((theory,)), [as_formula(u) for u in updates]
            )
            assert response.entailed == direct.entails(as_formula(query))


def _no_service_orphans(pids):
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        alive = [p.pid for p in multiprocessing.active_children()
                 if p.pid in set(pids)]
        if not alive:
            return True
        time.sleep(0.05)
    return False


class TestFaultFreeServing:
    def test_stream_matches_direct_engine(self):
        with RevisionService(_fast_config()) as service:
            responses = _run_stream(service)
            pids = service.live_worker_pids()
            assert len(pids) == 2
        _assert_stream_ok(responses)
        assert STATS["completed"] == len(STREAM)
        assert STATS["retries"] == 0
        assert _no_service_orphans(pids)

    def test_warm_and_query_kinds(self):
        with RevisionService(_fast_config(workers=1)) as service:
            client = ServiceClient(service, timeout=60)
            warm = client.warm("kb-w", "a & (b | c)")
            assert warm.status == "ok" and warm.model_count == 3
            q = client.query("kb-w", "a & (b | c)", ("~a",), query="b | c")
            assert q.status == "ok" and q.entailed is True
            assert q.masks is None  # query responses don't ship masks
            assert client.ping().status == "ok"

    def test_repeated_request_is_memoised_per_worker(self):
        with RevisionService(_fast_config(workers=1)) as service:
            client = ServiceClient(service, timeout=60)
            first = client.revise("kb-a", "a & b", ("~a",))
            again = client.revise("kb-a", "a & b", ("~a",))
            assert first.masks == again.masks
            # Same worker, same BatchCache: the chain memo served it.
            assert first.worker_pid == again.worker_pid


class TestCrashAndHangRecovery:
    def test_crash_retry_bit_identical(self):
        with RevisionService(_fast_config()) as service:
            baseline = _run_stream(service)
        STATS.reset()
        faults.reset("service-worker-crash@1")
        with RevisionService(_fast_config()) as service:
            responses = _run_stream(service)
            assert _wait_counter(STATS, "worker_restarts", 1)
            pids = service.live_worker_pids()
        _assert_stream_ok(responses)
        assert [r.masks for r in responses] == [r.masks for r in baseline]
        assert faults.STATS["service-worker-crash"] == 1
        assert STATS["worker_deaths"] >= 1
        assert STATS["retries"] >= 1
        assert STATS["worker_restarts"] >= 1
        assert max(r.attempts for r in responses) >= 2
        assert _no_service_orphans(pids)

    def test_hang_retry_bit_identical(self):
        faults.reset("service-worker-hang@1")
        with RevisionService(_fast_config()) as service:
            responses = _run_stream(service)
            assert _wait_counter(STATS, "worker_restarts", 1)
            pids = service.live_worker_pids()
        _assert_stream_ok(responses)
        assert faults.STATS["service-worker-hang"] == 1
        assert STATS["worker_hangs"] >= 1
        assert STATS["worker_deaths"] >= 1
        assert STATS["retries"] >= 1
        assert _no_service_orphans(pids)

    def test_acceptance_stream_crash2_hang3(self):
        """The ISSUE's acceptance scenario: crash@2 + hang@3 on one
        stream — every request completes, masks bit-identical to the
        fault-free run, counters fired, no orphans."""
        with RevisionService(_fast_config()) as service:
            baseline = _run_stream(service)
        STATS.reset()
        faults.reset("service-worker-crash@2;service-worker-hang@3")
        with RevisionService(_fast_config()) as service:
            responses = _run_stream(service)
            assert _wait_counter(STATS, "worker_restarts", 2)
            pids = service.live_worker_pids()
        _assert_stream_ok(responses)
        assert [r.masks for r in responses] == [r.masks for r in baseline]
        assert faults.STATS["service-worker-crash"] == 1
        assert faults.STATS["service-worker-hang"] == 1
        assert STATS["worker_deaths"] >= 2
        assert STATS["worker_hangs"] >= 1
        assert STATS["retries"] >= 2
        assert STATS["worker_restarts"] >= 2
        assert _no_service_orphans(pids)

    def test_idle_worker_silence_restarts(self):
        """A worker that dies while idle is noticed and replaced."""
        with RevisionService(_fast_config(workers=1)) as service:
            client = ServiceClient(service, timeout=60)
            assert client.ping().status == "ok"
            (pid,) = service.live_worker_pids()
            import os
            import signal
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while (time.monotonic() < deadline
                   and STATS["worker_restarts"] < 1):
                time.sleep(0.02)
            response = client.revise("kb-a", "a & b", ("~a",))
            assert response.status == "ok"
            assert response.worker_pid != pid
        assert STATS["worker_deaths"] >= 1
        assert STATS["worker_restarts"] >= 1


class TestAdmissionControl:
    def test_queue_full_fault_sheds_typed(self):
        faults.reset("service-queue-full@1")
        with RevisionService(_fast_config(workers=1)) as service:
            client = ServiceClient(service, timeout=60)
            response = client.revise("kb-a", "a & b", ("~a",))
            assert response.status == "shed"
            assert "queue full" in response.error
            # The next request is admitted normally.
            assert client.revise("kb-a", "a & b", ("~a",)).status == "ok"
        assert STATS["shed"] == 1

    def test_real_saturation_sheds_never_hangs(self):
        """One worker, queue bound 1: the third concurrent request is
        shed with a typed response, and everything resolves."""
        config = _fast_config(workers=1, queue_limit=1,
                              hang_timeout_s=5.0)
        with RevisionService(config) as service:
            blocker = service.submit(Request(
                kind="revise", kb="kb-slow", theory="a", updates=("~a",),
                fault_once="hang:0.6",
            ))
            time.sleep(0.1)  # let it occupy the worker
            queued = service.submit(Request(
                kind="revise", kb="kb-a", theory="a & b", updates=("~a",),
            ))
            overflow = service.submit(Request(
                kind="revise", kb="kb-b", theory="a | b", updates=("~b",),
            ))
            shed = overflow.result(10)
            assert shed.status == "shed"
            assert blocker.result(10).status == "ok"
            assert queued.result(10).status == "ok"
        assert STATS["shed"] == 1
        assert STATS["queue_peak"] >= 1

    def test_deadline_expires_while_queued(self):
        config = _fast_config(workers=1, hang_timeout_s=5.0)
        with RevisionService(config) as service:
            blocker = service.submit(Request(
                kind="revise", kb="kb-slow", theory="a", updates=("~a",),
                fault_once="hang:0.6",
            ))
            time.sleep(0.1)
            hurried = service.submit(Request(
                kind="revise", kb="kb-a", theory="a & b", updates=("~a",),
                deadline=0.15,
            ))
            assert hurried.result(10).status == "timeout"
            assert blocker.result(10).status == "ok"
        assert STATS["timeouts"] >= 1

    def test_per_kb_fairness_round_robin(self):
        """A flood on one KB doesn't starve another: with one worker,
        the other KB's request completes among the first dispatches
        after the flood."""
        config = _fast_config(workers=1, queue_limit=32,
                              hang_timeout_s=5.0)
        order = []
        with RevisionService(config) as service:
            blocker = service.submit(Request(
                kind="revise", kb="kb-hot", theory="a", updates=("~a",),
                fault_once="hang:0.4",
            ))
            time.sleep(0.1)
            hot = [service.submit(Request(
                kind="revise", kb="kb-hot", theory="a", updates=("~a",),
            )) for _ in range(5)]
            cold = service.submit(Request(
                kind="revise", kb="kb-cold", theory="b", updates=("~b",),
            ))
            for name, future in [("blocker", blocker)] + [
                    (f"hot{i}", f) for i, f in enumerate(hot)
            ] + [("cold", cold)]:
                response = future.result(15)
                assert response.status == "ok"
                order.append((name, response.latency_s))
            # The cold KB was served right after the first hot request,
            # not behind the whole hot backlog.
            latencies = dict(order)
            slower_hots = [lat for name, lat in order
                           if name.startswith("hot") and lat > latencies["cold"]]
            assert len(slower_hots) >= 3


class TestBreakerHedgingDegradation:
    def test_breaker_opens_then_closes(self):
        config = _fast_config(workers=1, breaker_threshold=2,
                              breaker_cooldown_s=0.4)
        with RevisionService(config) as service:
            client = ServiceClient(service, timeout=60)
            poisoned = client.call(Request(
                kind="revise", kb="kb-p", theory="a", updates=("~a",),
                fault_once="crash@2",
            ))
            assert poisoned.status == "poisoned"
            assert STATS["breaker_opens"] == 1
            rejected = client.revise("kb-p", "a", ("~a",))
            assert rejected.status == "poisoned"
            assert STATS["poisoned_rejects"] == 1
            # Other KBs are unaffected while the breaker is open.
            assert client.revise("kb-ok", "a & b", ("~a",)).status == "ok"
            time.sleep(0.5)
            recovered = client.revise("kb-p", "a", ("~a",))
            assert recovered.status == "ok"
            assert STATS["breaker_closes"] == 1

    def test_hedging_beats_straggler(self):
        config = _fast_config(hedge_after_s=0.15)
        with RevisionService(config) as service:
            client = ServiceClient(service, timeout=60)
            started = time.monotonic()
            response = client.call(Request(
                kind="revise", kb="kb-h", theory="a | b", updates=("~a",),
                fault_once="hang:1.2",
            ))
            elapsed = time.monotonic() - started
            assert response.status == "ok"
            assert response.hedged is True
            masks, _ = _direct_masks("a | b", ("~a",))
            assert response.masks == masks
            assert elapsed < 1.0  # the hedge won, we never waited out the hang
            assert STATS["hedges"] == 1
            assert STATS["hedge_wins"] == 1

    def test_degraded_request_reports_served_tier(self):
        letters = string.ascii_lowercase[:22]
        theory = " & ".join(letters[:20]) + \
            f" & ({letters[20]} | {letters[21]})"
        with RevisionService(_fast_config(workers=1,
                                          hang_timeout_s=30.0)) as service:
            client = ServiceClient(service, timeout=120)
            plain = client.revise("kb-d", theory, ("~a",))
            # A distinct chain, or the worker's chain memo would serve
            # the cached (uncapped) result without ever feeling the cap.
            capped = client.revise("kb-d2", theory, ("~b",), max_words=64)
            assert plain.status == "ok" and capped.status == "ok"
            masks, _ = _direct_masks(theory, ("~b",))
            assert capped.masks == masks  # demotion is invisible in bits
            assert "-demoted-" in capped.engine_tier

    def test_pressure_degradation_flags_responses(self):
        config = _fast_config(workers=1, degrade_watermark=1,
                              hang_timeout_s=5.0)
        with RevisionService(config) as service:
            blocker = service.submit(Request(
                kind="revise", kb="kb-s", theory="a", updates=("~a",),
                fault_once="hang:0.5",
            ))
            time.sleep(0.1)
            first = service.submit(Request(
                kind="revise", kb="kb-a", theory="a & b", updates=("~a",),
            ))
            second = service.submit(Request(
                kind="revise", kb="kb-b", theory="a | b", updates=("~b",),
            ))
            assert blocker.result(10).status == "ok"
            assert first.result(10).status == "ok"
            degraded = second.result(10)
            assert degraded.status == "ok"
            assert degraded.degraded is True
        assert STATS["degraded"] >= 1


class TestShutdownAndPool:
    def test_shutdown_leaves_no_orphans(self):
        service = RevisionService(_fast_config())
        service.start()
        pids = service.live_worker_pids()
        assert len(pids) == 2
        service.stop()
        assert _no_service_orphans(pids)
        assert service.live_worker_pids() == []

    def test_pool_deadline_kills_workers(self):
        """The satellite fix: a deadline mid-map tears the pool down
        instead of waiting out (or orphaning) sleeping workers."""
        runtime.STATS.reset()
        started = time.monotonic()
        with pytest.raises(runtime.EngineTimeout):
            with runtime.Budget(deadline=0.3):
                rpool.map_with_recovery(_sleep_job, [5.0, 5.0], workers=2)
        elapsed = time.monotonic() - started
        assert elapsed < 3.0  # nowhere near the 5s the jobs wanted
        assert runtime.STATS["pool_deadline_kills"] >= 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()


def _sleep_job(seconds):
    time.sleep(seconds)
    return seconds


#: Tiny update grammar for the hypothesis stream.
_UPDATES = ("~a", "~b", "a | b", "b & ~c", "~a & ~c", "c", "a & ~b")


class TestHypothesisStreams:
    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.sampled_from(_UPDATES), min_size=1, max_size=3),
           st.sampled_from(["dalal", "satoh", "winslett"]))
    def test_random_chain_matches_direct(self, updates, operator):
        """Service answers == the engine run inline, on random chains.

        One in-process BatchCache stands in for the worker (the
        process-roundtrip variants are covered above); this pins the
        chain-prefix memo to the ground-truth iterate for every
        operator/chain shape hypothesis finds.
        """
        theory = "(a | b) & (b | c)"
        cache = BatchCache()
        chained = cache.revise_chain(
            Theory.coerce((theory,)), tuple(updates), operator
        )
        again = cache.revise_chain(
            Theory.coerce((theory,)), tuple(updates), operator
        )
        masks, letters = _direct_masks(theory, tuple(updates), operator)
        assert sorted(chained.bit_model_set.iter_masks()) == masks
        assert chained.alphabet == letters
        assert sorted(again.bit_model_set.iter_masks()) == masks

    def test_chain_prefix_resume(self):
        cache = BatchCache()
        theory = Theory.coerce(("a & b",))
        cache.revise_chain(theory, ("~a",), "dalal")
        before = cache.tier_counts.get("chain-memoised", 0)
        result = cache.revise_chain(theory, ("~a", "~b"), "dalal")
        assert cache.tier_counts.get("chain-memoised", 0) == before + 1
        masks, _ = _direct_masks("a & b", ("~a", "~b"))
        assert sorted(result.bit_model_set.iter_masks()) == masks
