"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRevise:
    def test_office_example(self, capsys):
        code = main(["revise", "-o", "dalal", "g | b", "~g"])
        out = capsys.readouterr().out
        assert code == 0
        assert "{b}" in out
        assert "dalal" in out

    def test_multiple_updates(self, capsys):
        code = main(["revise", "-o", "dalal", "a & b & c", "~a", "~b"])
        out = capsys.readouterr().out
        assert code == 0
        assert "{c}" in out

    def test_show_size(self, capsys):
        code = main(["revise", "-o", "weber", "a & b", "~a", "--show-size"])
        out = capsys.readouterr().out
        assert code == 0
        assert "|T'|" in out

    def test_show_size_silent_for_gfuv(self, capsys):
        code = main(["revise", "-o", "gfuv", "a", "~a", "--show-size"])
        out = capsys.readouterr().out
        assert code == 0
        assert "compiled" not in out


class TestAsk:
    def test_yes(self, capsys):
        code = main(["ask", "-o", "dalal", "g | b", "~g", "--query", "b"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_no(self, capsys):
        code = main(["ask", "-o", "winslett", "g | b", "~g", "--query", "b"])
        assert code == 1
        assert capsys.readouterr().out.strip() == "no"

    def test_via_semantics(self, capsys):
        code = main(
            ["ask", "-o", "dalal", "a & b", "~a", "--query", "b", "--via", "semantics"]
        )
        assert code == 0


class TestCompile:
    def test_compile_dalal(self, capsys):
        code = main(["compile", "-o", "dalal", "a & b & c", "~a | ~b"])
        out = capsys.readouterr().out
        assert code == 0
        assert "query" in out
        assert "size" in out

    def test_compile_gfuv_fails_cleanly(self, capsys):
        code = main(["compile", "-o", "gfuv", "a", "~a"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no compact representation" in err


class TestMisc:
    def test_operators_listing(self, capsys):
        code = main(["operators"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("dalal", "weber", "gfuv", "widtio"):
            assert name in out

    def test_parse_error(self, capsys):
        code = main(["revise", "a &", "~a"])
        assert code == 2
        assert "parse error" in capsys.readouterr().err

    def test_unknown_operator_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["revise", "-o", "nonsense", "a", "~a"])
