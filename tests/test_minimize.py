"""Tests for truth tables and exact Quine-McCluskey/Petrick minimisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import FALSE, TRUE, all_interpretations, parse, var
from repro.minimize import (
    TruthTable,
    covers,
    minimal_dnf,
    minimal_dnf_cost,
    minimal_dnf_of_formula,
    prime_implicants,
)
from repro.sat import equivalent


class TestTruthTable:
    def test_of_formula(self):
        table = TruthTable.of_formula(parse("a & b"))
        assert table.alphabet == ("a", "b")
        assert table.minterms == {3}

    def test_wider_alphabet(self):
        table = TruthTable.of_formula(parse("a"), alphabet=["a", "b"])
        assert table.minterms == {1, 3}

    def test_of_models(self):
        table = TruthTable.of_models([{"a"}, set()], ["a", "b"])
        assert table.minterms == {0, 1}

    def test_of_models_rejects_foreign_letter(self):
        with pytest.raises(ValueError):
            TruthTable.of_models([{"z"}], ["a"])

    def test_model_round_trip(self):
        table = TruthTable.of_formula(parse("a ^ b"))
        models = table.models()
        assert set(models) == {frozenset({"a"}), frozenset({"b"})}

    def test_predicates(self):
        assert TruthTable.of_formula(FALSE, ["a"]).is_contradiction
        assert TruthTable.of_formula(TRUE, ["a"]).is_tautology

    def test_out_of_range_minterm(self):
        with pytest.raises(ValueError):
            TruthTable(["a"], [2])


class TestPrimeImplicants:
    def test_single_minterm(self):
        primes = prime_implicants(2, frozenset({3}))
        assert primes == [(3, 3)]

    def test_merging(self):
        # f = a (minterms 1, 3 over alphabet (a, b)) -> prime a alone.
        primes = prime_implicants(2, frozenset({1, 3}))
        assert primes == [(1, 1)]

    def test_classic_example(self):
        # Classic QM example: minterms {0,1,2,5,6,7} over 3 vars has 6 primes
        # of size 2 each... verify cover correctness semantically instead.
        minterms = frozenset({0, 1, 2, 5, 6, 7})
        primes = prime_implicants(3, minterms)
        for term in minterms:
            assert any(covers(p, term) for p in primes)
        # No prime covers a non-minterm.
        for term in set(range(8)) - minterms:
            assert not any(covers(p, term) for p in primes)

    def test_empty(self):
        assert prime_implicants(3, frozenset()) == []


class TestMinimalDnf:
    def test_constants(self):
        assert minimal_dnf(TruthTable.of_formula(FALSE, ["a"])) == FALSE
        assert minimal_dnf(TruthTable.of_formula(TRUE, ["a"])) == TRUE

    def test_equivalence(self):
        f = parse("(a -> b) & (b -> c)")
        g = minimal_dnf_of_formula(f)
        assert equivalent(f, g)

    def test_xor_needs_two_terms(self):
        f = parse("a ^ b")
        terms, literals = minimal_dnf_cost(TruthTable.of_formula(f))
        assert terms == 2
        assert literals == 4

    def test_simplifies_redundancy(self):
        # a&b | a&~b minimises to the single term a.
        f = parse("(a & b) | (a & ~b)")
        g = minimal_dnf_of_formula(f)
        assert g == var("a")

    def test_cost_of_constants(self):
        assert minimal_dnf_cost(TruthTable.of_formula(TRUE, ["a"])) == (0, 0)

    @given(
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=120, deadline=None)
    def test_minimal_dnf_equivalent_property(self, bitmask):
        # Arbitrary 3-variable function given by its output column.
        minterms = frozenset(i for i in range(8) if bitmask >> i & 1)
        table = TruthTable(("a", "b", "c"), minterms)
        g = minimal_dnf(table)
        for mask in range(8):
            model = {name for i, name in enumerate(("a", "b", "c")) if mask >> i & 1}
            assert g.evaluate(model) == (mask in minterms)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_minimality_against_brute_force(self, bitmask):
        # For 3 variables, verify no DNF with fewer terms exists by checking
        # the chosen cover size against exhaustive search over prime subsets.
        minterms = frozenset(i for i in range(8) if bitmask >> i & 1)
        if not minterms or len(minterms) == 8:
            return
        table = TruthTable(("a", "b", "c"), minterms)
        terms, _ = minimal_dnf_cost(table)
        primes = prime_implicants(3, minterms)
        from itertools import combinations

        best = None
        for size in range(1, len(primes) + 1):
            for subset in combinations(primes, size):
                if all(any(covers(p, t) for p in subset) for t in minterms):
                    best = size
                    break
            if best is not None:
                break
        assert terms == best
