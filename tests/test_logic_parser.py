"""Tests for the formula parser and printer round-trip."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    Iff,
    Implies,
    ParseError,
    Xor,
    land,
    lnot,
    lor,
    parse,
    to_str,
    var,
)

a, b, c, d = var("a"), var("b"), var("c"), var("d")


class TestParsing:
    def test_atom(self):
        assert parse("a") == a

    def test_constants(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE
        assert parse("TRUE") == TRUE

    def test_negation(self):
        assert parse("~a") == lnot(a)
        assert parse("!a") == lnot(a)
        assert parse("~~a") == a  # constructor folds double negation

    def test_and_or(self):
        assert parse("a & b & c") == land(a, b, c)
        assert parse("a | b | c") == lor(a, b, c)

    def test_precedence_and_binds_tighter(self):
        assert parse("a | b & c") == lor(a, land(b, c))

    def test_parentheses(self):
        assert parse("(a | b) & c") == land(lor(a, b), c)

    def test_implication_right_associative(self):
        assert parse("a -> b -> c") == Implies(a, Implies(b, c))

    def test_implies_synonym(self):
        assert parse("a => b") == Implies(a, b)

    def test_iff(self):
        assert parse("a <-> b") == Iff(a, b)
        assert parse("a <=> b") == Iff(a, b)

    def test_xor(self):
        assert parse("a ^ b") == Xor(a, b)

    def test_xor_binds_tighter_than_implies(self):
        assert parse("a ^ b -> c") == Implies(Xor(a, b), c)

    def test_or_binds_tighter_than_xor(self):
        assert parse("a | b ^ c") == Xor(lor(a, b), c)

    def test_primed_names(self):
        assert parse("x' & x''") == land(var("x'"), var("x''"))

    def test_underscore_and_digits(self):
        assert parse("_t0 | b12") == lor(var("_t0"), var("b12"))

    def test_paper_example_formula(self):
        # P = (~a & ~b & ~d) | (~c & b & (a ^ d)) from Section 2.2.2
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        assert p.variables() == frozenset("abcd")
        assert p.evaluate({"a", "b"})  # N1 = {a,b}
        assert p.evaluate({"c"})  # N2
        assert p.evaluate({"b", "d"})  # N3
        assert p.evaluate(set())  # N4
        assert not p.evaluate({"a", "b", "c", "d"})


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "a &", "& a", "(a", "a)", "a b", "a ~ b", "->", "a @ b"],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "~a",
            "a & b",
            "a | b & c",
            "(a | b) & c",
            "a -> b -> c",
            "a <-> b",
            "a ^ b",
            "~(a & b) | ~c",
            "(a ^ b) -> (c <-> d)",
            "a & (b | ~c) & d",
        ],
    )
    def test_parse_print_parse(self, text):
        first = parse(text)
        printed = to_str(first)
        second = parse(printed)
        assert first == second

    def test_print_uses_minimal_parens(self):
        assert to_str(parse("a & b | c")) == "a & b | c"
        assert to_str(parse("(a | b) & c")) == "(a | b) & c"
