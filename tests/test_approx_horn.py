"""Tests for the Horn approximation module (Kautz-Selman companion)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import (
    horn_clauses_of_models,
    horn_glb_models,
    horn_lub_formula,
    horn_lub_models,
    intersection_closure,
    is_intersection_closed,
)
from repro.logic import all_interpretations, parse
from repro.sat import entails, equivalent


def models_of(text, names):
    f = parse(text)
    return frozenset(
        frozenset(m) for m in all_interpretations(names) if f.evaluate(m)
    )


class TestClosure:
    def test_closed_detection(self):
        assert is_intersection_closed([frozenset("a"), frozenset()])
        assert not is_intersection_closed([frozenset("a"), frozenset("b")])

    def test_closure_adds_meets(self):
        closed = intersection_closure([frozenset("ab"), frozenset("bc")])
        assert frozenset("b") in closed
        assert len(closed) == 3

    def test_closure_idempotent(self):
        base = [frozenset("ab"), frozenset("bc"), frozenset("ac")]
        once = intersection_closure(base)
        twice = intersection_closure(once)
        assert once == twice
        assert is_intersection_closed(once)

    def test_horn_formula_is_closed(self):
        # Models of a Horn formula are intersection-closed (classic fact).
        horn = models_of("(a -> b) & (a & b -> c)", ["a", "b", "c"])
        assert is_intersection_closed(horn)

    def test_disjunction_not_closed(self):
        disj = models_of("a | b", ["a", "b"])
        assert not is_intersection_closed(disj)

    @given(
        st.sets(
            st.sets(st.sampled_from(["a", "b", "c"])).map(frozenset),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_closure_is_least_property(self, models):
        closed = intersection_closure(models)
        assert is_intersection_closed(closed)
        assert frozenset(models) <= closed
        # Least: every element is a finite meet of original models.
        for element in closed:
            overlapping = [m for m in models if element <= m]
            assert overlapping
            meet = frozenset.intersection(*overlapping)
            assert meet == element


class TestHornLub:
    def test_lub_of_disjunction(self):
        # LUB of a|b adds the empty model (a & b's meet is {}, wait: models
        # {a},{b},{ab}; meets add {}).
        lub = horn_lub_models(models_of("a | b", ["a", "b"]))
        assert lub == frozenset(
            {frozenset(), frozenset("a"), frozenset("b"), frozenset("ab")}
        )

    def test_lub_formula_entailed(self):
        # F |= LUB(F): the LUB is a weakening.
        f = parse("a | b")
        lub = horn_lub_formula(models_of("a | b", ["a", "b"]), ["a", "b"])
        assert entails(f, lub)

    def test_lub_of_horn_is_itself(self):
        f = parse("(a -> b) & a")
        models = models_of("(a -> b) & a", ["a", "b"])
        lub = horn_lub_formula(models, ["a", "b"])
        assert equivalent(f, lub)

    def test_clauses_reject_non_closed(self):
        with pytest.raises(ValueError):
            horn_clauses_of_models([frozenset("a"), frozenset("b")], ["a", "b"])

    def test_clauses_capture_exact_models(self):
        closed = intersection_closure(models_of("a | b", ["a", "b"]))
        clauses = horn_clauses_of_models(closed, ["a", "b"])
        from repro.logic import big_and

        theory = big_and(clauses)
        recovered = frozenset(
            frozenset(m)
            for m in all_interpretations(["a", "b"])
            if theory.evaluate(m)
        )
        assert recovered == closed

    def test_empty_model_set_yields_false(self):
        clauses = horn_clauses_of_models([], ["a"])
        from repro.logic import big_and

        assert not any(
            big_and(clauses).evaluate(m) for m in all_interpretations(["a"])
        )


class TestHornGlb:
    def test_glb_of_disjunction(self):
        # Maximal closed subsets of {a},{b},{ab}: {{a},{ab}}, {{b},{ab}},
        # and... {{a},{b}} not closed; {{ab},{a},{b}} not closed.
        glbs = horn_glb_models(models_of("a | b", ["a", "b"]))
        as_sets = {frozenset(g) for g in glbs}
        assert frozenset({frozenset("a"), frozenset("ab")}) in as_sets
        assert frozenset({frozenset("b"), frozenset("ab")}) in as_sets

    def test_glb_of_horn_is_itself(self):
        models = models_of("a -> b", ["a", "b"])
        glbs = horn_glb_models(models)
        assert len(glbs) == 1
        assert glbs[0] == models

    @given(
        st.sets(
            st.sets(st.sampled_from(["a", "b", "c"])).map(frozenset),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_glb_maximal_closed_property(self, models):
        glbs = horn_glb_models(models)
        for glb in glbs:
            assert is_intersection_closed(glb)
            assert glb <= frozenset(models)
            # Maximality: adding any other model breaks closure.
            for extra in frozenset(models) - glb:
                assert not is_intersection_closed(glb | {extra})


class TestRevisionIntegration:
    def test_horn_lub_of_revised_base(self):
        # Revising can produce non-Horn results; the LUB recovers a Horn
        # over-approximation that every revised model satisfies.
        from repro.revision import revise

        result = revise(parse("a & b & c"), parse("~a | ~b"), "dalal")
        lub = horn_lub_formula(result.model_set, result.alphabet)
        for model in result.model_set:
            assert lub.evaluate(model)
