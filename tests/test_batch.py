"""Batched revision front-end: exact per-pair equivalence and cache sharing."""

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Theory, parse
from repro.revision import (
    BatchCache,
    MODEL_BASED_NAMES,
    revise,
    revise_many,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

LETTERS = ["a", "b", "c", "d", "e"]


def _pair(seed: int, letter_count: int = 4):
    from _util import random_tp_pair

    return random_tp_pair(seed, LETTERS[:letter_count])


class TestReviseMany:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=5),
        st.integers(min_value=2, max_value=5),
        st.sampled_from(sorted(MODEL_BASED_NAMES)),
    )
    def test_matches_per_pair_revise(self, seeds, letter_count, name):
        pairs = [_pair(seed, letter_count) for seed in seeds]
        batched = revise_many(pairs, name)
        assert len(batched) == len(pairs)
        for (t, p), result in zip(pairs, batched):
            single = revise(t, p, name)
            assert result.alphabet == single.alphabet
            assert result.model_set == single.model_set
            assert result.operator_name == single.operator_name

    def test_formula_based_operators_fall_back_to_per_pair(self):
        pairs = [_pair(seed) for seed in (1, 2)]
        for name in ("gfuv", "nebel", "widtio"):
            batched = revise_many(pairs, name)
            for (t, p), result in zip(pairs, batched):
                single = revise(t, p, name)
                assert result.model_set == single.model_set, name

    def test_shared_theory_compiles_once(self):
        t = parse("a & (b | c)")
        revisions = [parse("~a"), parse("~b & c"), parse("a ^ c")]
        cache = BatchCache()
        first = revise_many([(t, p) for p in revisions], "dalal", cache=cache)
        # Distinct compilations: T once per alphabet + each P once.  The
        # three pairs here share the alphabet {a, b, c}, so T misses once.
        assert cache.misses == 1 + len(revisions)
        # A second batch over the same cache returns the memoised results
        # outright (revision is a pure function of (operator, T, P)).
        before = cache.hits
        second = revise_many([(t, p) for p in revisions], "dalal", cache=cache)
        assert cache.misses == 1 + len(revisions)
        assert cache.hits == before + len(revisions)
        for old, new in zip(first, second):
            assert new is old

    def test_cache_keys_are_alphabet_sensitive(self):
        t = parse("a | b")
        cache = BatchCache()
        results = revise_many(
            [(t, parse("~a")), (t, parse("~a & c"))], "winslett", cache=cache
        )
        # Same T, but the second pair widens the alphabet with c: T must
        # recompile over the larger alphabet rather than reuse stale models.
        assert cache.misses == 4
        assert results[0].alphabet == ("a", "b")
        assert results[1].alphabet == ("a", "b", "c")
        for (theory, formula), result in zip(
            [(t, parse("~a")), (t, parse("~a & c"))], results
        ):
            assert result.model_set == revise(theory, formula, "winslett").model_set

    def test_iterated_batch_equivalence_via_theory_objects(self):
        theories = [Theory([parse("a & b")]), Theory([parse("~a | c")])]
        formula = parse("~b")
        pairs = [(theory, formula) for theory in theories]
        for name in MODEL_BASED_NAMES:
            batched = revise_many(pairs, name)
            for (theory, p), result in zip(pairs, batched):
                assert result.model_set == revise(theory, p, name).model_set


class TestWarmAndMultiOperator:
    def test_warm_precompiles_the_theory_table(self):
        cache = BatchCache()
        bits = cache.warm("a & (b | c)")
        # Small alphabet -> the big-int tier table is forced eagerly.
        assert bits._table is not None
        assert cache.misses == 1
        # The warmed compilation is the one the batch reuses: only the
        # revising formulas miss.
        revisions = [parse("~a"), parse("~b & c")]
        revise_many([("a & (b | c)", p) for p in revisions], "winslett", cache=cache)
        assert cache.misses == 1 + len(revisions)

    def test_warm_accepts_an_explicit_alphabet(self):
        cache = BatchCache()
        bits = cache.warm("a | b", alphabet=["a", "b", "c"])
        assert bits.alphabet.letters == ("a", "b", "c")
        revise_many([("a | b", parse("~a & c"))], "dalal", cache=cache)
        # T over the widened alphabet was already compiled by warm().
        assert cache.misses == 2

    def test_operator_sequence_matches_per_operator_calls(self):
        pairs = [_pair(seed) for seed in (3, 4, 5)]
        names = ["winslett", "forbus", "borgida", "dalal"]
        nested = revise_many(pairs, names)
        assert len(nested) == len(pairs)
        for (t, p), row in zip(pairs, nested):
            assert [r.operator_name for r in row] == names
            for name, result in zip(names, row):
                single = revise(t, p, name)
                assert result.alphabet == single.alphabet
                assert result.model_set == single.model_set

    def test_operator_sequence_shares_one_compilation_of_t(self):
        t = parse("a & (b | c)")
        revisions = [parse("~a"), parse("~b & c")]
        cache = BatchCache()
        revise_many(
            [(t, p) for p in revisions], ["winslett", "forbus", "satoh"],
            cache=cache,
        )
        # T compiles once for the shared alphabet, each P once — the three
        # operators all reuse those model sets (and the sharded/big-int
        # table cached on them).
        assert cache.misses == 1 + len(revisions)

    def test_operator_sequence_supports_formula_based_names(self):
        pairs = [_pair(6)]
        nested = revise_many(pairs, ["dalal", "widtio"])
        (t, p), = pairs
        assert nested[0][0].model_set == revise(t, p, "dalal").model_set
        assert nested[0][1].model_set == revise(t, p, "widtio").model_set
