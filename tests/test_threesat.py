"""Tests for the 3-SAT machinery of Definition 2.5."""

import random

import pytest

from repro.threesat import (
    all_instances,
    atom_names,
    canonical_clause,
    clause_formula,
    clause_index,
    instance_formula,
    is_satisfiable_brute,
    is_satisfiable_dpll,
    m_max,
    pi_max,
    random_instance,
    satisfying_assignments,
)


class TestPiMax:
    def test_count_matches_formula(self):
        # m_max(n) = 8 * C(n,3)
        assert m_max(3) == 8
        assert m_max(4) == 32
        assert m_max(5) == 80
        for n in (3, 4, 5):
            assert len(pi_max(n)) == m_max(n)

    def test_below_three_empty(self):
        assert pi_max(2) == []
        assert m_max(2) == 0

    def test_all_clauses_distinct(self):
        clauses = pi_max(4)
        assert len(set(clauses)) == len(clauses)

    def test_clauses_canonical(self):
        for clause in pi_max(4):
            names = [int(name[1:]) for name, _ in clause]
            assert names == sorted(names)
            assert len(set(names)) == 3

    def test_clause_index_bijective(self):
        index = clause_index(4)
        assert len(index) == 32
        assert sorted(index.values()) == list(range(1, 33))

    def test_polynomial_growth(self):
        # Theta(n^3): doubling n multiplies count by ~8.
        assert m_max(10) == 8 * 120
        assert m_max(20) == 8 * 1140


class TestCanonicalClause:
    def test_sorts_by_atom_index(self):
        clause = canonical_clause([("b3", True), ("b1", False), ("b2", True)])
        assert clause == (("b1", False), ("b2", True), ("b3", True))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            canonical_clause([("b1", True), ("b2", True)])

    def test_rejects_repeated_atom(self):
        with pytest.raises(ValueError):
            canonical_clause([("b1", True), ("b1", False), ("b2", True)])

    def test_rejects_foreign_atoms(self):
        with pytest.raises(ValueError):
            canonical_clause([("x", True), ("b1", False), ("b2", True)])


class TestSatisfiability:
    def test_empty_instance_satisfiable(self):
        assert is_satisfiable_brute(frozenset(), 3)

    def test_single_clause_satisfiable(self):
        clause = canonical_clause([("b1", True), ("b2", True), ("b3", True)])
        assert is_satisfiable_brute({clause}, 3)

    def test_all_clauses_unsatisfiable(self):
        # pi_max(3) contains every polarity pattern on (b1,b2,b3): no
        # assignment satisfies all eight.
        assert not is_satisfiable_brute(frozenset(pi_max(3)), 3)

    def test_brute_matches_dpll_random(self):
        rng = random.Random(7)
        for _ in range(25):
            instance = random_instance(4, rng.randint(0, 20), rng)
            assert is_satisfiable_brute(instance, 4) == is_satisfiable_dpll(instance)

    def test_satisfying_assignments_complete(self):
        clause = canonical_clause([("b1", True), ("b2", False), ("b3", True)])
        found = satisfying_assignments({clause}, 3)
        assert len(found) == 7  # all but {b2}
        assert frozenset({"b2"}) not in found

    def test_formula_rendering(self):
        clause = canonical_clause([("b1", True), ("b2", False), ("b3", True)])
        f = clause_formula(clause)
        assert f.evaluate({"b1"})
        assert not f.evaluate({"b2"})
        g = instance_formula({clause})
        assert g.variables() == {"b1", "b2", "b3"}


class TestGenerators:
    def test_random_instance_distinct_clauses(self):
        rng = random.Random(0)
        instance = random_instance(5, 30, rng)
        assert len(instance) == 30

    def test_random_instance_too_many(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_instance(3, 9, rng)

    def test_all_instances_n3_capped(self):
        capped = list(all_instances(3, max_clauses=1))
        # empty instance + 8 singletons
        assert len(capped) == 9

    def test_atom_names(self):
        assert atom_names(3) == ["b1", "b2", "b3"]
