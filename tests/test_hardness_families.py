"""Tests for the non-compactability reduction families.

Each theorem's construction promises an iff between 3-SAT satisfiability
and a revision-level question; these tests check the iff against brute-force
satisfiability on small clause universes.
"""

import random

import pytest

from repro.hardness import (
    bounded_gfuv,
    dalal_weber_family,
    forbus_family,
    gfuv_family,
    iterated_family,
    nebel_family,
    winslett_chain,
)
from repro.logic import Theory, land, parse
from repro.revision import get_operator, possible_worlds, revise
from repro.threesat import is_satisfiable_brute, pi_max


def small_universe(n=3, size=4, seed=0):
    """A reduced clause universe (subset of pi_max(n)) for fast checks."""
    rng = random.Random(seed)
    return tuple(rng.sample(pi_max(n), size))


def instances_over(universe, seed=0, count=8):
    """Some instances pi ⊆ universe: empty, full, and random subsets."""
    rng = random.Random(seed)
    chosen = [frozenset(), frozenset(universe)]
    while len(chosen) < count:
        size = rng.randint(1, len(universe))
        chosen.append(frozenset(rng.sample(list(universe), size)))
    return chosen


class TestNebelFamily:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_world_count_matches_generic_search(self, m):
        theory, p = nebel_family.build(m)
        worlds = possible_worlds(theory, p)
        assert len(worlds) == nebel_family.expected_world_count(m)

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_explicit_worlds_match_search(self, m):
        theory, p = nebel_family.build(m)
        generic = {frozenset(w.formulas()) for w in possible_worlds(theory, p)}
        direct = {frozenset(w.formulas()) for w in nebel_family.explicit_worlds(m)}
        assert generic == direct

    def test_exponential_size_growth(self):
        sizes = [nebel_family.explicit_representation_size(m) for m in (2, 4, 6)]
        # Doubling m should (far) more than double the size.
        assert sizes[1] > 3 * sizes[0]
        assert sizes[2] > 3 * sizes[1]

    def test_input_size_polynomial(self):
        theory, p = nebel_family.build(8)
        assert theory.size() + p.size() < 100

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            nebel_family.build(0)


class TestWinslettChain:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_world_count_matches_generic_search(self, m):
        theory, p = winslett_chain.build(m)
        worlds = possible_worlds(theory, p)
        assert len(worlds) == winslett_chain.expected_world_count(m)

    def test_p_size_constant(self):
        for m in (1, 4, 8):
            _, p = winslett_chain.build(m)
            assert p.size() == 1

    def test_theory_size_linear(self):
        t4, _ = winslett_chain.build(4)
        t8, _ = winslett_chain.build(8)
        assert t8.size() <= 2 * t4.size() + 4


class TestGfuvFamilyTheorem31:
    def test_construction_sizes_polynomial(self):
        family = gfuv_family.build(3)
        assert len(family.universe) == 8
        # |T_n| + |P_n| polynomial in n (here: linear in the universe size).
        total = family.theory.size() + family.p_formula.size()
        assert total < 300

    def test_w_pi_partitions_guards(self):
        family = gfuv_family.build(3, small_universe(size=4))
        pi = frozenset(family.universe[:2])
        w = family.w_pi(pi)
        assert set(w) == {"c1", "c2", "d3", "d4"}

    def test_rejects_foreign_clauses(self):
        family = gfuv_family.build(3, small_universe(size=2))
        foreign = pi_max(3)[-1]
        if foreign not in family.universe:
            with pytest.raises(ValueError):
                family.q_pi({foreign})

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_theorem31_iff_reduced_universe(self, seed):
        universe = small_universe(n=3, size=4, seed=seed)
        family = gfuv_family.build(3, universe)
        for pi in instances_over(universe, seed=seed, count=6):
            expected = is_satisfiable_brute(pi, 3)
            decided = gfuv_family.decide_sat_via_revision(family, pi)
            assert decided == expected, f"pi={sorted(pi)}"

    def test_theorem31_iff_full_universe_n3(self):
        family = gfuv_family.build(3)
        for pi in instances_over(family.universe, seed=7, count=5):
            expected = is_satisfiable_brute(pi, 3)
            assert gfuv_family.decide_sat_via_revision(family, pi) == expected

    def test_atomic_worlds_requires_atoms(self):
        with pytest.raises(ValueError):
            gfuv_family.atomic_possible_worlds(
                Theory.parse_many("a & b"), parse("a")
            )

    def test_atomic_worlds_match_generic_search(self):
        # Cross-check the model-projection shortcut against the generic
        # subset search on a small atomic theory.
        theory = Theory.parse_many("a", "b", "c")
        p = parse("~a | ~b")
        shortcut = {
            frozenset(w) for w in gfuv_family.atomic_possible_worlds(theory, p)
        }
        generic = {
            frozenset(v.name for v in w.formulas())
            for w in possible_worlds(theory, p)
        }
        assert shortcut == generic


class TestForbusFamilyTheorem33:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_model_checking_iff(self, seed):
        universe = small_universe(n=3, size=3, seed=seed)
        family = forbus_family.build(3, universe)
        result = revise(family.t_formula, family.p_formula, "forbus")
        for pi in instances_over(universe, seed=seed, count=5):
            if not pi:
                continue  # M_pi = {} is also the all-b-false model; skip edge
            expected_unsat = not is_satisfiable_brute(pi, 3)
            assert result.satisfies(family.m_pi(pi)) == expected_unsat, sorted(pi)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_entailment_iff(self, seed):
        universe = small_universe(n=3, size=3, seed=seed)
        family = forbus_family.build(3, universe)
        result = revise(family.t_formula, family.p_formula, "forbus")
        for pi in instances_over(universe, seed=seed + 10, count=4):
            if not pi:
                continue
            expected_sat = is_satisfiable_brute(pi, 3)
            assert result.entails(family.q_pi(pi)) == expected_sat, sorted(pi)

    def test_guard_matrix_shape(self):
        family = forbus_family.build(3, small_universe(size=3))
        assert len(family.c_matrix) == 5  # n + 2 rows
        assert all(len(row) == 3 for row in family.c_matrix)

    def test_sizes_polynomial(self):
        family = forbus_family.build(3)
        total = family.t_formula.size() + family.p_formula.size()
        assert total < 1500


class TestDalalWeberFamilyTheorem36:
    @pytest.mark.parametrize("operator", ["dalal", "weber"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_model_checking_iff(self, operator, seed):
        universe = small_universe(n=3, size=4, seed=seed)
        family = dalal_weber_family.build(3, universe)
        result = revise(family.t_formula, family.p_formula, operator)
        for pi in instances_over(universe, seed=seed, count=6):
            expected = is_satisfiable_brute(pi, 3)
            assert result.satisfies(family.c_pi(pi)) == expected, sorted(pi)

    def test_k_equals_n(self):
        from repro.compact import minimum_distance

        family = dalal_weber_family.build(3, small_universe(size=3))
        assert minimum_distance(family.t_formula, family.p_formula) == (
            dalal_weber_family.expected_k(family)
        )

    def test_dalal_models_subset_of_weber(self):
        family = dalal_weber_family.build(3, small_universe(size=3))
        dalal = revise(family.t_formula, family.p_formula, "dalal")
        weber = revise(family.t_formula, family.p_formula, "weber")
        assert dalal.model_set <= weber.model_set

    def test_sizes_polynomial(self):
        family = dalal_weber_family.build(3)
        total = family.t_formula.size() + family.p_formula.size()
        assert total < 500


class TestBoundedGfuvTheorem41:
    def test_p_prime_has_constant_size(self):
        base = gfuv_family.build(3, small_universe(size=2))
        family = bounded_gfuv.transform(base)
        assert family.p_formula.size() == 1

    def test_query_equivalence_with_unbounded_case(self):
        # T'_n *GFUV P'_n |= Q iff T_n *GFUV P_n |= Q for Q over the old
        # alphabet — checked via the generic possible-worlds engine.
        from repro.revision import GfuvOperator

        base = gfuv_family.build(3, small_universe(size=2))
        family = bounded_gfuv.transform(base)
        op = GfuvOperator()
        primed = op.revise(family.theory, family.p_formula)
        for pi in instances_over(base.universe, seed=3, count=4):
            q = base.q_pi(pi)
            original = gfuv_family.gfuv_entails(base.theory, base.p_formula, q)
            assert primed.entails(q) == original, sorted(pi)

    def test_theorem41_decides_sat(self):
        from repro.revision import GfuvOperator

        base = gfuv_family.build(3, small_universe(size=2, seed=5))
        family = bounded_gfuv.transform(base)
        primed = GfuvOperator().revise(family.theory, family.p_formula)
        for pi in instances_over(base.universe, seed=5, count=4):
            expected = is_satisfiable_brute(pi, 3)
            assert primed.entails(base.q_pi(pi)) == expected, sorted(pi)

    def test_switch_collision_rejected(self):
        base = gfuv_family.build(3, small_universe(size=2))
        with pytest.raises(ValueError):
            bounded_gfuv.transform(base, switch_name="r")


class TestIteratedFamilyTheorem65:
    @pytest.mark.parametrize("operator", ["dalal", "weber", "winslett", "forbus", "satoh", "borgida"])
    def test_model_checking_iff_small_universe(self, operator):
        universe = small_universe(n=3, size=3, seed=2)
        family = iterated_family.build(3, universe)
        op = get_operator(operator)
        result = op.iterate(family.t_formula, list(family.p_formulas))
        for pi in instances_over(universe, seed=2, count=5):
            expected = is_satisfiable_brute(pi, 3)
            assert result.satisfies(family.c_pi(pi)) == expected, (
                operator,
                sorted(pi),
            )

    def test_all_operators_coincide_on_family(self):
        # The Theorem 6.5 proof shows the model sets coincide step by step.
        universe = small_universe(n=3, size=3, seed=4)
        family = iterated_family.build(3, universe)
        results = {
            name: get_operator(name)
            .iterate(family.t_formula, list(family.p_formulas))
            .model_set
            for name in ("dalal", "weber", "winslett", "forbus", "satoh", "borgida")
        }
        assert len(set(map(frozenset, results.values()))) == 1

    def test_each_p_constant_size(self):
        family = iterated_family.build(4, small_universe(n=4, size=3))
        assert all(p.size() == 2 for p in family.p_formulas)
