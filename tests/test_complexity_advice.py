"""Tests for the executable advice-taking machines (Theorems 2.2/2.3)."""

import random

import pytest

from repro.complexity import DalalAdviceMachine, decide_sat_by_gfuv_reduction
from repro.hardness import gfuv_family
from repro.threesat import is_satisfiable_brute, pi_max


def small_universe(n=3, size=3, seed=0):
    rng = random.Random(seed)
    return tuple(rng.sample(pi_max(n), size))


def instances_over(universe, seed=0, count=6):
    rng = random.Random(seed)
    chosen = [frozenset(), frozenset(universe)]
    while len(chosen) < count:
        size = rng.randint(1, len(universe))
        chosen.append(frozenset(rng.sample(list(universe), size)))
    return chosen


class TestDalalAdviceMachine:
    @pytest.fixture(scope="class")
    def machine(self):
        return DalalAdviceMachine(3, small_universe(size=3, seed=1))

    def test_decides_satisfiability(self, machine):
        for pi in instances_over(machine.family.universe, seed=1):
            expected = is_satisfiable_brute(pi, 3)
            assert machine.decide(pi) == expected, sorted(pi)

    def test_advice_is_polynomial_size(self):
        # Advice size grows polynomially with the universe size.
        sizes = []
        for size in (2, 3, 4):
            machine = DalalAdviceMachine(3, small_universe(size=size, seed=2))
            sizes.append(machine.advice_size())
        assert sizes[2] < 4 * sizes[0]

    def test_model_checking_semantics_matches_decide(self, machine):
        # Ground-truth model checking agrees with the advice pipeline.
        for pi in instances_over(machine.family.universe, seed=3, count=4):
            assert machine.model_check_semantics(pi) == machine.decide(pi)

    def test_query_rep_unsound_for_model_checking(self, machine):
        # The query-equivalent advice constrains auxiliary letters, so naive
        # model checking C_pi |= A(n) diverges from the semantics — the
        # query-YES / logical-NO gap of the Dalal row of Table 3.
        disagreements = 0
        for pi in instances_over(machine.family.universe, seed=4, count=6):
            naive = machine.model_check_against_advice(pi)
            truth = machine.model_check_semantics(pi)
            if naive != truth:
                disagreements += 1
        assert disagreements > 0

    def test_advice_only_depends_on_size(self, machine):
        # The advice was compiled before seeing any instance; deciding two
        # different instances reuses the same advice object.
        pis = instances_over(machine.family.universe, seed=5, count=3)
        advice_before = machine.advice
        for pi in pis:
            machine.decide(pi)
        assert machine.advice is advice_before


class TestGfuvReduction:
    def test_decides_satisfiability(self):
        universe = small_universe(size=4, seed=6)
        family = gfuv_family.build(3, universe)
        for pi in instances_over(universe, seed=6):
            expected = is_satisfiable_brute(pi, 3)
            assert decide_sat_by_gfuv_reduction(family, pi) == expected
