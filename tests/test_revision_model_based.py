"""Tests for the six model-based operators on the paper's worked example.

Section 2.2.2 of the paper works one example end-to-end (Tables 1 and 2):

    T = a & b & c
    P = (~a & ~b & ~d) | (~c & b & (a ^ d))

with models M1 = {a,b,c,d}, M2 = {a,b,c} of T, and N1 = {a,b}, N2 = {c},
N3 = {b,d}, N4 = {} of P.  The stated outcomes are:

    Winslett, Borgida: {N1, N2, N3}
    Forbus:            {N1, N3}
    Satoh:             {N1, N2}
    Dalal:             {N1}
    Weber:             {N1, N2, N3, N4}
"""

import pytest

from repro.logic import Theory, interp, parse
from repro.revision import (
    delta,
    k_global,
    k_pointwise,
    mu,
    omega,
    revise,
)

T_TEXT = "a & b & c"
P_TEXT = "(~a & ~b & ~d) | (~c & b & (a ^ d))"

M1 = interp("abcd")
M2 = interp("abc")
N1 = interp("ab")
N2 = interp("c")
N3 = interp("bd")
N4 = interp("")

T_MODELS = frozenset({M1, M2})
P_MODELS = frozenset({N1, N2, N3, N4})


@pytest.fixture(scope="module")
def T():
    return parse(T_TEXT)


@pytest.fixture(scope="module")
def P():
    return parse(P_TEXT)


class TestModelSetsOfExample:
    def test_models_of_T(self, T):
        assert set(
            m for m in [M1, M2, N1, N2, N3, N4] if T.evaluate(m)
        ) == {M1, M2}

    def test_models_of_P(self, P):
        for n in (N1, N2, N3, N4):
            assert P.evaluate(n)
        assert not P.evaluate(M1)
        assert not P.evaluate(M2)


class TestDistanceMeasures:
    """Tables 1 and 2 of the paper."""

    def test_table1_symmetric_differences(self):
        # Row M1.
        assert M1 ^ N1 == frozenset("cd")
        assert M1 ^ N2 == frozenset("abd")
        assert M1 ^ N3 == frozenset("ac")
        assert M1 ^ N4 == frozenset("abcd")
        # Row M2.
        assert M2 ^ N1 == frozenset("c")
        assert M2 ^ N2 == frozenset("ab")
        assert M2 ^ N3 == frozenset("acd")
        assert M2 ^ N4 == frozenset("abc")

    def test_table2_cardinalities(self):
        assert [len(M1 ^ n) for n in (N1, N2, N3, N4)] == [2, 3, 2, 4]
        assert [len(M2 ^ n) for n in (N1, N2, N3, N4)] == [1, 2, 3, 3]

    def test_mu_M1(self):
        assert set(mu(M1, P_MODELS)) == {
            frozenset("cd"),
            frozenset("abd"),
            frozenset("ac"),
        }

    def test_mu_M2(self):
        assert set(mu(M2, P_MODELS)) == {frozenset("c"), frozenset("ab")}

    def test_k_pointwise(self):
        assert k_pointwise(M1, P_MODELS) == 2
        assert k_pointwise(M2, P_MODELS) == 1

    def test_delta(self):
        assert set(delta(T_MODELS, P_MODELS)) == {
            frozenset("c"),
            frozenset("ab"),
        }

    def test_k_global(self):
        assert k_global(T_MODELS, P_MODELS) == 1

    def test_omega(self):
        assert omega(T_MODELS, P_MODELS) == frozenset("abc")

    def test_mu_empty_p_raises(self):
        with pytest.raises(ValueError):
            k_pointwise(M1, [])


class TestPaperOutcomes:
    def test_winslett(self, T, P):
        assert revise(T, P, "winslett").model_set == {N1, N2, N3}

    def test_borgida_same_as_winslett_here(self, T, P):
        assert revise(T, P, "borgida").model_set == {N1, N2, N3}

    def test_forbus(self, T, P):
        assert revise(T, P, "forbus").model_set == {N1, N3}

    def test_satoh(self, T, P):
        assert revise(T, P, "satoh").model_set == {N1, N2}

    def test_dalal(self, T, P):
        assert revise(T, P, "dalal").model_set == {N1}

    def test_weber_selects_everything_here(self, T, P):
        assert revise(T, P, "weber").model_set == {N1, N2, N3, N4}


class TestSectionFourExample:
    """The running example of Sections 4.1/4.2:
    T = a&b&c&d&e, P = ~a | ~b."""

    def test_forbus_models(self):
        result = revise(parse("a & b & c & d & e"), parse("~a | ~b"), "forbus")
        assert result.model_set == {interp("acde"), interp("bcde")}

    def test_satoh_and_dalal_models(self):
        T = parse("a & b & c & d & e")
        P = parse("~a | ~b")
        assert revise(T, P, "satoh").model_set == {interp("acde"), interp("bcde")}
        assert revise(T, P, "dalal").model_set == {interp("acde"), interp("bcde")}

    def test_weber_adds_third_model(self):
        result = revise(parse("a & b & c & d & e"), parse("~a | ~b"), "weber")
        assert result.model_set == {
            interp("acde"),
            interp("bcde"),
            interp("cde"),
        }

    def test_winslett_example_section6(self):
        # Section 6 example: same T, P = ~a; unique result model {b,c,d,e}.
        result = revise(parse("a & b & c & d & e"), parse("~a"), "winslett")
        assert result.model_set == {interp("bcde")}


class TestDegenerateCases:
    def test_unsatisfiable_P_gives_no_models(self):
        for name in ("winslett", "borgida", "forbus", "satoh", "dalal", "weber"):
            result = revise(parse("a"), parse("b & ~b"), name)
            assert not result.is_consistent()

    def test_unsatisfiable_T_gives_P(self):
        for name in ("winslett", "borgida", "forbus", "satoh", "dalal", "weber"):
            result = revise(parse("a & ~a"), parse("b"), name)
            assert result.model_set == {
                frozenset({"b"}),
                frozenset({"a", "b"}),
            }

    def test_consistent_case_for_revision_operators(self):
        # "A fundamental property of revision is that if T ∧ P is not
        # contradictory then the result of revising T with P is simply T ∧ P."
        T = parse("g | b")
        P = parse("~g")
        for name in ("borgida", "satoh", "dalal", "weber"):
            result = revise(T, P, name)
            assert result.model_set == {frozenset({"b"})}, name

    def test_update_differs_on_consistent_case(self):
        # The office example: update does NOT conclude Bill is in the office.
        T = parse("g | b")
        P = parse("~g")
        result = revise(T, P, "winslett")
        assert result.model_set == {frozenset(), frozenset({"b"})}


class TestRevisionResultApi:
    def test_entails(self, T, P):
        result = revise(T, P, "dalal")
        assert result.entails(parse("a & b"))
        assert not result.entails(parse("c"))

    def test_entails_rejects_foreign_letters(self, T, P):
        result = revise(T, P, "dalal")
        with pytest.raises(ValueError):
            result.entails(parse("z"))

    def test_inconsistent_result_entails_everything(self):
        result = revise(parse("a"), parse("a & ~a"), "dalal")
        assert result.entails(parse("a"))
        assert result.entails(parse("~a"))

    def test_satisfies(self, T, P):
        result = revise(T, P, "forbus")
        assert result.satisfies(N1)
        assert not result.satisfies(N2)

    def test_formula_round_trip(self, T, P):
        from repro.sat import models

        result = revise(T, P, "satoh")
        explicit = result.formula()
        assert set(models(explicit, result.alphabet)) == set(result.model_set)

    def test_repr_stable(self, T, P):
        assert "dalal" in repr(revise(T, P, "dalal"))
