"""Tests for the iterated compact representations (Theorem 5.1, formula (10),
formulas (12)-(16)) against the ground-truth iterated semantics."""

import random

import pytest

from repro.compact import (
    borgida_bounded_query,
    bounded_iterated,
    dalal_iterated,
    forbus_bounded_query,
    is_query_equivalent_to,
    omegas_iterated,
    satoh_bounded_query,
    weber_iterated,
    widtio_iterated,
    winslett_bounded_query,
)
from repro.logic import Theory, interp, land, lnot, lor, parse, var
from repro.revision import get_operator, revise_iterated
from repro.sat import is_satisfiable


def _random_sequence(seed: int, letters=("a", "b", "c", "d"), steps=2, p_width=2):
    """A satisfiable theory plus a sequence of small satisfiable updates."""
    rng = random.Random(seed)

    def clause(pool, width):
        lits = []
        for _ in range(rng.randint(1, width)):
            name = rng.choice(pool)
            atom = var(name)
            lits.append(atom if rng.random() < 0.5 else lnot(atom))
        return lor(*lits)

    while True:
        t = land(*(clause(list(letters), 3) for _ in range(rng.randint(1, 3))))
        if is_satisfiable(t):
            break
    updates = []
    pool = list(letters[:p_width + 1])
    while len(updates) < steps:
        p = clause(pool, p_width)
        if is_satisfiable(p):
            updates.append(p)
    return t, updates


class TestDalalIterated:
    def test_single_step_matches_theorem34(self):
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        representation = dalal_iterated(t, [p])
        assert is_query_equivalent_to(representation, revise_iterated(t, [p], "dalal"))
        assert representation.metadata["ks"] == (1,)

    def test_two_steps(self):
        t = parse("a & b & c")
        p1 = parse("~a")
        p2 = parse("~b")
        representation = dalal_iterated(t, [p1, p2])
        ground = revise_iterated(t, [p1, p2], "dalal")
        assert is_query_equivalent_to(representation, ground)
        assert representation.metadata["ks"] == (1, 1)

    def test_three_steps_with_new_letters(self):
        t = parse("a & b")
        ps = [parse("~a"), parse("c"), parse("~b | ~c")]
        representation = dalal_iterated(t, ps)
        ground = revise_iterated(t, ps, "dalal")
        assert is_query_equivalent_to(representation, ground)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_sequences(self, seed):
        t, updates = _random_sequence(seed)
        representation = dalal_iterated(t, updates)
        ground = revise_iterated(t, updates, "dalal")
        assert is_query_equivalent_to(representation, ground)

    def test_linear_growth_in_m(self):
        # |Φ_m| grows linearly with m (one alphabet copy + EXA per step),
        # not exponentially as the naive m-fold Theorem 3.4 would.
        t = parse("a & b & c")
        updates = [parse("~a"), parse("a"), parse("~b"), parse("b")]
        sizes = [
            dalal_iterated(t, updates[:m]).size() for m in (1, 2, 3, 4)
        ]
        increments = [sizes[i + 1] - sizes[i] for i in range(3)]
        assert max(increments) <= 2 * min(increments) + 16

    def test_supplied_ks(self):
        t = parse("a & b")
        ps = [parse("~a")]
        representation = dalal_iterated(t, ps, ks=[1])
        assert is_query_equivalent_to(representation, revise_iterated(t, ps, "dalal"))

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            dalal_iterated(parse("a"), [])


class TestWeberIterated:
    def test_paper_section5_example(self):
        # T = x1&...&x5, P1 = ~x1|~x2, P2 = ~x5; models after both steps:
        # {x1,x3,x4}, {x2,x3,x4}, {x3,x4}.
        t = parse("x1 & x2 & x3 & x4 & x5")
        p1 = parse("~x1 | ~x2")
        p2 = parse("~x5")
        omegas = omegas_iterated(t, [p1, p2])
        assert omegas == [frozenset({"x1", "x2"}), frozenset({"x5"})]
        representation = weber_iterated(t, [p1, p2])
        ground = revise_iterated(t, [p1, p2], "weber")
        assert ground.model_set == {
            interp(["x1", "x3", "x4"]),
            interp(["x2", "x3", "x4"]),
            interp(["x3", "x4"]),
        }
        assert is_query_equivalent_to(representation, ground)

    def test_single_step_matches_theorem35(self):
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        representation = weber_iterated(t, [p])
        assert is_query_equivalent_to(representation, revise_iterated(t, [p], "weber"))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_sequences(self, seed):
        t, updates = _random_sequence(seed)
        representation = weber_iterated(t, updates)
        ground = revise_iterated(t, updates, "weber")
        assert is_query_equivalent_to(representation, ground)

    def test_linear_size(self):
        # Formula (10) has size <= |T| + sum |P^i| (pure renaming).
        t = parse("x1 & x2 & x3 & x4 & x5")
        ps = [parse("~x1 | ~x2"), parse("~x5")]
        representation = weber_iterated(t, ps)
        assert representation.size() <= t.size() + sum(p.size() for p in ps)


class TestBoundedQuerySingle:
    """Formulas (12), (13), (14) for a single revision."""

    def test_winslett_formula12_paper_example(self):
        # Section 6 example: T = x1..x5 all true, P = ~x1.
        t = parse("x1 & x2 & x3 & x4 & x5")
        p = parse("~x1")
        representation = winslett_bounded_query(t, p)
        ground = revise_iterated(t, [p], "winslett")
        assert ground.model_set == {interp(["x2", "x3", "x4", "x5"])}
        assert is_query_equivalent_to(representation, ground)

    @pytest.mark.parametrize("seed", range(8))
    def test_winslett_random(self, seed):
        t, (p,) = _random_sequence(seed, steps=1)
        representation = winslett_bounded_query(t, p)
        assert is_query_equivalent_to(representation, revise_iterated(t, [p], "winslett"))

    @pytest.mark.parametrize("seed", range(8))
    def test_borgida_random(self, seed):
        t, (p,) = _random_sequence(seed, steps=1)
        representation = borgida_bounded_query(t, p)
        assert is_query_equivalent_to(representation, revise_iterated(t, [p], "borgida"))

    @pytest.mark.parametrize("seed", range(8))
    def test_forbus_random(self, seed):
        t, (p,) = _random_sequence(seed, steps=1)
        representation = forbus_bounded_query(t, p)
        assert is_query_equivalent_to(representation, revise_iterated(t, [p], "forbus"))

    @pytest.mark.parametrize("seed", range(8))
    def test_satoh_random(self, seed):
        t, (p,) = _random_sequence(seed, steps=1)
        representation = satoh_bounded_query(t, p)
        assert is_query_equivalent_to(representation, revise_iterated(t, [p], "satoh"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            bounded_iterated("dalal", parse("a"), [parse("~a")])


class TestBoundedQueryIterated:
    """Formulas (15)/(16) and analogues, over sequences."""

    @pytest.mark.parametrize("name", ["winslett", "borgida", "forbus", "satoh"])
    @pytest.mark.parametrize("seed", range(4))
    def test_two_step_sequences(self, name, seed):
        t, updates = _random_sequence(seed, steps=2, p_width=2)
        representation = bounded_iterated(name, t, updates)
        ground = revise_iterated(t, updates, name)
        assert is_query_equivalent_to(representation, ground), name

    @pytest.mark.parametrize("name", ["winslett", "forbus"])
    def test_three_step_sequence(self, name):
        t = parse("a & b & c")
        updates = [parse("~a"), parse("~b"), parse("a | b")]
        representation = bounded_iterated(name, t, updates)
        ground = revise_iterated(t, updates, name)
        assert is_query_equivalent_to(representation, ground)

    def test_winslett_linear_growth_in_m(self):
        # Theorem 6.1: size polynomial in |T| + m.  Our realisation adds a
        # constant-size block per step.
        t = parse("a & b & c")
        updates = [parse("~a"), parse("a"), parse("~a"), parse("a")]
        sizes = [
            bounded_iterated("winslett", t, updates[:m]).size()
            for m in (1, 2, 3, 4)
        ]
        increments = [sizes[i + 1] - sizes[i] for i in range(3)]
        assert max(increments) <= 2 * min(increments) + 16

    def test_satoh_linear_growth_after_correction(self):
        # With the corrected formula (13) (feasibility bits instead of
        # in-formula T copies) iterated Satoh adds a bounded-size block per
        # step, matching Theorem 6.2.
        t = parse("a & b & c")
        updates = [parse("~a"), parse("a"), parse("~a"), parse("a")]
        sizes = [
            bounded_iterated("satoh", t, updates[:m]).size() for m in (1, 2, 3, 4)
        ]
        increments = [sizes[i + 1] - sizes[i] for i in range(3)]
        assert max(increments) <= 2 * min(increments) + 16

    def test_satoh_formula13_literal_counterexample(self):
        # The instance on which the literal transcription of formula (13)
        # fails (documented in compact.qbf.satoh_step): T = ~a | d, P = a.
        t = parse("~a | d")
        p = parse("a")
        representation = satoh_bounded_query(t, p)
        ground = revise_iterated(t, [p], "satoh")
        assert ground.model_set == {frozenset({"a", "d"})}
        assert is_query_equivalent_to(representation, ground)


class TestWidtioIterated:
    def test_matches_ground_truth(self):
        t = Theory.parse_many("a", "b", "c")
        updates = [parse("~a"), parse("~b")]
        representation = widtio_iterated(t, updates)
        ground = get_operator("widtio").iterate(t, updates)
        assert representation.projected_models() == ground.model_set

    def test_size_stays_bounded(self):
        t = Theory.parse_many("a", "b", "c", "d")
        updates = [parse("~a"), parse("~b"), parse("~c")]
        representation = widtio_iterated(t, updates)
        total_input = t.size() + sum(p.size() for p in updates)
        assert representation.size() <= total_input
