"""Hypothesis-driven properties of the revision operators.

Random-formula analogues of the seeded suites: the strategies generate
arbitrary (satisfiable) formulas over a 3-letter alphabet and assert the
paper's structural facts on whatever comes out.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.logic import FALSE, TRUE, all_interpretations, land, lnot, lor, var
from repro.revision import MODEL_BASED_NAMES, revise
from repro.sat import is_satisfiable, models as sat_models

NAMES = ["a", "b", "c"]


def _formulas(max_leaves: int = 6):
    leaves = st.sampled_from(NAMES).map(var)

    def extend(children):
        return st.one_of(
            children.map(lnot),
            st.tuples(children, children).map(lambda t: land(*t)),
            st.tuples(children, children).map(lambda t: lor(*t)),
            st.tuples(children, children).map(lambda t: t[0] >> t[1]),
            st.tuples(children, children).map(lambda t: t[0] ^ t[1]),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


satisfiable_formulas = _formulas().filter(is_satisfiable)


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=40, deadline=None)
def test_success_postulate(t, p):
    """T * P |= P for every model-based operator."""
    for name in MODEL_BASED_NAMES:
        result = revise(t, p, name)
        for model in result.model_set:
            assert p.evaluate(model), name


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=40, deadline=None)
def test_consistency_preservation(t, p):
    """T, P satisfiable => T * P satisfiable (all model-based operators)."""
    for name in MODEL_BASED_NAMES:
        assert revise(t, p, name).is_consistent(), name


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=30, deadline=None)
def test_fig2_arrows(t, p):
    results = {name: revise(t, p, name).model_set for name in MODEL_BASED_NAMES}
    assert results["dalal"] <= results["satoh"]
    assert results["dalal"] <= results["forbus"]
    assert results["satoh"] <= results["winslett"]
    assert results["forbus"] <= results["winslett"]
    assert results["satoh"] <= results["weber"]
    assert results["borgida"] <= results["winslett"]


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=30, deadline=None)
def test_revision_operators_conjunction_on_consistent(t, p):
    assume(is_satisfiable(land(t, p)))
    alphabet = sorted(t.variables() | p.variables())
    expected = set(sat_models(land(t, p), alphabet))
    for name in ("borgida", "satoh", "dalal", "weber"):
        assert revise(t, p, name).model_set == expected, name


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=25, deadline=None)
def test_dalal_compact_query_equivalent(t, p):
    """Theorem 3.4 holds on arbitrary random formulas, not just CNF-ish."""
    from repro.compact import dalal_compact, is_query_equivalent_to

    representation = dalal_compact(t, p)
    assert is_query_equivalent_to(representation, revise(t, p, "dalal"))


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=25, deadline=None)
def test_weber_compact_query_equivalent(t, p):
    from repro.compact import is_query_equivalent_to, weber_compact

    representation = weber_compact(t, p)
    assert is_query_equivalent_to(representation, revise(t, p, "weber"))


@given(t=satisfiable_formulas, p=satisfiable_formulas)
@settings(max_examples=15, deadline=None)
def test_bounded_constructions_logically_equivalent(t, p):
    from repro.compact import BOUNDED_CONSTRUCTIONS, is_logically_equivalent_to

    for name, construct in BOUNDED_CONSTRUCTIONS.items():
        representation = construct(t, p)
        assert is_logically_equivalent_to(representation, revise(t, p, name)), name
