"""Tests for :mod:`repro.obs` — the unified telemetry subsystem.

Covers, in rough dependency order:

* the :class:`~repro.obs.metrics.Registry` itself — counters, gauges,
  log-scale latency histograms, text/JSON/Prometheus dumps, reset;
* the :class:`~repro.obs.metrics.CounterGroup` /
  :class:`~repro.obs.metrics.MirrorCounter` shims that keep the
  historical counter-bag idioms (``STATS["k"] += 1``, ``dict(STATS)``,
  ``"k" in STATS``) working on top of the registry;
* thread-safety: an 8-thread increment hammer must land exact counts
  (the regression the atomic ``inc`` spelling exists for);
* cross-process flow: pool workers ship metric deltas and buffered span
  events back in envelopes, the parent merges them, and a reset really
  clears the merged deltas (the stale-counter regression);
* span trees: any traced revise yields a well-formed B/E tree with
  nested child intervals and a tier attribution matching
  ``RevisionResult.engine_tier``, on the numpy and pure-int backends,
  with masks bit-identical to the untraced run (hypothesis-driven);
* the ``repro stats`` / ``repro trace show`` CLI surfacing.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import cli, obs, runtime
from repro.logic import bitmodels, land, lnot, lor, shards, sparse, var
from repro.obs import metrics as obs_metrics
from repro.revision import revise
from repro.runtime import faults
from repro.runtime import pool as rpool
from repro.sat import allsat


@pytest.fixture(autouse=True)
def disarm_faults():
    yield
    faults.reset("")


@pytest.fixture(autouse=True)
def no_trace():
    """Every test starts and ends with tracing off."""
    obs.close()
    yield
    obs.close()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_inc_put_max_get(self):
        reg = obs_metrics.Registry()
        assert reg.inc("t.a") == 1
        assert reg.inc("t.a", 4) == 5
        reg.put("t.b", 7)
        reg.put("t.b", 3)
        assert reg.get("t.b") == 3
        reg.max_update("t.c", 5)
        reg.max_update("t.c", 2)
        assert reg.get("t.c") == 5
        assert reg.get("t.missing") == 0
        assert reg.get("t.missing", -1) == -1

    def test_histogram_observe_and_snapshot(self):
        reg = obs_metrics.Registry()
        samples = [0.0005, 0.0007, 0.1, 3.0, 1000.0]
        for value in samples:
            reg.observe("span.x.s", value)
        hist = reg.snapshot()["histograms"]["span.x.s"]
        assert hist["count"] == len(samples)
        assert hist["sum_s"] == pytest.approx(sum(samples))
        assert sum(hist["buckets"].values()) == len(samples)
        # 1000s is past the largest finite bucket (2^7 = 128 s).
        assert hist["buckets"]["+Inf"] == 1

    def test_render_text_groups_by_prefix(self):
        reg = obs_metrics.Registry()
        reg.inc("alpha.one")
        reg.inc("beta.two", 3)
        reg.observe("span.y.s", 0.25)
        text = reg.render_text()
        assert "[alpha]" in text and "[beta]" in text
        assert "alpha.one" in text and "beta.two" in text
        assert "[latency]" in text and "span.y.s" in text

    def test_render_prometheus_histogram_cumulative(self):
        reg = obs_metrics.Registry()
        reg.inc("allsat.conflicts", 2)
        for value in (0.001, 0.002, 0.004, 5.0):
            reg.observe("span.z.s", value)
        text = reg.render_prometheus()
        assert "# TYPE repro_allsat_conflicts counter" in text
        assert "repro_allsat_conflicts 2" in text
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_span_z_s_seconds_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)  # cumulative
        assert 'le="+Inf"' in text
        assert "repro_span_z_s_seconds_count 4" in text

    def test_reset_restores_baselines_and_drops_dynamic(self):
        reg = obs_metrics.Registry()
        reg.declare_group("g", baseline=("base",))
        reg.inc("g.base", 5)
        reg.inc("g.dynamic", 2)
        reg.observe("span.w.s", 0.1)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"g.base": 0}
        assert snap["histograms"] == {}

    def test_reset_prefix_is_scoped(self):
        reg = obs_metrics.Registry()
        reg.inc("a.x")
        reg.inc("b.y")
        reg.reset_prefix("a")
        assert reg.get("a.x") == 0 and not reg._contains("a.x")
        assert reg.get("b.y") == 1

    def test_capture_delta_and_merge(self):
        reg = obs_metrics.Registry()
        reg.declare_group("g", max_keys=("high",))
        reg.inc("g.adds", 10)
        reg.max_update("g.high", 4)
        baseline = reg.capture_baseline()
        reg.inc("g.adds", 3)
        reg.max_update("g.high", 9)
        reg.observe("span.q.s", 0.5)
        envelope = reg.capture_delta(baseline)
        assert envelope["add"] == {"g.adds": 3}
        assert envelope["max"] == {"g.high": 9}
        assert envelope["hist"]["span.q.s"]["count"] == 1
        other = obs_metrics.Registry()
        other.declare_group("g", max_keys=("high",))
        other.inc("g.adds", 100)
        other.max_update("g.high", 11)
        other.merge(envelope)
        assert other.get("g.adds") == 103
        assert other.get("g.high") == 11  # max wins over the shipped 9
        assert other.snapshot()["histograms"]["span.q.s"]["count"] == 1


# ---------------------------------------------------------------------------
# CounterGroup / MirrorCounter shims
# ---------------------------------------------------------------------------


class TestCounterGroup:
    def test_legacy_dict_idioms(self):
        reg = obs_metrics.Registry()
        group = obs_metrics.CounterGroup(
            "legacy", baseline=("seen",), registry=reg
        )
        assert isinstance(group, dict)
        assert group["seen"] == 0
        group["seen"] += 1
        group["extra"] = 5
        assert "extra" in group and "nope" not in group
        assert group.get("nope", 0) == 0
        assert dict(group) == {"seen": 1, "extra": 5}
        assert group == {"seen": 1, "extra": 5}
        assert group.copy() == {"seen": 1, "extra": 5}
        assert sorted(group) == ["extra", "seen"]
        assert len(group) == 2 and bool(group)
        assert group.pop("extra") == 5
        with pytest.raises(KeyError):
            group["extra"]
        assert reg.get("legacy.seen") == 1  # registry-backed storage

    def test_reset_reseeds_baseline_only(self):
        reg = obs_metrics.Registry()
        group = obs_metrics.CounterGroup(
            "rg", baseline=("a", "b"), registry=reg
        )
        group.inc("a", 3)
        group["dyn"] = 9
        group.reset()
        assert dict(group) == {"a": 0, "b": 0}

    def test_max_update_keys(self):
        reg = obs_metrics.Registry()
        group = obs_metrics.CounterGroup(
            "mx", max_keys=("depth",), registry=reg
        )
        group.max_update("depth", 7)
        group.max_update("depth", 3)
        assert group["depth"] == 7

    def test_eight_thread_increment_hammer(self):
        """Exact counts from 8 threads — the `+=` data race regression."""
        reg = obs_metrics.Registry()
        group = obs_metrics.CounterGroup("hammer", registry=reg)
        threads, per_thread = 8, 2500
        barrier = threading.Barrier(threads)

        def pound():
            barrier.wait()
            for _ in range(per_thread):
                group.inc("hits")
                reg.inc("hammer.direct")

        pool = [threading.Thread(target=pound) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert group["hits"] == threads * per_thread
        assert reg.get("hammer.direct") == threads * per_thread

    def test_checkpoint_threads_exact(self):
        """Threaded checkpoints under a budget count exactly."""
        before = runtime.STATS.get("checkpoints", 0)
        threads, per_thread = 8, 1000
        with runtime.Budget():
            pool = [
                threading.Thread(
                    target=lambda: [
                        runtime.checkpoint() for _ in range(per_thread)
                    ]
                )
                for _ in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        assert (
            runtime.STATS["checkpoints"] - before == threads * per_thread
        )


class TestMirrorCounter:
    def test_mirrors_deltas_into_registry(self):
        reg = obs_metrics.Registry()
        counter = obs_metrics.MirrorCounter("mc", registry=reg)
        counter["hits"] += 1
        counter["hits"] += 2
        counter["misses"] = 5
        assert counter["hits"] == 3 and counter["misses"] == 5
        assert reg.get("mc.hits") == 3 and reg.get("mc.misses") == 5
        counter["misses"] = 2  # lowering writes a negative delta
        assert reg.get("mc.misses") == 2
        del counter["hits"]
        assert reg.get("mc.hits") == 0
        counter.clear()
        assert reg.get("mc.misses") == 0

    def test_two_instances_aggregate(self):
        reg = obs_metrics.Registry()
        first = obs_metrics.MirrorCounter("agg", registry=reg)
        second = obs_metrics.MirrorCounter("agg", registry=reg)
        first["n"] += 2
        second["n"] += 3
        assert first["n"] == 2 and second["n"] == 3  # instance-local
        assert reg.get("agg.n") == 5  # global aggregate

    def test_pickle_round_trip(self):
        import pickle

        counter = obs_metrics.MirrorCounter("pkl")
        counter["k"] += 2
        clone = pickle.loads(pickle.dumps(counter))
        assert dict(clone) == {"k": 2}


# ---------------------------------------------------------------------------
# Cross-process envelopes and resets
# ---------------------------------------------------------------------------


def _bump_and_square(value):
    """Pool worker: bump counters that must merge back to the parent."""
    obs_metrics.REGISTRY.inc("obstest.pool.bumps")
    allsat.STATS.inc("models", 2)
    return value * value


def _traced_unit(value):
    with obs.span("unit", item=value):
        return value + 1


class TestWorkerTelemetry:
    def test_fanout_merges_worker_deltas(self):
        before_bumps = obs_metrics.REGISTRY.get("obstest.pool.bumps")
        before_models = allsat.STATS["models"]
        out = rpool.map_with_recovery(
            _bump_and_square, list(range(4)), workers=2
        )
        assert out == [0, 1, 4, 9]
        assert (
            obs_metrics.REGISTRY.get("obstest.pool.bumps")
            == before_bumps + 4
        )
        assert allsat.STATS["models"] == before_models + 8

    def test_reset_clears_merged_worker_deltas(self):
        """The stale-counter regression: after a crashy fan-out, one
        reset leaves no residue in fault/crash counters."""
        runtime.STATS.reset()
        allsat.STATS.reset()
        faults.reset("worker-crash@2")
        out = rpool.map_with_recovery(
            _bump_and_square, list(range(4)), workers=2
        )
        assert out == [0, 1, 4, 9]
        assert runtime.STATS["worker_crashes"] == 1
        assert runtime.STATS["inline_retries"] >= 1
        assert faults.STATS["injected"] == 1
        assert allsat.STATS["models"] == 8
        runtime.STATS.reset()  # also clears faults.STATS
        allsat.STATS.reset()
        obs_metrics.REGISTRY.reset_prefix("obstest")
        assert runtime.STATS["worker_crashes"] == 0
        assert runtime.STATS["inline_retries"] == 0
        assert faults.STATS["injected"] == 0
        assert allsat.STATS["models"] == 0
        assert obs_metrics.REGISTRY.get("obstest.pool.bumps") == 0

    def test_worker_spans_merge_into_parent_tree(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        merges_before = obs_metrics.REGISTRY.get("obs.trace.worker_merges")
        obs.configure(path)
        try:
            with obs.span("root"):
                rpool.map_with_recovery(
                    _traced_unit, list(range(4)), workers=2
                )
        finally:
            obs.close()
        events = obs.load_events(path)
        roots, spans, diagnostics = obs.build_forest(events)
        assert diagnostics == {"unmatched_exits": 0, "unclosed": 0}
        assert len(roots) == 1 and roots[0]["name"] == "root"
        pids = {e["pid"] for e in events if e["ev"] == "B"}
        assert len(pids) > 1  # worker events really crossed the fork
        units = [s for s in spans.values() if s["name"] == "unit"]
        assert len(units) == 4
        assert {s["attrs"]["item"] for s in units} == {0, 1, 2, 3}
        # Every span reaches the root by parent links (one tree).
        for record in spans.values():
            walk = record
            while walk["par"] is not None:
                walk = spans[walk["par"]]
            assert walk is roots[0]
        assert (
            obs_metrics.REGISTRY.get("obs.trace.worker_merges")
            > merges_before
        )


# ---------------------------------------------------------------------------
# Span trees from real revisions (hypothesis)
# ---------------------------------------------------------------------------

_LETTERS = ("a", "b", "c", "d", "e")

#: Tolerance for child-interval nesting: B timestamps come from
#: ``time.time()`` while durations are monotonic, so a small skew
#: between the two clocks is expected.
_NEST_EPS = 0.010


@st.composite
def _dnf_formulas(draw):
    terms = draw(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(_LETTERS), st.booleans()),
                min_size=1,
                max_size=3,
                unique_by=lambda pair: pair[0],
            ),
            min_size=1,
            max_size=3,
        )
    )
    return lor(
        *[
            land(
                *[
                    var(name) if positive else lnot(var(name))
                    for name, positive in term
                ]
            )
            for term in terms
        ]
    )


@contextlib.contextmanager
def _forced_sparse_tiers():
    saved = (bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS)
    bitmodels._TABLE_MAX_LETTERS = 0
    shards.SHARD_MAX_LETTERS = 0
    try:
        yield
    finally:
        bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS = saved


@contextlib.contextmanager
def _int_backend():
    saved = sparse._np
    sparse._np = None
    try:
        yield
    finally:
        sparse._np = saved


def _check_forest(events):
    """Well-formedness: balanced B/E, children nested in parents."""
    begins = [e for e in events if e["ev"] == "B"]
    ends = [e for e in events if e["ev"] == "E"]
    assert len(begins) == len(ends)
    roots, spans, diagnostics = obs.build_forest(events)
    assert diagnostics == {"unmatched_exits": 0, "unclosed": 0}
    for record in spans.values():
        for child in record["children"]:
            if child["pid"] != record["pid"]:
                continue
            assert child["ts"] >= record["ts"] - _NEST_EPS
            assert (
                child["ts"] + child["dur"]
                <= record["ts"] + record["dur"] + _NEST_EPS
            )
    return roots, spans


@pytest.mark.parametrize(
    "backend",
    ["numpy", "int"] if sparse._np is not None else ["int"],
)
@settings(max_examples=15, deadline=None)
@given(theory=_dnf_formulas(), update=_dnf_formulas())
def test_traced_revise_span_tree(backend, theory, update):
    """Any revise under tracing yields a well-formed span tree whose
    tier attribution matches ``engine_tier``, with identical masks."""
    stack = contextlib.ExitStack()
    with stack:
        stack.enter_context(_forced_sparse_tiers())
        if backend == "int":
            stack.enter_context(_int_backend())
        untraced = revise(theory, update, operator="dalal")
        handle, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(handle)
        try:
            obs.configure(path)
            try:
                traced = revise(theory, update, operator="dalal")
            finally:
                obs.close()
            events = obs.load_events(path)
        finally:
            os.unlink(path)
    assert traced.bit_model_set.masks == untraced.bit_model_set.masks
    assert traced.engine_tier == untraced.engine_tier
    _, spans = _check_forest(events)
    revise_spans = [s for s in spans.values() if s["name"] == "revise"]
    assert len(revise_spans) == 1
    assert revise_spans[0]["attrs"]["tier"] == traced.engine_tier


def test_trace_off_registry_stays_silent():
    """With REPRO_TRACE unset, a revise feeds no span histograms and no
    obs.trace.* counters — the hot path is a true no-op."""
    obs.reset()
    assert not obs.tracing()
    result = revise(land(var("a"), var("b")), lnot(var("a")))
    assert result.engine_tier is not None
    snapshot = obs_metrics.REGISTRY.snapshot()
    assert not any(
        name.startswith("span.") for name in snapshot["histograms"]
    )
    assert not any(
        name.startswith("obs.trace.") and value
        for name, value in snapshot["counters"].items()
    )


# ---------------------------------------------------------------------------
# CLI surfacing
# ---------------------------------------------------------------------------


class TestCli:
    def test_stats_text(self, capsys):
        assert cli.main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "[runtime]" in out and "runtime.checkpoints" in out

    def test_stats_json(self, capsys):
        assert cli.main(["stats", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "counters" in snapshot and "histograms" in snapshot
        assert "allsat.conflicts" in snapshot["counters"]

    def test_stats_prom(self, capsys):
        assert cli.main(["stats", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runtime_checkpoints counter" in out

    def test_stats_wraps_inner_command(self, capsys):
        code = cli.main(
            ["stats", "--format", "json", "--",
             "revise", "-o", "dalal", "g | b", "~g"]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "counters" in snapshot

    def test_stats_refuses_to_wrap_itself(self, capsys):
        assert cli.main(["stats", "--", "stats"]) == 2

    def test_trace_show_renders_tree(self, capsys, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs.configure(path)
        try:
            with obs.span("revise", op="dalal") as outer:
                outer.set("tier", "table")
                with obs.span("select", op="dalal"):
                    pass
        finally:
            obs.close()
        assert cli.main(["trace", "show", path]) == 0
        out = capsys.readouterr().out
        assert "revise" in out and "select" in out
        assert "tier=table" in out
        assert "tier totals:" in out

    def test_trace_show_missing_file(self, capsys):
        assert cli.main(["trace", "show", "/nonexistent/t.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_show_malformed_file(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"B"}\nnot json\n')
        assert cli.main(["trace", "show", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err
