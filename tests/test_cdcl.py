"""The CDCL solver core: A/B parity, resume soundness, and observability.

PR 6 swapped the chronological DPLL inside :class:`repro.sat.solver.Solver`
for clause learning with first-UIP analysis, VSIDS branching, Luby restarts
and learned-clause DB reduction — all while keeping the PR 5 enumeration
contract (``next_model`` resume, assumptions, projected cubes).  The suites
here pit the two modes against each other and against the blocking-clause
reference loop: ``REPRO_CDCL=0`` restores the chronological search exactly,
so any model-set difference between the modes is a learning-soundness bug.
Also covered: forced restarts/DB reduction on tiny instances (via the
module constants), worker-count determinism of the parallel cube fan-out,
the incremental-carrier path with learning on, the clause-heavy workload
generator's ground-truth masks, and the carrier LRU of the batch cache.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardness import clause_family
from repro.logic import shards
from repro.logic.bitmodels import BitAlphabet, evaluate_mask
from repro.logic.formula import Var, big_and, big_or, lnot
from repro.revision import batch as batch_mod
from repro.revision.batch import BatchCache
from repro.sat import (
    CnfInstance,
    allsat,
    bit_models,
    enumerate_cubes,
    enumerate_models_blocking,
    incremental_bit_models,
)
from repro.sat import solver as solver_mod
from repro.sat.interface import _Encoding
from repro.sat.solver import Solver


@st.composite
def cnf_instances(draw):
    """A small random CNF plus a projection subset and an optional limit."""
    num_vars = draw(st.integers(min_value=1, max_value=6))
    clause_count = draw(st.integers(min_value=0, max_value=12))
    instance = CnfInstance(num_vars)
    for _ in range(clause_count):
        size = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.sampled_from([1, -1]))
            * draw(st.integers(min_value=1, max_value=num_vars))
            for _ in range(size)
        ]
        instance.add_clause(clause)
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        projection = None
    else:
        upper = num_vars + 1
        projection = draw(
            st.lists(
                st.integers(min_value=1, max_value=upper),
                min_size=1,
                max_size=upper,
                unique=True,
            )
        )
        for var in projection:
            if var > instance.num_vars:
                instance.num_vars = var
    limit = draw(st.sampled_from([None, None, None, 2, 5]))
    assume_shape = draw(st.integers(min_value=0, max_value=2))
    if assume_shape == 0:
        assumptions = ()
    else:
        assumptions = tuple(
            draw(st.sampled_from([1, -1]))
            * draw(st.integers(min_value=1, max_value=num_vars))
            for _ in range(assume_shape)
        )
    return instance, projection, limit, assumptions


def _copy(instance: CnfInstance) -> CnfInstance:
    fresh = CnfInstance(instance.num_vars)
    for clause in instance.clauses:
        fresh.add_clause(clause)
    return fresh


def _enumerate(instance, projection, limit, assumptions, monkeypatch, cdcl):
    monkeypatch.setenv("REPRO_CDCL", "1" if cdcl else "0")
    produced = []
    for cube in enumerate_cubes(
        _copy(instance), projection, limit, assumptions, parallel=False
    ):
        produced.extend(cube.iter_models())
    if limit is not None:
        # The final cube may overshoot the limit; expansion applies the
        # exact cap (see enumerate_cubes docs).
        produced = produced[:limit]
    return produced


class TestModeParity:
    """REPRO_CDCL on/off cover the same projected model sets."""

    @settings(max_examples=200, deadline=None)
    @given(cnf_instances())
    def test_cdcl_matches_chronological(self, case):
        instance, projection, limit, assumptions = case
        monkeypatch = pytest.MonkeyPatch()
        try:
            learned = _enumerate(
                instance, projection, limit, assumptions, monkeypatch, True
            )
            chrono = _enumerate(
                instance, projection, limit, assumptions, monkeypatch, False
            )
        finally:
            monkeypatch.undo()
        assert len(learned) == len(set(learned))
        assert len(chrono) == len(set(chrono))
        if limit is None:
            assert set(learned) == set(chrono)
        else:
            # Under a limit both modes return `limit` distinct models of
            # the same full set (which ones may differ: search order is a
            # mode property, coverage is not).
            assert len(learned) == len(chrono)

    @settings(max_examples=150, deadline=None)
    @given(cnf_instances())
    def test_resume_stream_matches_blocking_loop(self, case):
        """`next_model` resume after learning loses and repeats nothing."""
        instance, projection, limit, _ = case
        monkeypatch = pytest.MonkeyPatch()
        try:
            monkeypatch.setenv("REPRO_CDCL", "1")
            produced = _enumerate(
                instance, projection, limit, (), monkeypatch, True
            )
        finally:
            monkeypatch.undo()
        reference = set(enumerate_models_blocking(_copy(instance), projection))
        assert len(produced) == len(set(produced))
        if limit is None:
            assert set(produced) == reference
        else:
            assert set(produced) <= reference
            assert len(produced) == min(len(reference), limit)

    @settings(max_examples=60, deadline=None)
    @given(cnf_instances())
    def test_forced_restarts_and_reduction_stay_sound(self, case):
        """Pathologically low restart/DB limits exercise those paths on
        every instance without changing the covered model set."""
        instance, projection, limit, assumptions = case
        monkeypatch = pytest.MonkeyPatch()
        try:
            reference = _enumerate(
                instance, projection, limit, assumptions, monkeypatch, False
            )
            monkeypatch.setattr(solver_mod, "RESTART_BASE", 1)
            monkeypatch.setattr(solver_mod, "LEARNED_BASE", 1)
            stressed = _enumerate(
                instance, projection, limit, assumptions, monkeypatch, True
            )
        finally:
            monkeypatch.undo()
        assert len(stressed) == len(set(stressed))
        if limit is None:
            assert set(stressed) == set(reference)
        else:
            assert len(stressed) == len(reference)


class TestObservability:
    def test_conflict_counters_fire_on_refutation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CDCL", "1")
        # Pigeonhole-ish: 3 pigeons, 2 holes — var p*2+h.
        instance = CnfInstance(6)
        for p in range(3):
            instance.add_clause([2 * p + 1, 2 * p + 2])
        for h in range(2):
            for p in range(3):
                for q in range(p + 1, 3):
                    instance.add_clause([-(2 * p + 1 + h), -(2 * q + 1 + h)])
        solver = Solver(instance)
        assert not solver.solve()
        stats = solver.search_stats()
        assert stats["conflicts"] > 0
        assert stats["learned"] > 0

    def test_allsat_stats_accumulate_solver_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_CDCL", "1")
        for key in ("conflicts", "learned", "restarts", "max_backjump"):
            assert key in allsat.STATS
        instance = CnfInstance(8)
        for i in range(1, 7):
            instance.add_clause([i, i + 1])
            instance.add_clause([-i, -(i + 2) if i + 2 <= 8 else i + 1])
        before = allsat.STATS["conflicts"]
        list(enumerate_cubes(instance, parallel=False))
        assert allsat.STATS["conflicts"] >= before

    def test_restarts_fire_under_forced_schedule(self, monkeypatch):
        monkeypatch.setenv("REPRO_CDCL", "1")
        monkeypatch.setattr(solver_mod, "RESTART_BASE", 1)
        wl = clause_family.build(8, 4, 4, seed=3, noise_per_letter=2.0)
        enc = _Encoding()
        enc.add_formula(wl.t_formula)
        solver = Solver(enc.instance)
        solver.solve()
        # Restart accounting is visible even when enumeration later gates
        # restarts off: plain solve() may restart freely.
        assert solver.search_stats()["restarts"] >= 0


class TestParallelDeterminism:
    def _instance(self):
        wl = clause_family.build(9, 6, 6, seed=5, noise_per_letter=2.0)
        enc = _Encoding()
        enc.add_formula(wl.t_formula)
        projection = sorted(enc.var(name) for name in wl.letters)
        return enc.instance, projection, wl

    def test_masks_identical_for_any_worker_count(self, monkeypatch):
        instance, projection, wl = self._instance()
        letters = sorted(wl.letters)
        enc_bit = {}
        # projection vars were allocated in sorted-letter order scan
        fresh = _Encoding()
        fresh.add_formula(wl.t_formula)
        bit_of = {fresh.var(name): bit for bit, name in enumerate(letters)}
        monkeypatch.setattr(allsat, "PARALLEL_SPLIT_MIN_VARS", 2)
        results = {}
        for workers in ("1", "2", "3"):
            monkeypatch.setenv("REPRO_PARALLEL", workers)
            cubes = list(
                enumerate_cubes(_copy(instance), projection, parallel=True)
            )
            results[workers] = tuple(
                sorted(allsat.cube_masks(cubes, bit_of))
            )
        assert results["1"] == results["2"] == results["3"]
        assert results["1"] == wl.t_masks

    def test_serial_and_parallel_cover_the_same_models(self, monkeypatch):
        instance, projection, _ = self._instance()
        monkeypatch.setattr(allsat, "PARALLEL_SPLIT_MIN_VARS", 2)
        monkeypatch.setenv("REPRO_PARALLEL", "2")
        serial = []
        for cube in enumerate_cubes(_copy(instance), projection, parallel=False):
            serial.extend(cube.iter_models())
        fanned = []
        for cube in enumerate_cubes(_copy(instance), projection, parallel=True):
            fanned.extend(cube.iter_models())
        assert sorted(serial) == sorted(fanned)


class TestIncrementalCarrierWithLearning:
    def _formula(self, seed):
        names = [f"x{i:02d}" for i in range(shards.SHARD_MAX_LETTERS + 2)]
        lits = []
        for i, name in enumerate(names[:-3]):
            positive = (i + seed) % 3 == 0
            lits.append(Var(name) if positive else lnot(Var(name)))
        return big_and(lits), BitAlphabet.coerce(names)

    def test_delta_compile_matches_fresh_under_learning(self, monkeypatch):
        monkeypatch.setenv("REPRO_CDCL", "1")
        monkeypatch.setattr(solver_mod, "RESTART_BASE", 1)
        monkeypatch.setattr(solver_mod, "LEARNED_BASE", 1)
        old_formula, alphabet = self._formula(0)
        new_formula, _ = self._formula(1)
        old_bits = bit_models(old_formula, alphabet)
        incremental = incremental_bit_models(
            new_formula, alphabet, old_formula, old_bits
        )
        fresh = bit_models(new_formula, alphabet)
        assert sorted(incremental.masks) == sorted(fresh.masks)


class TestClauseFamily:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ground_truth_masks_by_brute_force(self, seed):
        wl = clause_family.build(7, 5, 4, seed=seed, noise_per_letter=2.0)
        letters = sorted(wl.letters)
        for formula, masks in (
            (wl.t_formula, wl.t_masks),
            (wl.p_formula, wl.p_masks),
        ):
            truth = tuple(
                mask
                for mask in range(1 << len(letters))
                if evaluate_mask(formula, mask, letters)
            )
            assert truth == masks

    def test_build_is_deterministic(self):
        a = clause_family.build(10, 6, 6, seed=9, noise_per_letter=3.0)
        b = clause_family.build(10, 6, 6, seed=9, noise_per_letter=3.0)
        assert a.t_masks == b.t_masks
        assert a.p_masks == b.p_masks
        assert a.clause_counts == b.clause_counts
        assert a.t_formula == b.t_formula

    def test_enumeration_agrees_with_ground_truth_both_modes(
        self, monkeypatch
    ):
        wl = clause_family.build(10, 8, 8, seed=4, noise_per_letter=2.0)
        letters = sorted(wl.letters)
        for cdcl in ("0", "1"):
            monkeypatch.setenv("REPRO_CDCL", cdcl)
            enc = _Encoding()
            enc.add_formula(wl.t_formula)
            projection = {enc.var(name) for name in letters}
            bit_of = {enc.var(name): bit for bit, name in enumerate(letters)}
            cubes = list(
                enumerate_cubes(enc.instance, sorted(projection), parallel=False)
            )
            assert tuple(sorted(allsat.cube_masks(cubes, bit_of))) == wl.t_masks

    def test_rejects_alphabets_too_small_for_selectors(self):
        with pytest.raises(ValueError):
            clause_family.build(3, 64, 64)


class TestCarrierLRU:
    def _alphabet(self):
        names = [f"x{i:02d}" for i in range(shards.SHARD_MAX_LETTERS + 2)]
        return names, BitAlphabet.coerce(names)

    def _stream(self, names, tag, drift):
        lits = []
        free = 3
        for i, name in enumerate(names[:-free]):
            positive = (i + tag) % 3 == 0
            if i == drift % (len(names) - free):
                positive = not positive
            lits.append(Var(name) if positive else lnot(Var(name)))
        return big_and(lits)

    def test_interleaved_streams_seed_from_their_own_lineage(self):
        names, alphabet = self._alphabet()
        cache = BatchCache()
        for step in range(4):
            cache.bit_models(self._stream(names, 0, step), alphabet, role="update")
            cache.bit_models(self._stream(names, 1, step), alphabet, role="update")
        assert cache.carrier_lru_hits > 0
        # Relatedness must have steered at least one seed to an entry that
        # latest-only seeding would not have picked.
        assert cache.carrier_lru_related > 0
        assert cache.tier_counts["carrier-lru-seed"] == cache.carrier_lru_hits

    def test_lru_size_one_restores_latest_only(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "CARRIER_LRU_SIZE", 1)
        names, alphabet = self._alphabet()
        cache = BatchCache()
        for step in range(4):
            cache.bit_models(self._stream(names, 0, step), alphabet, role="update")
            cache.bit_models(self._stream(names, 1, step), alphabet, role="update")
        assert cache.carrier_lru_related == 0

    def test_results_exact_regardless_of_seeding(self):
        names, alphabet = self._alphabet()
        cache = BatchCache()
        for step in range(3):
            for tag in (0, 1):
                formula = self._stream(names, tag, step)
                seeded = cache.bit_models(formula, alphabet, role="update")
                fresh = bit_models(formula, alphabet)
                assert sorted(seeded.masks) == sorted(fresh.masks)

    def test_roles_do_not_cross_seed(self):
        names, alphabet = self._alphabet()
        cache = BatchCache()
        cache.bit_models(self._stream(names, 0, 0), alphabet, role="theory")
        cache.bit_models(self._stream(names, 1, 0), alphabet, role="update")
        # Each role's first compile found an empty LRU for its key.
        assert cache.carrier_lru_hits == 0
        cache.bit_models(self._stream(names, 1, 1), alphabet, role="update")
        assert cache.carrier_lru_hits == 1
