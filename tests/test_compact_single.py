"""Tests for the single-revision compact representations (Theorems 3.4, 3.5;
formulas (5)-(9); Corollary 4.4) against the ground-truth semantics."""

import random

import pytest

from repro.compact import (
    BOUNDED_CONSTRUCTIONS,
    borgida_bounded,
    dalal_bounded,
    dalal_compact,
    delta_exact,
    forbus_bounded,
    is_logically_equivalent_to,
    is_query_equivalent_to,
    minimum_distance,
    omega_exact,
    satoh_bounded,
    weber_bounded,
    weber_compact,
    widtio_compact,
    winslett_bounded,
)
from repro.logic import Theory, interp, land, lnot, lor, parse, var
from repro.revision import revise
from repro.sat import is_satisfiable

ALPHABET = ["a", "b", "c", "d"]


def _random_pair(seed: int, letters=ALPHABET, p_letters=None):
    rng = random.Random(seed)

    def formula(pool, clauses):
        parts = []
        for _ in range(rng.randint(1, clauses)):
            lits = []
            for _ in range(rng.randint(1, 3)):
                name = rng.choice(pool)
                atom = var(name)
                lits.append(atom if rng.random() < 0.5 else lnot(atom))
            parts.append(lor(*lits))
        return land(*parts)

    while True:
        t = formula(letters, 3)
        p = formula(p_letters or letters, 2)
        if is_satisfiable(t) and is_satisfiable(p):
            return t, p


class TestMinimumDistance:
    def test_paper_example(self):
        # Section 2.2.2 example: k_{T,P} = 1.
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        assert minimum_distance(t, p) == 1

    def test_consistent_pair_distance_zero(self):
        assert minimum_distance(parse("a"), parse("a | b")) == 0

    def test_total_flip(self):
        assert minimum_distance(parse("a & b"), parse("~a & ~b")) == 2

    def test_section4_example(self):
        assert minimum_distance(parse("a & b & c & d & e"), parse("~a | ~b")) == 1

    def test_unsatisfiable_raises(self):
        with pytest.raises(ValueError):
            minimum_distance(parse("a & ~a"), parse("b"))
        with pytest.raises(ValueError):
            minimum_distance(parse("a"), parse("b & ~b"))


class TestOmega:
    def test_paper_example(self):
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        assert omega_exact(t, p) == frozenset("abc")

    def test_section4_example(self):
        assert omega_exact(
            parse("a & b & c & d & e"), parse("~a | ~b")
        ) == frozenset("ab")

    def test_consistent_pair_empty_omega(self):
        assert omega_exact(parse("a"), parse("a | b")) == frozenset()


class TestDalalTheorem34:
    def test_paper_example_query_equivalent(self):
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        representation = dalal_compact(t, p)
        ground = revise(t, p, "dalal")
        assert is_query_equivalent_to(representation, ground)
        assert representation.metadata["k"] == 1

    def test_uses_new_letters(self):
        representation = dalal_compact(parse("a & b"), parse("~a"))
        assert representation.new_letter_count() > 0
        assert representation.equivalence == "query"

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        t, p = _random_pair(seed)
        representation = dalal_compact(t, p)
        assert is_query_equivalent_to(representation, revise(t, p, "dalal"))

    def test_entailment_pipeline(self):
        # The two-subtask split of the introduction: compile then query.
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        representation = dalal_compact(t, p)
        ground = revise(t, p, "dalal")
        for query in (parse("a & b"), parse("~c"), parse("c | d"), parse("~d")):
            assert representation.entails(query) == ground.entails(query)

    def test_polynomial_size(self):
        # Size grows polynomially in the number of letters.
        sizes = []
        for n in (4, 8, 16):
            letters = [f"x{i}" for i in range(n)]
            t = land(*(var(x) for x in letters))
            p = lnot(var(letters[0]))
            sizes.append(dalal_compact(t, p).size())
        assert sizes[2] < sizes[1] * 6  # far from exponential doubling


class TestWeberTheorem35:
    def test_paper_example_query_equivalent(self):
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        representation = weber_compact(t, p)
        assert is_query_equivalent_to(representation, revise(t, p, "weber"))
        assert set(representation.metadata["omega"]) == set("abc")

    def test_linear_size(self):
        # |T[Ω/Z] ∧ P| <= |T| + |P| exactly (renaming adds nothing).
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = weber_compact(t, p)
        assert representation.size() <= t.size() + p.size()

    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        t, p = _random_pair(seed)
        representation = weber_compact(t, p)
        assert is_query_equivalent_to(representation, revise(t, p, "weber"))

    def test_supplied_omega(self):
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = weber_compact(t, p, omega={"a", "b"})
        assert is_query_equivalent_to(representation, revise(t, p, "weber"))


class TestBoundedConstructions:
    """Formulas (5)-(9): logically equivalent, bounded |P|."""

    def test_winslett_formula5_paper_example(self):
        # Section 4.1 example: T = a&b&c&d&e, P = ~a|~b for Forbus; the text
        # also gives Winslett's result implicitly through Fig. 2 relations.
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = winslett_bounded(t, p)
        assert is_logically_equivalent_to(representation, revise(t, p, "winslett"))

    def test_forbus_formula6_paper_example(self):
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = forbus_bounded(t, p)
        ground = revise(t, p, "forbus")
        assert is_logically_equivalent_to(representation, ground)
        assert ground.model_set == {interp("acde"), interp("bcde")}

    def test_satoh_formula7_paper_example(self):
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = satoh_bounded(t, p)
        assert is_logically_equivalent_to(representation, revise(t, p, "satoh"))
        assert set(representation.metadata["delta"]) == {("a",), ("b",)}

    def test_dalal_formula8_paper_example(self):
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = dalal_bounded(t, p)
        assert is_logically_equivalent_to(representation, revise(t, p, "dalal"))
        assert representation.metadata["k"] == 1

    def test_weber_formula9_paper_example(self):
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        representation = weber_bounded(t, p)
        ground = revise(t, p, "weber")
        assert is_logically_equivalent_to(representation, ground)
        # Weber admits the third model {c,d,e} (paper, end of Section 4.2).
        assert interp("cde") in ground.model_set

    def test_borgida_consistent_case(self):
        t = parse("a & b")
        p = parse("a")
        representation = borgida_bounded(t, p)
        assert representation.metadata["consistent"] is True
        assert is_logically_equivalent_to(representation, revise(t, p, "borgida"))

    def test_borgida_inconsistent_case(self):
        t = parse("a & b & c & d & e")
        p = parse("~a & ~b")
        representation = borgida_bounded(t, p)
        assert representation.metadata["consistent"] is False
        assert is_logically_equivalent_to(representation, revise(t, p, "borgida"))

    @pytest.mark.parametrize("name", sorted(BOUNDED_CONSTRUCTIONS))
    @pytest.mark.parametrize("seed", range(8))
    def test_all_bounded_constructions_random(self, name, seed):
        # P over a 2-letter sub-alphabet: the bounded-case assumption.
        t, p = _random_pair(seed, p_letters=["a", "b"])
        construct = BOUNDED_CONSTRUCTIONS[name]
        representation = construct(t, p)
        assert is_logically_equivalent_to(representation, revise(t, p, name)), name

    @pytest.mark.parametrize("name", sorted(BOUNDED_CONSTRUCTIONS))
    def test_size_linear_in_T(self, name):
        # With |V(P)| fixed, representation size grows linearly with |T|.
        # The distance measures are supplied precomputed (for T = all-true
        # and P = ~x0 | ~x1 they are k=1, δ={{x0},{x1}}, Ω={x0,x1}) so the
        # test measures representation size, not the cost of the measure.
        kwargs = {
            "dalal": {"k": 1},
            "satoh": {"delta": [frozenset({"x0"}), frozenset({"x1"})]},
            "weber": {"omega": {"x0", "x1"}},
        }.get(name, {})
        sizes = []
        for n in (4, 8, 16):
            letters = [f"x{i}" for i in range(n)]
            t = land(*(var(x) for x in letters))
            p = parse("~x0 | ~x1")
            sizes.append(BOUNDED_CONSTRUCTIONS[name](t, p, **kwargs).size())
        growth_1 = sizes[1] - sizes[0]
        growth_2 = sizes[2] - sizes[1]
        assert growth_2 <= 2 * growth_1 + 8  # affine growth, allow rounding


class TestWidtio:
    def test_compact_logically_equivalent(self):
        t = Theory.parse_many("a", "b", "a -> c")
        p = parse("~b")
        representation = widtio_compact(t, p)
        assert is_logically_equivalent_to(representation, revise(t, p, "widtio"))

    def test_size_bound(self):
        t = Theory.parse_many("a", "b", "a -> c", "c -> b")
        p = parse("~b & ~c")
        representation = widtio_compact(t, p)
        assert representation.size() <= t.size() + p.size()

    def test_delta_exact_unsat_raises(self):
        with pytest.raises(ValueError):
            delta_exact(parse("a & ~a"), parse("b"))
