"""The persistent artifact store: crash safety, corruption, recompile.

The robustness contract of :mod:`repro.store`, asserted end to end:

* format round-trips are bit-identical on both backends (numpy and
  pure-int, including multi-word alphabets past 64 letters), and the
  payload image is backend-independent — a store written by one backend
  is read by the other;
* a torn write (``store-torn-write`` at any truncation point) never
  publishes: the next process recovers to either the prior version or a
  clean miss, never corrupt data;
* a flipped payload bit (``store-bit-flip``) always quarantines on read,
  counts ``store-corrupt`` in :data:`repro.runtime.STATS`, and the
  recompile path reproduces bit-identical masks;
* concurrent writers under the advisory lock leave every artifact
  structurally valid;
* eviction respects the live byte budget and keys on hit recency;
* a restarted :class:`~repro.revision.batch.BatchCache` against a warm
  store serves bit-identical masks *without* SAT enumeration.
"""

import contextlib
import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import runtime, store
from repro.logic import bitmodels, shards, sparse
from repro.logic.bitmodels import BitAlphabet
from repro.logic.shards import ShardedTable
from repro.logic.sparse import SparseModelSet
from repro.revision import batch as batch_mod
from repro.revision.batch import BatchCache
from repro.runtime import faults
from repro.store import format as store_format

HAS_NUMPY = sparse._np is not None

BACKENDS = ["numpy", "int"] if HAS_NUMPY else ["int"]


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """Each test gets a disarmed fault registry and no ambient store."""
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_MAX_BYTES", raising=False)
    store.reset_active()
    yield
    faults.reset("")
    store.reset_active()


@contextlib.contextmanager
def forced_tiers(table_max=0, shard_max=0):
    saved = (bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS)
    bitmodels._TABLE_MAX_LETTERS = table_max
    shards.SHARD_MAX_LETTERS = shard_max
    try:
        yield
    finally:
        bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS = saved


def letters_for(count):
    return tuple(f"x{i:03d}" for i in range(count))


# -- format round-trips ------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    letter_count=st.integers(min_value=1, max_value=70),
)
def test_sparse_round_trip_bit_identity(tmp_path_factory, data, letter_count):
    """Sparse carriers survive the store bit-for-bit on every backend,
    including multi-word alphabets past 64 letters."""
    alpha = letters_for(letter_count)
    universe = (1 << letter_count) - 1
    masks = data.draw(
        st.lists(st.integers(min_value=0, max_value=universe), max_size=24)
    )
    root = tmp_path_factory.mktemp("rt")
    for write_backend in BACKENDS:
        carrier = SparseModelSet.from_masks(alpha, masks, backend=write_backend)
        st_obj = store.ArtifactStore(root)
        key = store.artifact_key(f"sparse-{write_backend}", masks, alpha)
        assert st_obj.put_sparse(key, carrier)
        for read_backend in BACKENDS:
            loaded = st_obj.get_sparse(key, alpha, backend=read_backend)
            assert loaded is not None
            assert loaded.mask_list() == carrier.mask_list()
            assert loaded.payload_bytes() == carrier.payload_bytes()


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    letter_count=st.integers(min_value=1, max_value=12),
)
def test_sharded_round_trip_bit_identity(tmp_path_factory, data, letter_count):
    alpha = letters_for(letter_count)
    table_bits = 1 << letter_count
    masks = data.draw(
        st.lists(st.integers(min_value=0, max_value=table_bits - 1),
                 max_size=16)
    )
    root = tmp_path_factory.mktemp("rt")
    for write_backend in BACKENDS:
        table = ShardedTable.from_masks(alpha, masks, backend=write_backend)
        st_obj = store.ArtifactStore(root)
        key = store.artifact_key(f"sharded-{write_backend}", masks, alpha)
        assert st_obj.put_sharded(key, table)
        for read_backend in BACKENDS:
            loaded = st_obj.get_sharded(key, alpha, backend=read_backend)
            assert loaded is not None
            assert loaded.to_int() == table.to_int()
            assert loaded.payload_bytes() == table.payload_bytes()


def test_payload_image_is_backend_independent():
    """Both backends serialise to the identical byte image."""
    alpha = letters_for(70)
    masks = [0, 1, (1 << 69) | 5, (1 << 64) - 1]
    as_int = SparseModelSet.from_masks(alpha, masks, backend="int")
    images = {as_int.payload_bytes()}
    if HAS_NUMPY:
        images.add(
            SparseModelSet.from_masks(alpha, masks, backend="numpy")
            .payload_bytes()
        )
    assert len(images) == 1


def test_empty_carrier_round_trips(tmp_path):
    alpha = letters_for(5)
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "empty", alpha)
    assert st_obj.put_sparse(key, SparseModelSet.empty(alpha))
    loaded = st_obj.get_sparse(key, alpha)
    assert loaded is not None and loaded.count() == 0


def test_geometry_mismatch_quarantines_not_crashes(tmp_path):
    """An artifact whose alphabet disagrees with the request is a miss."""
    alpha = letters_for(8)
    other = letters_for(9)
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "geom", alpha)
    assert st_obj.put_sparse(key, SparseModelSet.from_masks(alpha, [1, 2]))
    assert st_obj.get_sparse(key, other) is None
    assert st_obj.stats["corrupt"] == 1
    assert (tmp_path / "quarantine").exists()


# -- torn writes -------------------------------------------------------------


def _blob_length(alpha, masks):
    carrier = SparseModelSet.from_masks(alpha, masks)
    blob, _ = store_format.encode(
        store_format.KIND_SPARSE, alpha, carrier.count(),
        carrier.payload_bytes(),
    )
    return len(blob)


@pytest.mark.parametrize("cut_fraction", [0.0, 0.1, 0.25, 0.5, 0.75, 0.99])
def test_torn_write_at_every_index_is_a_clean_miss(tmp_path, cut_fraction):
    """Whatever prefix a crash leaves behind, recovery deletes it and the
    key reads as a miss — never as data."""
    alpha = letters_for(10)
    masks = [3, 77, 512, 900]
    carrier = SparseModelSet.from_masks(alpha, masks)
    total = _blob_length(alpha, masks)
    cut = int(total * cut_fraction)
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", ("torn", cut), alpha)
    faults.reset(f"store-torn-write@1:{cut}")
    assert st_obj.put_sparse(key, carrier) is False
    faults.reset("")
    # The crash artifact: a temp file, never the final name.
    assert not st_obj.path_for(key).exists()
    restarted = store.ArtifactStore(tmp_path)
    assert restarted.stats["recovered_tmp"] == 1
    assert not list(tmp_path.glob("*.tmp.*"))
    assert restarted.get_sparse(key, alpha) is None
    assert restarted.stats["corrupt"] == 0  # a miss, not corruption
    # The key still works after a clean re-publish.
    assert restarted.put_sparse(key, carrier)
    loaded = restarted.get_sparse(key, alpha)
    assert loaded is not None and loaded.mask_list() == carrier.mask_list()


def test_torn_temp_beside_good_file_serves_prior_version(tmp_path):
    """A crash that tore a *newer* write leaves the published version
    untouched: recovery sweeps the temp, the read serves the prior data."""
    alpha = letters_for(8)
    carrier = SparseModelSet.from_masks(alpha, [9, 200])
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "prior", alpha)
    assert st_obj.put_sparse(key, carrier)
    torn = st_obj.path_for(key).with_name(
        st_obj.path_for(key).name + ".tmp.999"
    )
    torn.write_bytes(b"RPAS\x01\x00")  # the prefix a crash left behind
    restarted = store.ArtifactStore(tmp_path)
    assert restarted.stats["recovered_tmp"] == 1
    loaded = restarted.get_sparse(key, alpha)
    assert loaded is not None and loaded.mask_list() == carrier.mask_list()


def test_truncated_final_file_is_swept_on_recovery(tmp_path):
    """A torn *final* file (crashed mid-rename semantics don't allow it,
    but disk truncation does) is deleted by the sweep, not served."""
    alpha = letters_for(8)
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "trunc", alpha)
    assert st_obj.put_sparse(key, SparseModelSet.from_masks(alpha, [4, 8]))
    path = st_obj.path_for(key)
    path.write_bytes(path.read_bytes()[:20])
    restarted = store.ArtifactStore(tmp_path)
    assert restarted.stats["recovered_torn"] == 1
    assert not path.exists()


# -- corruption --------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(bit=st.integers(min_value=0, max_value=4095))
def test_bit_flip_always_quarantines_and_recompiles(tmp_path_factory, bit):
    """Any single flipped payload bit is caught by the checksum: the read
    quarantines, counts ``store-corrupt``, and a fresh publish restores
    bit-identical data."""
    tmp_path = tmp_path_factory.mktemp("flip")
    alpha = letters_for(10)
    carrier = SparseModelSet.from_masks(alpha, list(range(0, 1000, 17)))
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "flip", alpha)
    faults.reset(f"store-bit-flip@1:{bit}")
    assert st_obj.put_sparse(key, carrier)  # publishes corrupt bytes
    faults.reset("")
    corrupt_before = runtime.STATS["store-corrupt"]
    assert st_obj.get_sparse(key, alpha) is None
    assert st_obj.stats["corrupt"] == 1
    assert runtime.STATS["store-corrupt"] == corrupt_before + 1
    assert not st_obj.path_for(key).exists()
    assert list((tmp_path / "quarantine").iterdir())
    # recompile-from-source path: publish again, read back identical
    assert st_obj.put_sparse(key, carrier)
    loaded = st_obj.get_sparse(key, alpha)
    assert loaded is not None and loaded.mask_list() == carrier.mask_list()


def test_fsync_failure_abandons_the_publish_cleanly(tmp_path):
    alpha = letters_for(8)
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "fsync", alpha)
    faults.reset("store-fsync-fail@1")
    assert st_obj.put_sparse(
        key, SparseModelSet.from_masks(alpha, [1])
    ) is False
    faults.reset("")
    assert st_obj.stats["put_failures"] == 1
    assert not st_obj.path_for(key).exists()
    assert not list(tmp_path.glob("*.tmp.*"))


def test_verify_sweep_quarantines_corrupt_artifacts(tmp_path):
    alpha = letters_for(8)
    st_obj = store.ArtifactStore(tmp_path)
    good_key = store.artifact_key("sparse", "good", alpha)
    bad_key = store.artifact_key("sparse", "bad", alpha)
    assert st_obj.put_sparse(good_key, SparseModelSet.from_masks(alpha, [1]))
    assert st_obj.put_sparse(bad_key, SparseModelSet.from_masks(alpha, [2]))
    bad_path = st_obj.path_for(bad_key)
    data = bytearray(bad_path.read_bytes())
    data[-1] ^= 0xFF
    bad_path.write_bytes(bytes(data))
    report = st_obj.verify()
    assert report["checked"] == 2
    assert report["ok"] == 1
    assert report["quarantined"] == [bad_path.name]
    assert st_obj.get_sparse(good_key, alpha) is not None


# -- concurrency -------------------------------------------------------------


def _writer_job(args):
    root, worker, rounds = args
    from repro import store as _store
    from repro.logic.sparse import SparseModelSet as _Sparse

    alpha = tuple(f"x{i:03d}" for i in range(10))
    st_obj = _store.ArtifactStore(root, recover=False)
    published = 0
    for round_index in range(rounds):
        for key_index in range(4):
            masks = [key_index * 31 + j for j in range(6)]
            carrier = _Sparse.from_masks(alpha, masks, backend="int")
            key = _store.artifact_key("sparse", ("conc", key_index), alpha)
            if st_obj.put_sparse(key, carrier):
                published += 1
    return published


def test_concurrent_writers_never_tear(tmp_path):
    """Several processes hammering the same four keys: the lock plus the
    atomic rename leave every artifact valid and every key readable."""
    jobs = [(str(tmp_path), worker, 5) for worker in range(4)]
    with multiprocessing.Pool(4) as pool:
        results = pool.map(_writer_job, jobs)
    assert all(count > 0 for count in results)
    st_obj = store.ArtifactStore(tmp_path)
    report = st_obj.verify()
    assert report["checked"] == 4
    assert report["ok"] == 4
    alpha = letters_for(10)
    for key_index in range(4):
        key = store.artifact_key("sparse", ("conc", key_index), alpha)
        loaded = st_obj.get_sparse(key, alpha)
        assert loaded is not None
        assert loaded.mask_list() == tuple(
            sorted(key_index * 31 + j for j in range(6))
        )


# -- eviction ----------------------------------------------------------------


def test_eviction_respects_byte_budget(tmp_path, monkeypatch):
    alpha = letters_for(10)
    st_obj = store.ArtifactStore(tmp_path)
    sizes = []
    for index in range(6):
        carrier = SparseModelSet.from_masks(
            alpha, list(range(index * 40, index * 40 + 30))
        )
        key = store.artifact_key("sparse", ("evict", index), alpha)
        assert st_obj.put_sparse(key, carrier)
        sizes.append(st_obj.path_for(key).stat().st_size)
    budget = sum(sizes[:3])
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", str(budget))
    report = st_obj.gc()
    assert report["remaining_bytes"] <= budget
    assert st_obj.stats["evictions"] >= 3
    assert len(st_obj.entries()) + st_obj.stats["evictions"] == 6


def test_eviction_keeps_recently_hit_artifacts(tmp_path, monkeypatch):
    """Hit recency drives the order: the artifact a read just touched
    survives over an older-but-never-read one."""
    alpha = letters_for(10)
    st_obj = store.ArtifactStore(tmp_path)
    keys = []
    for index in range(3):
        carrier = SparseModelSet.from_masks(alpha, [index, index + 100])
        key = store.artifact_key("sparse", ("lru", index), alpha)
        assert st_obj.put_sparse(key, carrier)
        keys.append(key)
        # Deterministic mtime spacing (publishes land microseconds apart).
        os.utime(st_obj.path_for(key), (1000 + index, 1000 + index))
    assert st_obj.get_sparse(keys[0], alpha) is not None  # bumps recency
    one_file = st_obj.path_for(keys[0]).stat().st_size
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", str(one_file))
    st_obj.gc()
    remaining = {entry["key"] for entry in st_obj.entries()}
    assert remaining == {keys[0]}


def test_publish_under_tiny_budget_keeps_the_new_artifact(tmp_path,
                                                          monkeypatch):
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "1")
    alpha = letters_for(8)
    st_obj = store.ArtifactStore(tmp_path)
    old_key = store.artifact_key("sparse", "older", alpha)
    new_key = store.artifact_key("sparse", "newer", alpha)
    assert st_obj.put_sparse(old_key, SparseModelSet.from_masks(alpha, [1]))
    assert st_obj.put_sparse(new_key, SparseModelSet.from_masks(alpha, [2]))
    remaining = {entry["key"] for entry in st_obj.entries()}
    assert remaining == {new_key}


# -- BatchCache integration --------------------------------------------------


def _sat_workload():
    from repro.hardness.sparse_family import build

    workload = build(12, 3, 2, seed=5)
    alpha = BitAlphabet.coerce(workload.t_formula.variables())
    return workload, alpha


def test_restarted_cache_serves_bit_identical_masks_without_sat(
    tmp_path, monkeypatch
):
    """The acceptance path: warm, restart, and the disk-warm cache must
    reproduce the cold masks while never entering SAT enumeration."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    workload, alpha = _sat_workload()
    with forced_tiers(table_max=0, shard_max=10):
        cold = BatchCache()
        cold_masks = sorted(cold.warm(workload.t_formula).iter_masks())
        assert cold_masks == sorted(workload.t_masks)
        assert cold.tier_counts["store-put"] == 1

        store.reset_active()  # the restart: only the directory survives

        def no_sat(*args, **kwargs):
            raise AssertionError("SAT enumeration ran on the disk-warm path")

        monkeypatch.setattr(batch_mod, "sat_bit_models", no_sat)
        monkeypatch.setattr(
            batch_mod, "sat_incremental_bit_models", no_sat
        )
        warm = BatchCache()
        warm_bits = warm.bit_models(workload.t_formula, alpha, role="theory")
        assert warm.tier_counts["store-hit"] == 1
        assert sorted(warm_bits.iter_masks()) == cold_masks


def test_sharded_tier_artifacts_round_trip_through_cache(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    workload, alpha = _sat_workload()
    with forced_tiers(table_max=0, shard_max=26):
        cold = BatchCache()
        cold_masks = sorted(cold.warm(workload.t_formula).iter_masks())
        assert cold.tier_counts["store-put"] == 1
        store.reset_active()
        warm = BatchCache()
        warm_bits = warm.bit_models(workload.t_formula, alpha, role="theory")
        assert warm.tier_counts["store-hit"] == 1
        assert sorted(warm_bits.iter_masks()) == cold_masks


def test_corrupt_artifact_falls_through_to_recompile(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    workload, alpha = _sat_workload()
    with forced_tiers(table_max=0, shard_max=10):
        faults.reset("store-bit-flip@1")
        BatchCache().warm(workload.t_formula)
        faults.reset("")
        store.reset_active()
        cache = BatchCache()
        bits = cache.bit_models(workload.t_formula, alpha, role="theory")
        assert cache.tier_counts["store-corrupt"] == 1
        assert cache.tier_counts["store-miss"] == 1
        assert cache.tier_counts["store-hit"] == 0
        assert sorted(bits.iter_masks()) == sorted(workload.t_masks)


def test_no_store_env_means_no_store_traffic(monkeypatch):
    workload, alpha = _sat_workload()
    with forced_tiers(table_max=0, shard_max=10):
        cache = BatchCache()
        cache.bit_models(workload.t_formula, alpha, role="theory")
        assert cache.tier_counts["store-hit"] == 0
        assert cache.tier_counts["store-miss"] == 0
        assert cache.tier_counts["store-put"] == 0


def test_oversized_sparse_artifact_is_a_miss_not_corruption(
    tmp_path, monkeypatch
):
    """An artifact recorded under a larger sparse budget is left intact
    on disk and simply recompiled under the tighter live knob."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path))
    workload, alpha = _sat_workload()
    with forced_tiers(table_max=0, shard_max=10):
        BatchCache().warm(workload.t_formula)
        store.reset_active()
        monkeypatch.setattr(shards, "SPARSE_MAX_MODELS", 1)
        cache = BatchCache()
        bits = cache.bit_models(workload.t_formula, alpha, role="theory")
        assert cache.tier_counts["store-miss"] == 1
        assert cache.tier_counts["store-corrupt"] == 0
        assert sorted(bits.iter_masks()) == sorted(workload.t_masks)
    assert list(tmp_path.glob(f"*{store.SUFFIX}"))  # still on disk


# -- counters and reset helpers ---------------------------------------------


def test_runtime_stats_reset():
    runtime.STATS["demotions"] += 3
    runtime.STATS["demotions:sharded->sat"] = 3
    runtime.STATS.reset()
    assert runtime.STATS["demotions"] == 0
    assert runtime.STATS["store-corrupt"] == 0
    assert "demotions:sharded->sat" not in runtime.STATS


def test_batch_cache_reset_counters_keeps_compiled_state():
    workload, alpha = _sat_workload()
    cache = BatchCache()
    cache.bit_models(workload.t_formula, alpha, role="theory")
    assert cache.misses == 1
    cache.reset_counters()
    assert cache.misses == 0 and cache.hits == 0
    assert not cache.tier_counts
    cache.bit_models(workload.t_formula, alpha, role="theory")
    assert cache.hits == 1 and cache.misses == 0  # compiled state survived


def test_hit_counts_survive_in_sidecar(tmp_path):
    alpha = letters_for(8)
    st_obj = store.ArtifactStore(tmp_path)
    key = store.artifact_key("sparse", "hits", alpha)
    assert st_obj.put_sparse(key, SparseModelSet.from_masks(alpha, [7]))
    for _ in range(3):
        assert st_obj.get_sparse(key, alpha) is not None
    assert store.ArtifactStore(tmp_path).hit_counts()[key] == 3


# -- CLI ---------------------------------------------------------------------


def _populated_store(tmp_path):
    alpha = letters_for(8)
    st_obj = store.ArtifactStore(tmp_path)
    for index in range(2):
        st_obj.put_sparse(
            store.artifact_key("sparse", ("cli", index), alpha),
            SparseModelSet.from_masks(alpha, [index]),
        )
    return st_obj


def test_cli_store_ls_and_verify_and_gc(tmp_path, capsys):
    from repro.cli import main

    _populated_store(tmp_path)
    assert main(["store", "ls", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "2 artifacts" in out and "sparse" in out
    assert main(["store", "verify", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "quarantined : 0" in out
    assert main(
        ["store", "gc", "--dir", str(tmp_path), "--max-bytes", "0"]
    ) == 0
    out = capsys.readouterr().out
    assert "evicted   : 2" in out


def test_cli_store_verify_flags_corruption(tmp_path, capsys):
    from repro.cli import main

    st_obj = _populated_store(tmp_path)
    victim = sorted(tmp_path.glob(f"*{store.SUFFIX}"))[0]
    data = bytearray(victim.read_bytes())
    data[-1] ^= 0xFF
    victim.write_bytes(bytes(data))
    assert main(["store", "verify", "--dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "quarantined : 1" in out


def test_cli_store_without_directory_errors(capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert main(["store", "ls"]) == 2
    assert "REPRO_STORE" in capsys.readouterr().err
