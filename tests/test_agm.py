"""Tests for the AGM companion operations (expansion, contraction,
counterfactuals) and the Harper/Levi identities."""

import pytest

from repro.logic import Theory, interp, parse
from repro.revision import revise
from repro.revision.agm import contract, counterfactual, expand


class TestExpansion:
    def test_consistent_expansion(self):
        result = expand(parse("a | b"), parse("~a"))
        assert result.model_set == {frozenset({"b"})}

    def test_inconsistent_expansion_is_empty(self):
        result = expand(parse("a"), parse("~a"))
        assert not result.is_consistent()

    def test_expansion_with_new_letters(self):
        result = expand(parse("a"), parse("b"))
        assert result.model_set == {frozenset({"a", "b"})}


class TestContraction:
    def test_contraction_gives_up_belief(self):
        # T believes a & b; contracting a must leave a underivable.
        result = contract(parse("a & b"), parse("a"), operator="dalal")
        assert not result.entails(parse("a"))

    def test_contraction_keeps_independent_beliefs(self):
        # b is independent of a under Dalal's minimal change: it survives.
        result = contract(parse("a & b"), parse("a"), operator="dalal")
        assert result.entails(parse("b"))

    def test_vacuity(self):
        # Contracting something not believed changes nothing (AGM vacuity).
        t = parse("a")
        result = contract(t, parse("b"), operator="dalal")
        from repro.sat import models as sat_models

        expected = set(sat_models(t, result.alphabet))
        assert result.model_set == expected

    def test_inclusion(self):
        # AGM inclusion: T ÷ P is weaker than T (more models).
        t = parse("a & b & c")
        result = contract(t, parse("a"), operator="dalal")
        from repro.sat import models as sat_models

        t_models = set(sat_models(t, result.alphabet))
        assert t_models <= result.model_set

    def test_harper_identity_shape(self):
        # M(T ÷ P) = M(T) ∪ M(T * ¬P), directly.
        t = parse("a & b")
        p = parse("a")
        contracted = contract(t, p, operator="dalal")
        revised = revise(t, parse("~a"), "dalal")
        from repro.sat import models as sat_models

        t_models = set(sat_models(t, contracted.alphabet))
        assert contracted.model_set == t_models | set(revised.model_set)


class TestLeviIdentity:
    @pytest.mark.parametrize(
        "t_text,p_text",
        [
            ("a & b & c", "~a"),
            ("a & (b | c)", "~b & ~c"),
            ("(a -> b) & a", "~b"),
            ("a & b", "a"),
        ],
    )
    def test_levi_identity_for_dalal(self, t_text, p_text):
        # T * P = (T ÷ ¬P) + P for an AGM revision operator (Dalal).
        t = parse(t_text)
        p = parse(p_text)
        direct = revise(t, p, "dalal")
        contracted = contract(t, parse(f"~({p_text})"), operator="dalal")
        via_levi = expand(
            Theory([contracted.formula()]), p
        )
        assert via_levi.restricted_to(direct.alphabet) == frozenset(
            direct.model_set
        )


class TestCounterfactuals:
    def test_ginsberg_example_style(self):
        # T = {a, b}; "if ~b were the case, would a still hold?" — yes:
        # the only maximal subset consistent with ~b is {a}.
        t = Theory.parse_many("a", "b")
        assert counterfactual(t, "~b", "a", operator="gfuv")

    def test_syntax_sensitivity_carries_over(self):
        # With T = {a, a -> b} the same counterfactual fails (worlds {a} and
        # {a -> b} disagree on a).
        t = Theory.parse_many("a", "a -> b")
        assert not counterfactual(t, "~b", "a", operator="gfuv")

    def test_model_based_counterfactual(self):
        assert counterfactual(parse("g | b"), "~g", "b", operator="dalal")
        assert not counterfactual(parse("g | b"), "~g", "b", operator="winslett")

    def test_counterfactual_with_entailed_antecedent(self):
        # If the antecedent already holds, the conditional reduces to T |= Q.
        t = parse("a & b")
        assert counterfactual(t, "a", "b", operator="dalal")
