"""Tests for the SAT substrate: solver, enumeration, formula interface."""

import io

from hypothesis import given, settings, strategies as st

from repro.logic import FALSE, TRUE, all_interpretations, land, lnot, lor, parse, var
from repro.sat import (
    CnfInstance,
    Solver,
    count_models,
    entails,
    enumerate_models,
    equivalent,
    is_satisfiable,
    is_valid,
    models,
    query_equivalent,
    read_dimacs,
    satisfies,
    write_dimacs,
)


class TestSolverCore:
    def test_trivial_sat(self):
        inst = CnfInstance()
        v = inst.new_var()
        inst.add_clause([v])
        assert Solver(inst).solve()

    def test_trivial_unsat(self):
        inst = CnfInstance()
        v = inst.new_var()
        inst.add_clause([v])
        inst.add_clause([-v])
        assert not Solver(inst).solve()

    def test_empty_clause_unsat(self):
        inst = CnfInstance()
        inst.add_clause([])
        assert not Solver(inst).solve()

    def test_no_clauses_sat(self):
        inst = CnfInstance(3)
        assert Solver(inst).solve()

    def test_unit_propagation_chain(self):
        inst = CnfInstance(4)
        inst.add_clause([1])
        inst.add_clause([-1, 2])
        inst.add_clause([-2, 3])
        inst.add_clause([-3, 4])
        solver = Solver(inst)
        assert solver.solve()
        assert set(solver.model()) == {1, 2, 3, 4}

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole.
        inst = CnfInstance(2)
        inst.add_clause([1])
        inst.add_clause([2])
        inst.add_clause([-1, -2])
        assert not Solver(inst).solve()

    def test_pigeonhole_3_into_2_unsat(self):
        # p_{i,j}: pigeon i in hole j. vars: 1..6 as (i-1)*2 + j.
        inst = CnfInstance(6)

        def v(i, j):
            return (i - 1) * 2 + j

        for i in (1, 2, 3):
            inst.add_clause([v(i, 1), v(i, 2)])
        for j in (1, 2):
            for i1 in (1, 2, 3):
                for i2 in range(i1 + 1, 4):
                    inst.add_clause([-v(i1, j), -v(i2, j)])
        assert not Solver(inst).solve()

    def test_assumptions(self):
        inst = CnfInstance(2)
        inst.add_clause([1, 2])
        solver = Solver(inst)
        assert solver.solve(assumptions=[-1])
        assert 2 in solver.model()
        assert solver.solve(assumptions=[-1, -2]) is False
        # Solver usable again after failed assumptions.
        assert solver.solve()

    def test_incremental_blocking(self):
        inst = CnfInstance(2)
        inst.add_clause([1, 2])
        solver = Solver(inst)
        found = 0
        while solver.solve():
            found += 1
            solver.add_clause([-lit for lit in solver.model()])
        assert found == 3  # models over 2 vars satisfying x1 | x2

    def test_tautological_clause_ignored(self):
        inst = CnfInstance(1)
        inst.add_clause([1, -1])
        solver = Solver(inst)
        assert solver.solve()


class TestSolverAgainstBruteForce:
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=5).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force(self, clauses):
        inst = CnfInstance(5)
        for clause in clauses:
            inst.add_clause(clause)
        expected = any(
            all(
                any(
                    (lit > 0) == bool(mask >> (abs(lit) - 1) & 1)
                    for lit in clause
                )
                for clause in clauses
            )
            for mask in range(32)
        )
        assert Solver(inst).solve() == expected


class TestEnumeration:
    def test_enumerates_all(self):
        inst = CnfInstance(2)
        inst.add_clause([1, 2])
        found = set(enumerate_models(inst))
        assert found == {(1, -2), (-1, 2), (1, 2)}

    def test_projection_collapses(self):
        inst = CnfInstance(2)
        inst.add_clause([1, 2])
        found = set(enumerate_models(inst, projection=[1]))
        assert found == {(1,), (-1,)}

    def test_limit(self):
        inst = CnfInstance(3)
        found = list(enumerate_models(inst, limit=3))
        assert len(found) == 3

    def test_unsat_enumerates_nothing(self):
        inst = CnfInstance(1)
        inst.add_clause([1])
        inst.add_clause([-1])
        assert list(enumerate_models(inst)) == []


class TestFormulaInterface:
    def test_satisfiable(self):
        assert is_satisfiable(parse("a & (b | ~a)"))
        assert not is_satisfiable(parse("a & ~a"))
        assert not is_satisfiable(FALSE)
        assert is_satisfiable(TRUE)

    def test_valid(self):
        assert is_valid(parse("a | ~a"))
        assert not is_valid(parse("a"))

    def test_entails(self):
        assert entails(parse("a & b"), parse("a"))
        assert not entails(parse("a | b"), parse("a"))
        assert entails(FALSE, parse("a"))
        assert entails(parse("a"), TRUE)

    def test_equivalent(self):
        assert equivalent(parse("a -> b"), parse("~a | b"))
        assert not equivalent(parse("a"), parse("b"))

    def test_models_default_alphabet(self):
        found = set(models(parse("a & (b | c)")))
        assert found == {
            frozenset("ab"),
            frozenset("ac"),
            frozenset("abc"),
        }

    def test_models_with_wider_alphabet(self):
        found = set(models(parse("a"), alphabet=["a", "b"]))
        assert found == {frozenset("a"), frozenset("ab")}

    def test_models_match_brute_force_on_complex_formula(self):
        f = parse("(a ^ b) -> (c <-> a) & ~(b & c)")
        alphabet = sorted(f.variables())
        expected = {
            frozenset(m)
            for m in all_interpretations(alphabet)
            if f.evaluate(m)
        }
        assert set(models(f)) == expected

    def test_count_models(self):
        assert count_models(parse("a | b")) == 3
        assert count_models(parse("a & ~a")) == 0
        assert count_models(TRUE, alphabet=["a", "b"]) == 4

    def test_query_equivalent_new_letters(self):
        # b <-> a introduces letter b but projected on {a} both match.
        assert query_equivalent(parse("a"), parse("a & (b <-> a)"), alphabet=["a"])
        assert not query_equivalent(parse("a"), parse("~a"), alphabet=["a"])

    def test_satisfies(self):
        assert satisfies({"a"}, parse("a | b"))
        assert not satisfies(set(), parse("a"))

    @given(
        st.lists(
            st.sampled_from(["a", "b", "c", "~a", "~b", "~c"]),
            min_size=1,
            max_size=3,
        ).map(lambda lits: parse(" | ".join(lits)))
    )
    @settings(max_examples=50, deadline=None)
    def test_sat_matches_truth_table(self, f):
        expected = any(
            f.evaluate(m) for m in all_interpretations(sorted(f.variables()))
        )
        assert is_satisfiable(f) == expected


class TestDimacs:
    def test_round_trip(self):
        inst = CnfInstance(3)
        inst.add_clause([1, -2])
        inst.add_clause([2, 3])
        buffer = io.StringIO()
        write_dimacs(inst, buffer, comment="test")
        buffer.seek(0)
        parsed = read_dimacs(buffer)
        assert parsed.num_vars == 3
        assert parsed.clauses == [[1, -2], [2, 3]]

    def test_read_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        parsed = read_dimacs(io.StringIO(text))
        assert parsed.clauses == [[1, 2, 3]]
