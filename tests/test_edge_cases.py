"""Edge-case and failure-injection sweep across the library.

Complements the per-module suites with the awkward inputs: degenerate
formulas, empty theories, unsatisfiable components, foreign letters, and
API misuse that must fail loudly rather than silently.
"""

import io

import pytest

from repro.compact import (
    CompactRepresentation,
    dalal_compact,
    is_query_equivalent_to,
    weber_compact,
)
from repro.logic import (
    FALSE,
    TRUE,
    Theory,
    as_formula,
    cube,
    land,
    lnot,
    lor,
    parse,
    to_str,
    var,
)
from repro.logic.cnf import cnf_size, negate_literal, to_cnf_distributive, tseitin
from repro.revision import RevisionResult, get_operator, revise
from repro.sat import CnfInstance, Solver, is_satisfiable, models, read_dimacs


class TestFormulaEdgeCases:
    def test_as_formula_rejects_junk(self):
        with pytest.raises(TypeError):
            as_formula(3.14)
        with pytest.raises(TypeError):
            as_formula(None)

    def test_as_formula_bool(self):
        assert as_formula(True) is TRUE
        assert as_formula(False) is FALSE

    def test_as_formula_parses_strings(self):
        assert as_formula("a & b") == land(var("a"), var("b"))

    def test_cube_over_empty_alphabet(self):
        assert cube(set(), []) == TRUE

    def test_iter_subformulas_counts(self):
        f = parse("a & (b | c)")
        nodes = list(f.iter_subformulas())
        assert len(nodes) == 5

    def test_deeply_nested_formula(self):
        f = var("x0")
        for i in range(1, 120):
            f = lor(land(f, var(f"x{i}")), var(f"x{i}"))
        assert f.size() > 0
        assert f.evaluate({f"x{i}" for i in range(120)})

    def test_printer_constants(self):
        assert to_str(TRUE) == "true"
        assert to_str(FALSE) == "false"

    def test_equality_across_types(self):
        assert var("a") != land(var("a"), var("a"))
        assert var("a") != "a"
        assert not (var("a") == 5)


class TestCnfEdgeCases:
    def test_negate_literal(self):
        assert negate_literal(("a", True)) == ("a", False)

    def test_cnf_size(self):
        clauses = to_cnf_distributive(parse("(a | b) & c"))
        assert cnf_size(clauses) == 3

    def test_tseitin_of_constant(self):
        result = tseitin(TRUE)
        assert is_satisfiable(result.formula())
        result = tseitin(FALSE)
        assert not is_satisfiable(result.formula())

    def test_tseitin_of_literal(self):
        result = tseitin(parse("~a"))
        found = set(models(result.formula(), alphabet=["a"]))
        assert found == {frozenset()}

    def test_tseitin_avoids_alphabet_collision(self):
        # A user letter named like an aux letter must not be captured.
        f = parse("_t0 & a")
        result = tseitin(f)
        found = set(models(result.formula(), alphabet=["_t0", "a"]))
        assert found == {frozenset({"_t0", "a"})}


class TestSolverEdgeCases:
    def test_duplicate_literals_in_clause(self):
        inst = CnfInstance(1)
        inst.add_clause([1, 1, 1])
        solver = Solver(inst)
        assert solver.solve()
        assert solver.model() == [1]

    def test_zero_literal_rejected(self):
        inst = CnfInstance(1)
        with pytest.raises(ValueError):
            inst.add_clause([0])

    def test_solver_snapshot_isolation(self):
        inst = CnfInstance(1)
        inst.add_clause([1])
        solver = Solver(inst)
        inst.add_clause([-1])  # added after snapshot: must not affect solver
        assert solver.solve()

    def test_repeated_solve_stable(self):
        inst = CnfInstance(3)
        inst.add_clause([1, 2])
        inst.add_clause([-2, 3])
        solver = Solver(inst)
        answers = {solver.solve() for _ in range(5)}
        assert answers == {True}

    def test_malformed_dimacs(self):
        with pytest.raises(ValueError):
            read_dimacs(io.StringIO("p cnf\n1 0\n"))

    def test_models_limit_zero_edge(self):
        found = list(models(parse("a"), limit=1))
        assert len(found) == 1

    def test_models_of_contradiction(self):
        assert list(models(parse("a & ~a"))) == []

    def test_models_empty_alphabet(self):
        # TRUE over the empty alphabet has exactly the empty model.
        assert list(models(TRUE, alphabet=[])) == [frozenset()]


class TestRevisionResultEdgeCases:
    def test_model_outside_alphabet_rejected(self):
        with pytest.raises(ValueError):
            RevisionResult("test", ["a"], [frozenset({"z"})])

    def test_formula_of_empty_result(self):
        result = RevisionResult("test", ["a"], [])
        assert result.formula() == FALSE

    def test_satisfies_ignores_foreign_letters(self):
        result = RevisionResult("test", ["a"], [frozenset({"a"})])
        assert result.satisfies({"a", "zzz"})

    def test_equality(self):
        left = RevisionResult("x", ["a"], [frozenset({"a"})])
        right = RevisionResult("y", ["a"], [frozenset({"a"})])
        assert left == right  # operator name is provenance, not identity

    def test_restricted_to(self):
        result = RevisionResult("t", ["a", "b"], [frozenset({"a", "b"})])
        assert result.restricted_to(["a"]) == frozenset({frozenset({"a"})})


class TestOperatorEdgeCases:
    @pytest.mark.parametrize("name", ["gfuv", "widtio"])
    def test_empty_theory(self, name):
        result = revise(Theory([]), parse("a"), name)
        assert result.model_set == {frozenset({"a"})}

    def test_revision_with_tautology(self):
        result = revise(parse("a & b"), TRUE, "dalal")
        assert result.model_set == {frozenset({"a", "b"})}

    def test_revision_with_same_formula(self):
        result = revise(parse("a"), parse("a"), "satoh")
        assert result.model_set == {frozenset({"a"})}

    def test_tautological_theory(self):
        result = revise(TRUE, parse("a"), "weber")
        assert result.model_set == {frozenset({"a"})}

    def test_winslett_on_single_model_theory_equals_dalal_sometimes(self):
        # With one model of T, pointwise == global for inclusion operators.
        t = parse("a & b & c")
        p = parse("~a | ~b")
        assert revise(t, p, "winslett").model_set == revise(t, p, "satoh").model_set

    def test_operator_metadata(self):
        assert get_operator("gfuv").syntax_sensitive
        assert not get_operator("dalal").syntax_sensitive


class TestCompactRepresentationEdgeCases:
    def test_logical_rep_rejects_new_letters(self):
        with pytest.raises(ValueError):
            CompactRepresentation(
                parse("a & z"), ["a"], "logical", "test"
            )

    def test_bad_equivalence_tag(self):
        with pytest.raises(ValueError):
            CompactRepresentation(parse("a"), ["a"], "psychic", "test")

    def test_entails_rejects_foreign_query(self):
        rep = dalal_compact(parse("a"), parse("a | b"))
        with pytest.raises(ValueError):
            rep.entails(parse("zzz"))

    def test_query_equivalence_detects_alphabet_mismatch(self):
        rep = dalal_compact(parse("a"), parse("a"))
        ground = revise(parse("a & b"), parse("a"), "dalal")
        assert not is_query_equivalent_to(rep, ground)

    def test_weber_compact_with_wrong_omega_diverges(self):
        # Failure injection: a wrong Ω produces a representation that the
        # certification helper correctly rejects.
        t = parse("a & b & c & d & e")
        p = parse("~a | ~b")
        wrong = weber_compact(t, p, omega={"c"})
        ground = revise(t, p, "weber")
        assert not is_query_equivalent_to(wrong, ground)

    def test_repr_mentions_operator(self):
        rep = weber_compact(parse("a & b"), parse("~a"))
        assert "weber" in repr(rep)


class TestTheoryEdgeCases:
    def test_parse_many_empty(self):
        assert len(Theory.parse_many()) == 0

    def test_iteration_order_stable(self):
        t = Theory.parse_many("c", "a", "b")
        assert [str(f) for f in t] == ["c", "a", "b"]

    def test_without_self_is_empty(self):
        t = Theory.parse_many("a", "b")
        assert len(t.without(t)) == 0

    def test_contains(self):
        t = Theory.parse_many("a -> b")
        assert parse("a -> b") in t
        assert parse("a") not in t
