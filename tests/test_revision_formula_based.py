"""Tests for the formula-based operators: GFUV, WIDTIO, Nebel."""

import pytest

from repro.logic import Theory, interp, parse
from repro.revision import (
    GfuvOperator,
    NebelOperator,
    WidtioOperator,
    possible_worlds,
    revise,
)
from repro.sat import equivalent


class TestPossibleWorlds:
    def test_paper_syntax_sensitivity_example(self):
        # T1 = {a, b}, T2 = {a, a -> b}, P = ~b (Section 2.2.1).
        t1 = Theory.parse_many("a", "b")
        t2 = Theory.parse_many("a", "a -> b")
        p = parse("~b")

        w1 = possible_worlds(t1, p)
        assert len(w1) == 1
        assert w1[0] == Theory.parse_many("a")

        w2 = possible_worlds(t2, p)
        assert len(w2) == 2
        assert set(w2) == {Theory.parse_many("a"), Theory.parse_many("a -> b")}

    def test_consistent_P_keeps_whole_theory(self):
        t = Theory.parse_many("a", "b")
        assert possible_worlds(t, parse("a")) == [t]

    def test_unsatisfiable_P_empty(self):
        assert possible_worlds(Theory.parse_many("a"), parse("b & ~b")) == []

    def test_inconsistent_member_never_kept(self):
        t = Theory.parse_many("a & ~a", "b")
        worlds = possible_worlds(t, parse("c"))
        assert worlds == [Theory.parse_many("b")]

    def test_worlds_are_maximal(self):
        t = Theory.parse_many("a", "b", "~a | ~b")
        worlds = possible_worlds(t, parse("true"))
        # Each pair is consistent; the whole theory is not.
        assert all(len(w) == 2 for w in worlds)
        assert len(worlds) == 3


class TestGfuv:
    def test_paper_example_t1(self):
        result = revise(Theory.parse_many("a", "b"), parse("~b"), "gfuv")
        assert result.model_set == {frozenset({"a"})}

    def test_paper_example_t2_weaker(self):
        result = revise(Theory.parse_many("a", "a -> b"), parse("~b"), "gfuv")
        # T2 * P = ~b: models {} and {a} over alphabet {a, b}.
        assert result.model_set == {frozenset(), frozenset({"a"})}

    def test_syntax_sensitivity(self):
        p = parse("~b")
        r1 = revise(Theory.parse_many("a", "b"), p, "gfuv")
        r2 = revise(Theory.parse_many("a", "a -> b"), p, "gfuv")
        assert r1.model_set != r2.model_set

    def test_consistent_case_is_conjunction(self):
        t = Theory.parse_many("g | b")
        result = revise(t, parse("~g"), "gfuv")
        assert result.model_set == {frozenset({"b"})}

    def test_revised_formula_explicit_size(self):
        # Nebel's example at m=2: W(T1,P1) has 4 worlds.
        t = Theory.parse_many("x1", "x2", "y1", "y2")
        p = parse("(x1 ^ y1) & (x2 ^ y2)")
        worlds = possible_worlds(t, p)
        assert len(worlds) == 4
        op = GfuvOperator()
        explicit = op.revised_formula(t, p)
        result = op.revise(t, p)
        assert set(result.model_set) == {
            frozenset({"x1", "x2"}),
            frozenset({"x1", "y2"}),
            frozenset({"y1", "x2"}),
            frozenset({"y1", "y2"}),
        }
        assert equivalent(explicit, result.formula())

    def test_entailment_defined_on_all_worlds(self):
        # T * P |= Q iff every possible world (with P) entails Q.
        t = Theory.parse_many("a", "b")
        result = revise(t, parse("~a | ~b"), "gfuv")
        # Worlds: {a}, {b}; in both, a | b holds.
        assert result.entails(parse("a | b"))
        assert not result.entails(parse("a"))


class TestWidtio:
    def test_paper_example_t1(self):
        # Same result as GFUV on T1.
        result = revise(Theory.parse_many("a", "b"), parse("~b"), "widtio")
        assert result.model_set == {frozenset({"a"})}

    def test_paper_example_t2(self):
        # Intersection of {a} and {a -> b} is empty: result is just ~b.
        result = revise(Theory.parse_many("a", "a -> b"), parse("~b"), "widtio")
        assert result.model_set == {frozenset(), frozenset({"a"})}

    def test_size_bound(self):
        # |T *Wid P| <= |T| + |P| — the paper's observation in Section 3.
        op = WidtioOperator()
        t = Theory.parse_many("a", "b", "a -> c", "c -> b")
        p = parse("~b & ~c")
        revised = op.revised_theory(t, p)
        assert revised.size() <= t.size() + p.size()

    def test_revised_theory_contains_P(self):
        op = WidtioOperator()
        t = Theory.parse_many("a", "b")
        p = parse("~a")
        revised = op.revised_theory(t, p)
        assert p in revised

    def test_widtio_weaker_than_gfuv(self):
        # WIDTIO keeps less: its model set contains GFUV's.
        t = Theory.parse_many("a", "a -> b", "c")
        p = parse("~b")
        gfuv_models = revise(t, p, "gfuv").model_set
        widtio_models = revise(t, p, "widtio").model_set
        assert gfuv_models <= widtio_models

    def test_iterate_threads_theory(self):
        op = WidtioOperator()
        result = op.iterate(Theory.parse_many("a", "b"), [parse("~a"), parse("~b")])
        assert result.model_set == {frozenset()}


class TestNebel:
    def test_single_class_equals_gfuv(self):
        t = Theory.parse_many("a", "a -> b", "c")
        p = parse("~b")
        nebel = NebelOperator().revise(t, p)
        gfuv = GfuvOperator().revise(t, p)
        assert nebel.model_set == gfuv.model_set

    def test_priorities_change_outcome(self):
        # High priority {b}, low priority {a}; P = ~a | ~b forces dropping one.
        high = Theory.parse_many("b")
        low = Theory.parse_many("a")
        p = parse("~a | ~b")
        result = NebelOperator().revise_prioritized([high, low], p)
        # b must be kept (higher priority), a dropped.
        assert result.model_set == {frozenset({"b"})}

    def test_reversed_priorities(self):
        high = Theory.parse_many("a")
        low = Theory.parse_many("b")
        p = parse("~a | ~b")
        result = NebelOperator().revise_prioritized([high, low], p)
        assert result.model_set == {frozenset({"a"})}

    def test_unsatisfiable_P(self):
        result = NebelOperator().revise(Theory.parse_many("a"), parse("b & ~b"))
        assert not result.is_consistent()

    def test_iterated_unsupported(self):
        with pytest.raises(NotImplementedError):
            NebelOperator().iterate(Theory.parse_many("a"), [parse("~a"), parse("a")])
        with pytest.raises(NotImplementedError):
            GfuvOperator().iterate(Theory.parse_many("a"), [parse("~a"), parse("a")])
