"""Sparse model-set tier: kernel equivalence, dispatch, spill, determinism.

Four layers of assurance for :mod:`repro.logic.sparse` (the fourth engine
tier — sorted model-mask carriers with density-proportional kernels):

* hypothesis equivalence of the sparse kernels against brute-force mask
  arithmetic at 6-10 letters and at a 70-letter column-block alphabet, on
  both storage backends (numpy uint64 column blocks and the pure-int
  fallback);
* the operator level: all six model-based operators forced onto the
  sparse tier return model sets bit-identical to the big-int and sharded
  dispatches, on both backends;
* the spill path: when an intermediate crosses the
  ``shards.SPARSE_MAX_MODELS`` budget the engine reruns the selection on
  the SAT tier's mask loops and the result is identical (the
  ``sparse-spill`` tier label records that it happened);
* determinism: worker count (``REPRO_PARALLEL`` / ``processes=``, threads
  on numpy, processes on pure-int) never changes a selected set.

Plus the surrounding wiring: four-tier ``shards.tier`` dispatch, the
``model_count_bound`` density probe, the ``sparse_family`` workload
generator's ground truth, and ``BatchCache`` warm/tier reporting.
"""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import bitmodels, shards, sparse
from repro.logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    min_subset_masks,
)
from repro.logic.sparse import (
    SparseModelSet,
    SparseSpill,
    confined_select,
    min_distance_select,
    pointwise_select,
    translate_union,
)

LETTERS = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]

BACKENDS = ["int"] + (["numpy"] if sparse._np is not None else [])

WIDE = BitAlphabet([f"w{i:03d}" for i in range(70)])


@contextlib.contextmanager
def forced_tiers(table_max=0, shard_max=0):
    """Force the dispatch past the dense tiers (sparse serves when the
    density bound fits, the mask loops otherwise)."""
    saved = (bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS)
    bitmodels._TABLE_MAX_LETTERS = table_max
    shards.SHARD_MAX_LETTERS = shard_max
    try:
        yield
    finally:
        bitmodels._TABLE_MAX_LETTERS, shards.SHARD_MAX_LETTERS = saved


@contextlib.contextmanager
def sparse_budget(budget):
    saved = shards.SPARSE_MAX_MODELS
    shards.SPARSE_MAX_MODELS = budget
    try:
        yield
    finally:
        shards.SPARSE_MAX_MODELS = saved


@contextlib.contextmanager
def int_backend(monkeypatch_like=None):
    saved = sparse._np
    sparse._np = None
    try:
        yield
    finally:
        sparse._np = saved


def build_set(alphabet, masks, backend):
    return SparseModelSet.from_masks(alphabet, masks, backend)


@st.composite
def mask_sets(draw, max_letters=10):
    n = draw(st.integers(min_value=4, max_value=max_letters))
    alphabet = BitAlphabet(LETTERS[:n])
    universe = alphabet.universe
    t_masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=universe),
            min_size=1, max_size=10, unique=True,
        )
    )
    p_masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=universe),
            min_size=1, max_size=12, unique=True,
        )
    )
    return alphabet, sorted(t_masks), sorted(p_masks)


@st.composite
def wide_mask_sets(draw):
    """Masks over a 70-letter alphabet — the >64-letter column-block path."""
    universe = WIDE.universe
    t_masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=universe),
            min_size=1, max_size=6, unique=True,
        )
    )
    p_masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=universe),
            min_size=1, max_size=8, unique=True,
        )
    )
    return WIDE, sorted(t_masks), sorted(p_masks)


# ---------------------------------------------------------------------------
# Kernel equivalence vs brute-force mask arithmetic
# ---------------------------------------------------------------------------


def reference_pointwise(kind, t_masks, p_masks):
    selected = set()
    for model in t_masks:
        if kind == "ring":
            best = min((model ^ p).bit_count() for p in p_masks)
            selected |= {p for p in p_masks if (model ^ p).bit_count() == best}
        elif kind == "minimal":
            diffs = min_subset_masks(model ^ p for p in p_masks)
            selected |= {model ^ d for d in diffs}
        else:
            selected |= {model ^ p for p in p_masks}
    return selected


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", ["minimal", "ring", "union"])
class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(case=st.one_of(mask_sets(), wide_mask_sets()))
    def test_pointwise_matches_reference(self, backend, kind, case):
        alphabet, t_masks, p_masks = case
        p_set = build_set(alphabet, p_masks, backend)
        got = pointwise_select(kind, p_set, t_masks)
        assert set(got.iter_masks()) == reference_pointwise(kind, t_masks, p_masks)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSetAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(case=st.one_of(mask_sets(), wide_mask_sets()))
    def test_algebra_and_sweeps_match_reference(self, backend, case):
        alphabet, t_masks, p_masks = case
        t = build_set(alphabet, t_masks, backend)
        p = build_set(alphabet, p_masks, backend)
        assert list(t.iter_masks()) == t_masks  # sorted + deduplicated
        assert list((t & p).iter_masks()) == sorted(set(t_masks) & set(p_masks))
        assert list((t | p).iter_masks()) == sorted(set(t_masks) | set(p_masks))
        mask = t_masks[0] ^ p_masks[-1]
        assert list(t.translate(mask).iter_masks()) == sorted(
            m ^ mask for m in t_masks
        )
        assert set(t.minimal_elements().iter_masks()) == set(
            min_subset_masks(t_masks)
        )
        from repro.logic.bitmodels import max_subset_masks

        assert set(t.maximal_elements().iter_masks()) == set(
            max_subset_masks(t_masks)
        )
        k, ring = p.first_ring()
        best = min(m.bit_count() for m in p_masks)
        assert k == best
        assert set(ring.iter_masks()) == {
            m for m in p_masks if m.bit_count() == best
        }

    @settings(max_examples=25, deadline=None)
    @given(case=st.one_of(mask_sets(), wide_mask_sets()))
    def test_global_selections_match_reference(self, backend, case):
        alphabet, t_masks, p_masks = case
        t = build_set(alphabet, t_masks, backend)
        p = build_set(alphabet, p_masks, backend)
        k, selected = min_distance_select(t, p)
        per_p = {
            pm: min((pm ^ tm).bit_count() for tm in t_masks) for pm in p_masks
        }
        assert k == min(per_p.values())
        assert set(selected.iter_masks()) == {
            pm for pm, d in per_p.items() if d == k
        }
        assert t.min_distance(p) == k
        allowed = t_masks[0] | p_masks[0]
        got = confined_select(t, p, allowed)
        forbidden = alphabet.universe & ~allowed
        assert set(got.iter_masks()) == {
            pm
            for pm in p_masks
            if any((pm ^ tm) & forbidden == 0 for tm in t_masks)
        }

    def test_neighbors_and_hamming_ball(self, backend):
        alphabet = BitAlphabet(LETTERS[:6])
        t = build_set(alphabet, [0b000011, 0b110000], backend)
        grown = t.neighbors()
        expected = {
            m ^ (1 << i) for m in (0b000011, 0b110000) for i in range(6)
        }
        assert set(grown.iter_masks()) == expected
        ball = t.hamming_ball(1)
        assert set(ball.iter_masks()) == expected | {0b000011, 0b110000}


# ---------------------------------------------------------------------------
# Determinism: worker count never changes a selected set
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["minimal", "ring", "union"])
class TestWorkerDeterminism:
    def test_processes_parameter(self, kind):
        alphabet = BitAlphabet(LETTERS[:8])
        t_masks = list(range(0, alphabet.universe, 23))
        p_masks = list(range(1, alphabet.universe, 17))
        for backend in BACKENDS:
            p_set = build_set(alphabet, p_masks, backend)
            serial = pointwise_select(kind, p_set, t_masks, processes=1)
            fanned = pointwise_select(kind, p_set, t_masks, processes=3)
            assert serial == fanned
            assert set(serial.iter_masks()) == reference_pointwise(
                kind, t_masks, p_masks
            )

    def test_repro_parallel_env(self, kind, monkeypatch):
        alphabet = BitAlphabet(LETTERS[:7])
        t_masks = list(range(0, alphabet.universe, 11))
        p_masks = list(range(2, alphabet.universe, 13))
        for backend in BACKENDS:
            p_set = build_set(alphabet, p_masks, backend)
            monkeypatch.delenv("REPRO_PARALLEL", raising=False)
            serial = pointwise_select(kind, p_set, t_masks)
            monkeypatch.setenv("REPRO_PARALLEL", "3")
            fanned = pointwise_select(kind, p_set, t_masks)
            assert serial == fanned


# ---------------------------------------------------------------------------
# Spill path: budget overruns rerun on the SAT tier, identically
# ---------------------------------------------------------------------------


class TestSpill:
    def test_translate_union_raises_past_budget(self):
        alphabet = BitAlphabet(LETTERS[:8])
        for backend in BACKENDS:
            table = build_set(alphabet, list(range(0, 200, 3)), backend)
            with sparse_budget(16):
                with pytest.raises(SparseSpill):
                    translate_union(table, list(range(0, 200, 7)))

    def test_carrier_construction_respects_budget(self):
        alphabet = BitAlphabet(LETTERS[:8])
        with sparse_budget(4):
            with pytest.raises(SparseSpill):
                SparseModelSet.from_masks(alphabet, range(10))

    def test_union_and_ball_respect_budget(self):
        alphabet = BitAlphabet(LETTERS[:8])
        for backend in BACKENDS:
            left = build_set(alphabet, range(0, 40, 2), backend)
            right = build_set(alphabet, range(1, 41, 2), backend)
            with sparse_budget(30):
                with pytest.raises(SparseSpill):
                    left | right
                with pytest.raises(SparseSpill):
                    left.hamming_ball(2)


# ---------------------------------------------------------------------------
# Operator level: sparse vs sharded vs big-int, spill parity, tier labels
# ---------------------------------------------------------------------------


def _random_tp(draw_seed: int, letter_count: int):
    import sys
    from pathlib import Path

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    from _util import random_tp_pair

    return random_tp_pair(draw_seed, LETTERS[:letter_count])


class TestOperatorEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=6),
        st.data(),
    )
    def test_sparse_matches_big_int_and_sharded(self, seed, letter_count, data):
        from repro.revision import MODEL_BASED_NAMES, revise

        name = data.draw(st.sampled_from(sorted(MODEL_BASED_NAMES)))
        t, p = _random_tp(seed, letter_count)
        reference = revise(t, p, name)
        assert reference.engine_tier in ("table", "degenerate")
        with forced_tiers(table_max=0, shard_max=0):
            on_sparse = revise(t, p, name)
        with forced_tiers(table_max=0, shard_max=26):
            on_sharded = revise(t, p, name)
        assert on_sharded.engine_tier in ("sharded", "degenerate")
        assert on_sparse.engine_tier in ("sparse", "sparse-spill", "degenerate")
        assert on_sparse.alphabet == reference.alphabet
        assert on_sparse.bit_model_set == reference.bit_model_set
        assert on_sharded.bit_model_set == reference.bit_model_set

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.data(),
    )
    def test_int_backend_matches(self, seed, data):
        from repro.revision import MODEL_BASED_NAMES, revise

        name = data.draw(st.sampled_from(sorted(MODEL_BASED_NAMES)))
        t, p = _random_tp(seed, 4)
        reference = revise(t, p, name)
        with int_backend():
            with forced_tiers():
                on_sparse = revise(t, p, name)
        assert on_sparse.bit_model_set == reference.bit_model_set

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.data(),
    )
    def test_spill_parity_with_sat_tier(self, seed, data):
        """A budget that admits the inputs but not the intermediates must
        still produce the SAT tier's exact result (spill parity)."""
        from repro.revision import MODEL_BASED_NAMES, revise

        name = data.draw(st.sampled_from(sorted(MODEL_BASED_NAMES)))
        t, p = _random_tp(seed, 5)
        reference = revise(t, p, name)
        from repro.sat import bit_models

        letters = sorted(t.variables() | p.variables())
        counts = [
            bit_models(t, letters).count(), bit_models(p, letters).count()
        ]
        budget = max(max(counts), 1)
        with forced_tiers():
            with sparse_budget(budget):
                squeezed = revise(t, p, name)
        assert squeezed.bit_model_set == reference.bit_model_set
        assert squeezed.engine_tier in (
            "sparse", "sparse-spill", "masks", "degenerate"
        )

    def test_spill_reruns_on_dense_tier_when_available(self):
        """With the sparse tier lowered below the bitplane cutoffs, a
        budget spill must re-dispatch to the table/sharded tier — not to
        the per-pair mask loops — and still match the reference."""
        from repro.revision import revise
        from repro.sat import bit_models

        t, p = _random_tp(0, 5)  # seed 0: delta's union outgrows the inputs
        reference = revise(t, p, "satoh")
        letters = sorted(t.variables() | p.variables())
        budget = max(
            bit_models(t, letters).count(), bit_models(p, letters).count()
        )
        saved_min = shards.SPARSE_MIN_LETTERS
        shards.SPARSE_MIN_LETTERS = 1
        try:
            with forced_tiers(table_max=0, shard_max=26):
                with sparse_budget(budget):
                    spilled = revise(t, p, "satoh")
        finally:
            shards.SPARSE_MIN_LETTERS = saved_min
        assert spilled.bit_model_set == reference.bit_model_set
        assert spilled.engine_tier == "sparse-spill"
        # The rerun really came off a bitplane, not the mask loops.
        assert spilled.bit_model_set._sharded is not None

    def test_delta_bits_sparse_matches_table(self):
        from repro.revision import delta_bits
        from repro.sat import bit_models

        t, p = _random_tp(23, 6)
        alphabet = BitAlphabet(LETTERS[:6])
        reference = delta_bits(bit_models(t, alphabet), bit_models(p, alphabet))
        with forced_tiers():
            t_bits = bit_models(t, alphabet)
            p_bits = bit_models(p, alphabet)
            assert delta_bits(t_bits, p_bits) == reference

    def test_minimum_distance_sparse_route(self):
        from repro.compact.dalal import minimum_distance
        from repro.logic import Theory

        t, p = _random_tp(11, 6)
        reference = minimum_distance(Theory([t]), p)
        with forced_tiers():
            assert minimum_distance(Theory([t]), p) == reference


# ---------------------------------------------------------------------------
# Dispatch: four tiers, live knobs
# ---------------------------------------------------------------------------


class TestTierDispatch:
    def test_four_tier_decisions(self):
        table_max = bitmodels._TABLE_MAX_LETTERS
        shard_max = shards.SHARD_MAX_LETTERS
        assert shards.tier(table_max) == "table"
        assert shards.tier(shard_max) == "sharded"
        assert shards.tier(shard_max + 10) == "masks"
        assert shards.tier(shard_max + 10, model_bound=100) == "sparse"
        assert shards.tier(
            shard_max + 10, model_bound=shards.SPARSE_MAX_MODELS + 1
        ) == "masks"
        # Below the shard cutoff the bitplanes stay authoritative...
        assert shards.tier(shard_max, model_bound=100) == "sharded"
        # ...unless SPARSE_MIN_LETTERS is lowered.
        saved = shards.SPARSE_MIN_LETTERS
        shards.SPARSE_MIN_LETTERS = shard_max
        try:
            assert shards.tier(shard_max, model_bound=100) == "sparse"
        finally:
            shards.SPARSE_MIN_LETTERS = saved

    def test_sparse_tier_can_be_disabled(self):
        saved = shards.SPARSE_TIER
        shards.SPARSE_TIER = False
        try:
            assert shards.tier(
                shards.SHARD_MAX_LETTERS + 10, model_bound=10
            ) == "masks"
        finally:
            shards.SPARSE_TIER = saved

    def test_model_count_bound_structural_and_probe(self):
        from repro.hardness import sparse_family
        from repro.logic import parse
        from repro.sat import model_count_bound

        w = sparse_family.build(30, t_cubes=12, p_cubes=5, seed=1)
        # Cube DNFs bound structurally — no solver call needed.
        assert model_count_bound(w.t_formula, w.letters, probe=False) == 12
        # Xor only bounds structurally to 2^n; with a budget below that
        # the SAT-count probe must answer exactly (4 = 2 xor models x 2
        # completions of the free letter).
        formula = parse("a ^ b")
        assert model_count_bound(formula, ["a", "b", "c"], budget=50) == 8
        assert model_count_bound(formula, ["a", "b", "c"], budget=5) == 4
        assert model_count_bound(formula, ["a", "b"], budget=1, probe=False) is None
        assert model_count_bound(formula, ["a", "b"], budget=1) is None

    def test_model_count_bound_sound_under_projection(self):
        """Literals on projected-away letters must not tighten the bound:
        c & d over {a, b} has 4 projected models, not 1."""
        from repro.logic import parse
        from repro.sat import count_models, model_count_bound

        formula = parse("c & d")
        bound = model_count_bound(formula, ["a", "b"], budget=50, probe=False)
        actual = count_models(formula, ["a", "b"])
        assert actual == 4
        assert bound is not None and bound >= actual
        mixed = parse("a & c & (b | d)")
        bound = model_count_bound(mixed, ["a", "b"], budget=50, probe=False)
        assert bound is not None and bound >= count_models(mixed, ["a", "b"])


# ---------------------------------------------------------------------------
# Workload family: ground truth and determinism
# ---------------------------------------------------------------------------


class TestSparseFamily:
    def test_ground_truth_matches_enumeration(self):
        from repro.hardness import sparse_family
        from repro.sat import bit_models

        w = sparse_family.build(12, t_cubes=9, p_cubes=4, seed=7, free_letters=2)
        assert w.t_model_count == 9 * 4 and w.p_model_count == 4 * 4
        assert sorted(bit_models(w.t_formula, w.letters).iter_masks()) == list(
            w.t_masks
        )
        assert sorted(bit_models(w.p_formula, w.letters).iter_masks()) == list(
            w.p_masks
        )

    def test_deterministic_and_density_exact(self):
        from repro.hardness import sparse_family

        first = sparse_family.build(40, t_cubes=50, p_cubes=30, seed=3)
        again = sparse_family.build(40, t_cubes=50, p_cubes=30, seed=3)
        assert first.t_masks == again.t_masks
        assert first.p_masks == again.p_masks
        assert first.t_model_count == 50 and first.p_model_count == 30
        with pytest.raises(ValueError):
            sparse_family.build(4, t_cubes=100, p_cubes=1, seed=0)


# ---------------------------------------------------------------------------
# Batch layer: warm precompiles the sparse carrier, tiers are reported
# ---------------------------------------------------------------------------


class TestBatchObservability:
    def test_warm_precompiles_sparse_carrier(self):
        from repro.hardness import sparse_family
        from repro.revision import BatchCache

        w = sparse_family.build(30, t_cubes=10, p_cubes=5, seed=2)
        cache = BatchCache()
        bits = cache.warm(w.t_formula, w.letters)
        assert bits._sparse is not None  # carrier ready before the batch
        assert sorted(bits.iter_masks()) == list(w.t_masks)

    def test_tier_counts_report_serving_tier(self):
        from repro.hardness import sparse_family
        from repro.revision import BatchCache, revise_many

        w = sparse_family.build(30, t_cubes=10, p_cubes=5, seed=2)
        cache = BatchCache()
        pairs = [(w.t_formula, w.p_formula)] * 2
        results = revise_many(pairs, operator="dalal", cache=cache)
        assert results[0].engine_tier == "sparse"
        assert results[0].bit_model_set == results[1].bit_model_set
        assert cache.tier_counts["sparse"] == 1
        assert cache.tier_counts["memoised"] == 1

    def test_small_alphabets_report_table_tier(self):
        from repro.revision import BatchCache, revise_many

        cache = BatchCache()
        revise_many([("a & b", "~a")], operator="dalal", cache=cache)
        assert cache.tier_counts["table"] == 1


# ---------------------------------------------------------------------------
# BitModelSet sparse encoding
# ---------------------------------------------------------------------------


class TestBitModelSetSparse:
    def test_sparse_backed_set_defers_mask_materialisation(self):
        alphabet = BitAlphabet(LETTERS[:8])
        carrier = SparseModelSet.from_masks(alphabet, [3, 77, 200])
        bits = BitModelSet.from_sparse(alphabet, carrier)
        assert bits._masks is None
        assert bits.count() == 3 and len(bits) == 3 and bool(bits)
        assert 77 in bits and 78 not in bits
        assert bits._masks is None  # still no frozenset
        assert bits.masks == frozenset({3, 77, 200})

    def test_cross_encoding_equality(self):
        alphabet = BitAlphabet(LETTERS[:6])
        carrier = SparseModelSet.from_masks(alphabet, [1, 2, 5])
        from_sparse = BitModelSet.from_sparse(alphabet, carrier)
        from_table = BitModelSet.from_table(alphabet, 0b100110)
        from_masks = BitModelSet(alphabet, [1, 2, 5])
        assert from_sparse == from_table == from_masks
        assert hash(from_sparse) == hash(from_masks)

    def test_wide_alphabet_equality_never_builds_tables(self):
        carrier = SparseModelSet.from_masks(WIDE, [1 << 69, 5])
        left = BitModelSet.from_sparse(WIDE, carrier)
        right = BitModelSet(WIDE, [5, 1 << 69])
        assert left == right  # would be a 2^70-bit table otherwise
