"""Tests for Theory and interpretation helpers."""

import pytest

from repro.logic import (
    Theory,
    all_interpretations,
    hamming_distance,
    interp,
    land,
    max_subset,
    min_subset,
    parse,
    restrict,
    symmetric_difference,
    var,
)
from repro.logic.interpretation import (
    format_interpretation,
    min_cardinality,
    subsets,
)


class TestTheory:
    def test_deduplicates(self):
        t = Theory([var("a"), var("a"), var("b")])
        assert len(t) == 2

    def test_set_equality_ignores_order(self):
        assert Theory([var("a"), var("b")]) == Theory([var("b"), var("a")])

    def test_syntax_sensitivity(self):
        # The paper's example: T1 = {a, b} and T2 = {a, a -> b} are logically
        # equivalent but different *theories*.
        t1 = Theory.parse_many("a", "b")
        t2 = Theory.parse_many("a", "a -> b")
        assert t1 != t2
        from repro.sat import equivalent

        assert equivalent(t1.conjunction(), t2.conjunction())

    def test_conjunction_and_vars(self):
        t = Theory.parse_many("a", "b | c")
        assert t.conjunction() == land(parse("a"), parse("b | c"))
        assert t.variables() == frozenset("abc")

    def test_size_sums_members(self):
        t = Theory.parse_many("a & a", "b")
        assert t.size() == 3

    def test_union_intersection_without(self):
        t1 = Theory.parse_many("a", "b")
        t2 = Theory.parse_many("b", "c")
        assert t1.union(t2) == Theory.parse_many("a", "b", "c")
        assert t1.intersection(t2) == Theory.parse_many("b")
        assert t1.without(t2) == Theory.parse_many("a")

    def test_subsets_largest_first(self):
        t = Theory.parse_many("a", "b")
        sizes = [len(s) for s in t.subsets()]
        assert sizes == [2, 1, 1, 0]

    def test_coerce(self):
        assert Theory.coerce("a") == Theory.parse_many("a")
        assert Theory.coerce(parse("a & b")) == Theory([parse("a & b")])
        t = Theory.parse_many("a")
        assert Theory.coerce(t) is t

    def test_empty_theory_conjunction_is_valid(self):
        assert Theory([]).conjunction().evaluate(set())


class TestInterpretations:
    def test_all_interpretations_count(self):
        assert len(list(all_interpretations(["a", "b", "c"]))) == 8

    def test_all_interpretations_distinct(self):
        models = list(all_interpretations(["a", "b"]))
        assert len(set(models)) == 4

    def test_symmetric_difference_paper_table1(self):
        # Table 1 of the paper: M1 = {a,b,c,d}, N2 = {c} -> difference {a,b,d}.
        m1 = interp("abcd")
        n2 = interp("c")
        assert symmetric_difference(m1, n2) == frozenset("abd")

    def test_hamming_distance_paper_table2(self):
        m2 = interp("abc")
        n1 = interp("ab")
        assert hamming_distance(m2, n1) == 1
        assert hamming_distance(interp("abcd"), interp()) == 4

    def test_min_subset(self):
        family = [frozenset("ab"), frozenset("a"), frozenset("bc")]
        assert set(min_subset(family)) == {frozenset("a"), frozenset("bc")}

    def test_max_subset(self):
        family = [frozenset("ab"), frozenset("a"), frozenset("bc")]
        assert set(max_subset(family)) == {frozenset("ab"), frozenset("bc")}

    def test_min_subset_keeps_duplicates_once(self):
        family = [frozenset("a"), frozenset("a")]
        assert min_subset(family) == [frozenset("a")]

    def test_min_cardinality(self):
        assert min_cardinality([frozenset("ab"), frozenset("c")]) == 1
        with pytest.raises(ValueError):
            min_cardinality([])

    def test_restrict(self):
        assert restrict({"a", "b", "c"}, {"b", "c", "d"}) == frozenset("bc")

    def test_subsets_smallest_first(self):
        out = list(subsets(["a", "b"]))
        assert out[0] == frozenset()
        assert set(out) == {
            frozenset(),
            frozenset("a"),
            frozenset("b"),
            frozenset("ab"),
        }

    def test_format(self):
        assert format_interpretation({"b", "a"}) == "{a, b}"
