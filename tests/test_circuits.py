"""Tests for the circuit substrate: builders, EXA, cardinality."""

from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CircuitBuilder,
    at_least,
    at_most,
    atmost,
    const_bits,
    distance_less_than,
    exa,
    exa_plain,
    exactly,
    exactly_pairwise,
)
from repro.logic import FALSE, TRUE, Formula, Var, land, var
from repro.sat import count_models, is_satisfiable, models


def bits_value(model, bit_wires) -> int:
    """Decode a little-endian wire vector under a model."""
    total = 0
    for position, wire in enumerate(bit_wires):
        if wire.evaluate(model):
            total += 1 << position
    return total


class TestBuilder:
    def test_wire_defines_letter(self):
        builder = CircuitBuilder()
        w = builder.wire(var("a") & var("b"))
        defs = builder.definitions()
        assert w.variables() <= defs.variables()
        # definitions force w == a&b
        assert defs.evaluate({"a", "b", w.variables().pop()} if False else {"a", "b"} | w.variables())
        assert not defs.evaluate({"a"} | w.variables())

    def test_constants_passthrough(self):
        builder = CircuitBuilder()
        assert builder.wire(TRUE) is TRUE
        assert builder.wire(FALSE) is FALSE
        assert builder.definition_count() == 0

    def test_avoid_collisions(self):
        builder = CircuitBuilder(prefix="x", avoid=["x0", "x1"])
        w = builder.wire(var("a") | var("b"))
        assert w == Var("x2")

    def test_popcount_small(self):
        # popcount of constants: check by SAT-free evaluation.
        builder = CircuitBuilder()
        inputs = [var("i0"), var("i1"), var("i2")]
        count = builder.popcount(inputs)
        defs = builder.definitions()
        for true_inputs in [set(), {"i0"}, {"i0", "i2"}, {"i0", "i1", "i2"}]:
            # Find the unique extension of true_inputs to the wires.
            for m in models(land(defs, *(
                Var(n) if n in true_inputs else ~Var(n) for n in ["i0", "i1", "i2"]
            ))):
                assert bits_value(m, count) == len(true_inputs)

    def test_add_matches_arithmetic(self):
        builder = CircuitBuilder()
        for a_val in range(4):
            for b_val in range(4):
                total_bits = builder.add(const_bits(a_val, 2), const_bits(b_val, 2))
                assert bits_value(set(), total_bits) == a_val + b_val

    def test_equals_const(self):
        builder = CircuitBuilder()
        assert builder.equals_const(const_bits(5, 3), 5).evaluate(set())
        assert not builder.equals_const(const_bits(5, 3), 4).evaluate(set())
        assert builder.equals_const(const_bits(1, 1), 2) == FALSE

    def test_less_than_const(self):
        builder = CircuitBuilder()
        for value in range(8):
            for bound in range(10):
                f = builder.less_than_const(const_bits(value, 3), bound)
                assert f.evaluate(set()) == (value < bound), (value, bound)

    def test_less_than_vectors(self):
        for a_val in range(8):
            for b_val in range(8):
                builder = CircuitBuilder()
                out = builder.less_than(const_bits(a_val, 3), const_bits(b_val, 3))
                f = land(builder.definitions(), out)
                assert is_satisfiable(f) == (a_val < b_val), (a_val, b_val)

    def test_const_bits(self):
        assert [b is TRUE for b in const_bits(5, 4)] == [True, False, True, False]
        with pytest.raises(ValueError):
            const_bits(9, 3)
        with pytest.raises(ValueError):
            const_bits(-1)


def _exa_models(k, n):
    xs = [f"x{i}" for i in range(n)]
    ys = [f"y{i}" for i in range(n)]
    formula = exa(k, xs, ys)
    return xs, ys, set(models(formula, alphabet=xs + ys))


class TestExa:
    @pytest.mark.parametrize("n,k", [(1, 0), (1, 1), (2, 1), (3, 0), (3, 2), (4, 4), (4, 2)])
    def test_exact_distance_semantics(self, n, k):
        xs, ys, found = _exa_models(k, n)
        expected = set()
        for x_mask in range(1 << n):
            for y_mask in range(1 << n):
                if bin(x_mask ^ y_mask).count("1") == k:
                    m = frozenset(
                        [xs[i] for i in range(n) if x_mask >> i & 1]
                        + [ys[i] for i in range(n) if y_mask >> i & 1]
                    )
                    expected.add(m)
        assert found == expected

    def test_out_of_range_k(self):
        assert exa(5, ["x0"], ["y0"]) == FALSE
        assert exa(-1, ["x0"], ["y0"]) == FALSE

    def test_unique_extension_to_aux(self):
        # Model count over the full alphabet equals count of (X,Y) pairs at
        # distance k: the W letters are functionally determined.
        n, k = 3, 1
        xs = [f"x{i}" for i in range(n)]
        ys = [f"y{i}" for i in range(n)]
        formula = exa(k, xs, ys)
        full = count_models(formula, alphabet=sorted(formula.variables()))
        pairs = sum(
            1
            for xm in range(1 << n)
            for ym in range(1 << n)
            if bin(xm ^ ym).count("1") == k
        )
        assert full == pairs

    def test_matches_plain_variant(self):
        n = 3
        xs = [f"x{i}" for i in range(n)]
        ys = [f"y{i}" for i in range(n)]
        for k in range(n + 1):
            circuit = set(models(exa(k, xs, ys), alphabet=xs + ys))
            plain = set(models(exa_plain(k, xs, ys), alphabet=xs + ys))
            assert circuit == plain, k

    def test_polynomial_size_growth(self):
        sizes = []
        for n in [4, 8, 16, 32]:
            xs = [f"x{i}" for i in range(n)]
            ys = [f"y{i}" for i in range(n)]
            sizes.append(exa(n // 2, xs, ys).size())
        # Size roughly linear in n for the counter: quadrupling n from 8 to 32
        # must grow size far less than the 4^2 a quadratic would allow;
        # certainly not exponentially.
        assert sizes[3] < sizes[1] * 8

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            exa(1, ["x0", "x1"], ["y0"])
        with pytest.raises(ValueError):
            exa(1, ["x0"], ["x0"])
        with pytest.raises(ValueError):
            exa(1, ["x0", "x0"], ["y0", "y1"])

    def test_atmost(self):
        n = 3
        xs = [f"x{i}" for i in range(n)]
        ys = [f"y{i}" for i in range(n)]
        for k in range(n + 1):
            found = set(models(atmost(k, xs, ys), alphabet=xs + ys))
            expected = set()
            for xm in range(1 << n):
                for ym in range(1 << n):
                    if bin(xm ^ ym).count("1") <= k:
                        expected.add(
                            frozenset(
                                [xs[i] for i in range(n) if xm >> i & 1]
                                + [ys[i] for i in range(n) if ym >> i & 1]
                            )
                        )
            assert found == expected, k


class TestDistanceComparison:
    def test_distance_less_than(self):
        # Two independent pairs over 2 bits each.
        xl, yl = ["a0", "a1"], ["b0", "b1"]
        xr, yr = ["c0", "c1"], ["d0", "d1"]
        defs, lt_wire = distance_less_than(xl, yl, xr, yr)
        formula = land(defs, lt_wire)
        # dist(a,b)=0 < dist(c,d)=1 should be satisfiable with fixed letters.
        fixed = land(
            ~Var("a0"), ~Var("a1"), ~Var("b0"), ~Var("b1"),
            Var("c0"), ~Var("c1"), ~Var("d0"), ~Var("d1"),
        )
        assert is_satisfiable(land(formula, fixed))
        # dist 1 < dist 0 unsatisfiable.
        fixed_bad = land(
            Var("a0"), ~Var("a1"), ~Var("b0"), ~Var("b1"),
            ~Var("c0"), ~Var("c1"), ~Var("d0"), ~Var("d1"),
        )
        assert not is_satisfiable(land(formula, fixed_bad))

    def test_exhaustive_2bit(self):
        xl, yl = ["a0", "a1"], ["b0", "b1"]
        xr, yr = ["c0", "c1"], ["d0", "d1"]
        defs, lt_wire = distance_less_than(xl, yl, xr, yr)
        for am in range(4):
            for bm in range(4):
                for cm in range(4):
                    for dm in range(4):
                        truth = set()
                        for letters, mask in ((xl, am), (yl, bm), (xr, cm), (yr, dm)):
                            truth |= {letters[i] for i in range(2) if mask >> i & 1}
                        expected = bin(am ^ bm).count("1") < bin(cm ^ dm).count("1")
                        got = is_satisfiable(
                            land(
                                defs,
                                lt_wire,
                                *(
                                    Var(n) if n in truth else ~Var(n)
                                    for n in xl + yl + xr + yr
                                ),
                            )
                        )
                        assert got == expected


class TestCardinality:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_exactly(self, k):
        letters = ["p", "q", "r"]
        found = set(models(exactly(k, letters), alphabet=letters))
        expected = {
            frozenset(combo) for combo in combinations(letters, k)
        } if k <= 3 else set()
        assert found == expected

    def test_exactly_out_of_range(self):
        assert exactly(4, ["p"]) == FALSE

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_at_most_at_least_partition(self, k):
        letters = ["p", "q", "r"]
        le = set(models(at_most(k, letters), alphabet=letters))
        ge = set(models(at_least(k + 1, letters), alphabet=letters))
        assert le | ge == set(models(TRUE, alphabet=letters))
        assert le & ge == set()

    def test_pairwise_oracle_matches(self):
        letters = ["p", "q", "r", "s"]
        for k in range(5):
            circuit = set(models(exactly(k, letters), alphabet=letters))
            plain = set(models(exactly_pairwise(k, letters), alphabet=letters))
            assert circuit == plain
