"""Incremental AllSAT enumerator: parity with the blocking-clause loop.

The blocking-clause loop of :func:`repro.sat.enumerate.
enumerate_models_blocking` is the independent reference implementation —
restart-per-model, no shared machinery with the resumable search — so the
hypothesis suites here pit the incremental enumerator against it across
random CNFs, projection subsets (including variables outside every clause
and empty projections), limits, and all four combinations of cube
generalization × component splitting.  On top: the direct-to-mask
emission path, cube counting, the incremental-carrier compile of
:class:`repro.revision.batch.BatchCache`, and the live ``REPRO_ALLSAT``
knob.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import parse
from repro.logic.bitmodels import BitAlphabet
from repro.logic.formula import Var, big_and, big_or, lnot
from repro.logic.sparse import SparseModelSet
from repro.sat import (
    CnfInstance,
    allsat,
    bit_models,
    count_cnf_models,
    count_models,
    enumerate_cubes,
    enumerate_models,
    enumerate_models_blocking,
    incremental_bit_models,
    models,
)


@st.composite
def cnf_instances(draw):
    """A small random CNF plus a projection in one of four shapes."""
    num_vars = draw(st.integers(min_value=1, max_value=6))
    clause_count = draw(st.integers(min_value=0, max_value=10))
    instance = CnfInstance(num_vars)
    for _ in range(clause_count):
        size = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.sampled_from([1, -1]))
            * draw(st.integers(min_value=1, max_value=num_vars))
            for _ in range(size)
        ]
        instance.add_clause(clause)
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        projection = None
    elif shape == 1:
        projection = []
    else:
        # May include variables no clause mentions (unconstrained letters).
        upper = num_vars + 2
        projection = draw(
            st.lists(
                st.integers(min_value=1, max_value=upper),
                min_size=1,
                max_size=upper,
                unique=True,
            )
        )
        for var in projection:
            if var > instance.num_vars:
                instance.num_vars = var
    limit = draw(st.sampled_from([None, None, 1, 3, 7]))
    return instance, projection, limit


@pytest.fixture
def knobs():
    """Restore the generalization/splitting knobs after each test."""
    saved = (allsat.CUBES, allsat.COMPONENTS)
    yield
    allsat.CUBES, allsat.COMPONENTS = saved


class TestEnumeratorParity:
    @settings(max_examples=300, deadline=None)
    @given(cnf_instances())
    def test_matches_blocking_loop(self, case):
        instance, projection, limit = case
        reference = set(enumerate_models_blocking(instance, projection, limit))
        full = (
            set(enumerate_models_blocking(instance, projection, None))
            if limit is not None
            else reference
        )
        saved = (allsat.CUBES, allsat.COMPONENTS)
        try:
            for generalize in (True, False):
                for split in (True, False):
                    allsat.CUBES, allsat.COMPONENTS = generalize, split
                    produced = list(
                        allsat.enumerate_models(instance, projection, limit)
                    )
                    found = set(produced)
                    # No duplicates, ever.
                    assert len(produced) == len(found)
                    if limit is None:
                        assert found == reference
                    else:
                        # Any `limit` distinct models of the full set.
                        assert found <= full
                        assert len(found) == min(len(full), limit)
        finally:
            allsat.CUBES, allsat.COMPONENTS = saved

    @settings(max_examples=150, deadline=None)
    @given(cnf_instances())
    def test_cube_counts_match(self, case):
        instance, projection, limit = case
        full = len(set(enumerate_models_blocking(instance, projection, None)))
        assert allsat.count_models(instance, projection) == full
        if limit is not None:
            assert allsat.count_models(instance, projection, limit) == min(
                full, limit
            )

    @settings(max_examples=100, deadline=None)
    @given(cnf_instances())
    def test_cubes_partition_the_model_set(self, case):
        """Each projected model is covered by exactly one cube."""
        instance, projection, _ = case
        covered = []
        for cube in enumerate_cubes(instance, projection):
            expanded = list(cube.iter_models())
            assert len(expanded) == cube.model_count()
            covered.extend(expanded)
        assert len(covered) == len(set(covered))
        assert set(covered) == set(
            enumerate_models_blocking(instance, projection)
        )

    def test_empty_projection_of_satisfiable_instance(self):
        instance = CnfInstance(2)
        instance.add_clause([1, 2])
        assert list(allsat.enumerate_models(instance, [])) == [()]

    def test_empty_projection_of_unsatisfiable_instance(self):
        instance = CnfInstance(1)
        instance.add_clause([1])
        instance.add_clause([-1])
        assert list(allsat.enumerate_models(instance, [])) == []

    def test_empty_clause_enumerates_nothing(self):
        instance = CnfInstance(1)
        instance.add_clause([])
        assert list(allsat.enumerate_models(instance)) == []

    def test_unconstrained_letters_expand_as_free_bits(self):
        instance = CnfInstance(3)
        instance.add_clause([1])
        cubes = list(enumerate_cubes(instance, [1, 2, 3]))
        assert len(cubes) == 1
        assert cubes[0].lits == (1,)
        assert sorted(cubes[0].free) == [2, 3]
        assert set(allsat.enumerate_models(instance, [1, 2, 3])) == {
            (1, -2, -3), (1, -2, 3), (1, 2, -3), (1, 2, 3),
        }

    def test_component_splitting_is_additive(self, knobs):
        # Two independent constraints: 3 x 3 models from 3 + 3 solves.
        instance = CnfInstance(4)
        instance.add_clause([1, 2])
        instance.add_clause([3, 4])
        before = allsat.STATS["resumes"]
        allsat.CUBES = False  # count raw solver models, no generalization
        allsat.COMPONENTS = True  # regardless of the ambient env knob
        found = set(allsat.enumerate_models(instance))
        split_resumes = allsat.STATS["resumes"] - before
        assert len(found) == 9
        assert found == set(enumerate_models_blocking(instance))
        allsat.COMPONENTS = False
        before = allsat.STATS["resumes"]
        assert set(allsat.enumerate_models(instance)) == found
        joint_resumes = allsat.STATS["resumes"] - before
        assert split_resumes < joint_resumes  # m1 + m2 vs m1 * m2 solves

    def test_stats_counters_move(self):
        instance = CnfInstance(2)
        instance.add_clause([1, 2])
        before = dict(allsat.STATS)
        list(allsat.enumerate_models(instance))
        assert allsat.STATS["enumerations"] > before["enumerations"]
        assert allsat.STATS["models"] >= before["models"] + 3


class TestKnobParity:
    """The live ``REPRO_ALLSAT`` knob keeps the old loop reachable."""

    def test_dispatch_follows_the_env(self, monkeypatch):
        instance = CnfInstance(2)
        instance.add_clause([1, 2])
        expected = set(enumerate_models_blocking(instance))
        monkeypatch.setenv("REPRO_ALLSAT", "0")
        before = allsat.STATS["enumerations"]
        assert set(enumerate_models(instance)) == expected
        assert count_cnf_models(instance) == 3
        assert allsat.STATS["enumerations"] == before  # old loop served
        monkeypatch.delenv("REPRO_ALLSAT")
        assert set(enumerate_models(instance)) == expected
        assert allsat.STATS["enumerations"] > before

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000))
    def test_formula_paths_identical_with_allsat_off(self, seed):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        from _util import random_tp_pair

        t, p = random_tp_pair(seed, ["a", "b", "c", "d", "e"])
        # Force the SAT path by projecting onto a sub-alphabet (extra
        # letters keep the table tiers out).
        alphabet = ["a", "b", "c"]
        on = set(models(t, alphabet))
        on_bits = bit_models(t, alphabet)
        on_count = count_models(t, alphabet)
        os.environ["REPRO_ALLSAT"] = "0"
        try:
            assert set(models(t, alphabet)) == on
            assert bit_models(t, alphabet).masks == on_bits.masks
            assert count_models(t, alphabet) == on_count
        finally:
            del os.environ["REPRO_ALLSAT"]


class TestDirectToMask:
    def test_cube_masks_expand_in_ascending_completion_order(self):
        cube = allsat.Cube((1, -3), (2, 4))
        bit_of = {1: 0, 2: 1, 3: 2, 4: 3}
        assert list(allsat.cube_masks([cube], bit_of)) == [
            0b0001, 0b0011, 0b1001, 0b1011,
        ]

    def test_sparse_from_cubes_matches_expansion(self):
        alphabet = BitAlphabet([f"x{i}" for i in range(5)])
        carrier = SparseModelSet.from_cubes(
            alphabet, [(0b00001, (1 << 1, 1 << 3)), (0b10110, ())]
        )
        assert list(carrier.iter_masks()) == sorted(
            [0b00001, 0b00011, 0b01001, 0b01011, 0b10110]
        )

    def test_bit_models_lands_on_the_sparse_carrier_past_the_cutoff(self):
        from repro.hardness import sparse_family
        from repro.logic import shards

        letters = shards.SHARD_MAX_LETTERS + 4
        workload = sparse_family.build(letters, 12, 8, seed=0, free_letters=2)
        bits = bit_models(workload.t_formula, workload.letters)
        assert sorted(bits.iter_masks()) == list(workload.t_masks)
        # The carrier was built straight from cubes — no mask frozenset.
        assert bits._sparse is not None
        assert bits._masks is None


class TestIncrementalCarrier:
    LETTERS = [f"w{i:02d}" for i in range(8)]

    def _formula(self, seed: int):
        import random

        rng = random.Random(seed)
        clauses = []
        for _ in range(rng.randint(1, 5)):
            size = rng.randint(1, 3)
            lits = [
                Var(rng.choice(self.LETTERS))
                if rng.random() < 0.5
                else lnot(Var(rng.choice(self.LETTERS)))
                for _ in range(size)
            ]
            clauses.append(big_or(lits))
        return big_and(clauses)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5_000),
    )
    def test_parity_with_fresh_enumeration(self, old_seed, new_seed):
        alphabet = BitAlphabet.coerce(self.LETTERS)
        old_formula = self._formula(old_seed)
        new_formula = self._formula(new_seed)
        old_bits = bit_models(old_formula, alphabet)
        incremental = incremental_bit_models(
            new_formula, alphabet, old_formula, old_bits
        )
        fresh = bit_models(new_formula, alphabet)
        assert incremental.masks == fresh.masks

    def test_parity_with_allsat_off(self):
        alphabet = BitAlphabet.coerce(self.LETTERS)
        old_formula = self._formula(11)
        new_formula = self._formula(12)
        old_bits = bit_models(old_formula, alphabet)
        fresh = bit_models(new_formula, alphabet)
        os.environ["REPRO_ALLSAT"] = "0"
        try:
            incremental = incremental_bit_models(
                new_formula, alphabet, old_formula, old_bits
            )
        finally:
            del os.environ["REPRO_ALLSAT"]
        assert incremental.masks == fresh.masks

    def test_restriction_stream_enumerates_no_delta(self):
        # P2 = P1 ∧ extra: every model survives the re-check, the delta
        # instance is unsatisfiable — zero new solver models.
        alphabet = BitAlphabet.coerce(self.LETTERS)
        p1 = parse("w00 | w01 | w02")
        p2 = big_and([p1, parse("~w01")])
        p1_bits = bit_models(p1, alphabet)
        before = allsat.STATS["models"]
        incremental = incremental_bit_models(p2, alphabet, p1, p1_bits)
        assert allsat.STATS["models"] == before  # nothing re-enumerated
        assert incremental.masks == bit_models(p2, alphabet).masks

    def test_batch_cache_compiles_update_stream_incrementally(self):
        from repro.hardness import sparse_family
        from repro.logic import shards
        from repro.revision import revise
        from repro.revision.batch import BatchCache, revise_many

        letters = shards.SHARD_MAX_LETTERS + 2
        workload = sparse_family.build(letters, 8, 6, seed=1)
        drift = big_or([workload.p_formula, workload.t_formula])
        pairs = [
            (workload.t_formula, workload.p_formula),
            (workload.t_formula, drift),
        ]
        cache = BatchCache()
        batched = revise_many(pairs, "dalal", cache=cache)
        assert cache.incremental == 1  # second P seeded from the first
        for (t, p), result in zip(pairs, batched):
            single = revise(t, p, "dalal")
            assert result.bit_model_set == single.bit_model_set

    def test_alphabet_mismatch_rejected(self):
        alphabet = BitAlphabet.coerce(self.LETTERS)
        other = BitAlphabet.coerce(self.LETTERS[:4])
        formula = parse("w00")
        bits = bit_models(formula, other)
        with pytest.raises(ValueError):
            incremental_bit_models(formula, alphabet, formula, bits)


class TestResultEntailsOnSparseCarrier:
    def test_mask_tier_entailment_matches_per_model_evaluation(self):
        from repro.hardness import sparse_family
        from repro.logic import shards
        from repro.revision import revise

        letters = shards.SHARD_MAX_LETTERS + 4
        workload = sparse_family.build(letters, 10, 8, seed=2)
        result = revise(workload.t_formula, workload.p_formula, "dalal")
        name = sorted(workload.letters)[0]
        for query in (
            parse(f"{name} | ~{name}"),
            parse(f"{name} & ~{name}"),
            Var(name),
            lnot(Var(name)),
        ):
            expected = all(
                query.evaluate(model) for model in result.model_set
            )
            assert result.entails(query) == expected
