"""Tests for the ROBDD package and the Section 7 data-structure interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import FALSE_NODE, TRUE_NODE, Bdd
from repro.compact.datastructure import (
    BddRepresentation,
    bdd_of_formula,
    bdd_of_revision,
)
from repro.logic import FALSE, TRUE, all_interpretations, land, lnot, lor, parse, var
from repro.revision import revise


def brute_models(formula, names):
    return {
        frozenset(m) for m in all_interpretations(names) if formula.evaluate(m)
    }


class TestBddBasics:
    def test_terminals(self):
        bdd = Bdd(["a"])
        assert bdd.from_formula(TRUE) == TRUE_NODE
        assert bdd.from_formula(FALSE) == FALSE_NODE

    def test_single_var(self):
        bdd = Bdd(["a"])
        node = bdd.var("a")
        assert bdd.evaluate(node, {"a"})
        assert not bdd.evaluate(node, set())

    def test_unknown_letter_rejected(self):
        bdd = Bdd(["a"])
        with pytest.raises(ValueError):
            bdd.var("z")
        with pytest.raises(ValueError):
            bdd.restrict(TRUE_NODE, "z", True)

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            Bdd(["a", "a"])

    def test_canonicity_same_function_same_node(self):
        bdd = Bdd(["a", "b"])
        left = bdd.from_formula(parse("a -> b"))
        right = bdd.from_formula(parse("~a | b"))
        assert left == right  # pointer equality == logical equivalence

    def test_canonicity_tautology(self):
        bdd = Bdd(["a", "b"])
        assert bdd.from_formula(parse("a | ~a")) == TRUE_NODE
        assert bdd.from_formula(parse("(a & b) | ~(a & b)")) == TRUE_NODE

    def test_contradiction(self):
        bdd = Bdd(["a"])
        assert bdd.from_formula(parse("a & ~a")) == FALSE_NODE

    def test_node_count_reduction(self):
        # x1 <-> y1 ordered interleaved stays small.
        bdd = Bdd(["x", "y"])
        node = bdd.from_formula(parse("x <-> y"))
        assert bdd.node_count(node) <= 5  # 3 internal + 2 terminals


class TestBddSemantics:
    @pytest.mark.parametrize(
        "text",
        [
            "a & b",
            "a | b & c",
            "(a ^ b) -> c",
            "(a <-> b) & (b <-> c)",
            "~(a & (b | ~c))",
        ],
    )
    def test_evaluate_matches_formula(self, text):
        f = parse(text)
        names = sorted(f.variables())
        bdd = Bdd(names)
        node = bdd.from_formula(f)
        for m in all_interpretations(names):
            assert bdd.evaluate(node, m) == f.evaluate(m), m

    @pytest.mark.parametrize(
        "text,expected",
        [("a & b", 1), ("a | b", 3), ("a ^ b", 2), ("a -> a", 4)],
    )
    def test_count_models(self, text, expected):
        f = parse(text)
        bdd = Bdd(["a", "b"])
        node = bdd.from_formula(f)
        assert bdd.count_models(node) == expected

    def test_count_models_with_skipped_levels(self):
        bdd = Bdd(["a", "b", "c", "d"])
        node = bdd.from_formula(parse("b"))  # levels a, c, d skipped
        assert bdd.count_models(node) == 8

    def test_models_enumeration(self):
        f = parse("a ^ b")
        bdd = Bdd(["a", "b", "c"])
        node = bdd.from_formula(f)
        assert set(bdd.models(node)) == brute_models(f, ["a", "b", "c"])

    def test_restrict(self):
        f = parse("(a & b) | c")
        bdd = Bdd(["a", "b", "c"])
        node = bdd.from_formula(f)
        restricted = bdd.restrict(node, "a", True)
        expected = parse("b | c")
        for m in all_interpretations(["b", "c"]):
            assert bdd.evaluate(restricted, m) == expected.evaluate(m)

    def test_restrict_to_false(self):
        bdd = Bdd(["a", "b"])
        node = bdd.from_formula(parse("a & b"))
        assert bdd.restrict(node, "a", False) == FALSE_NODE

    @given(
        st.lists(
            st.sampled_from(["p", "q", "r", "~p", "~q", "~r"]),
            min_size=1,
            max_size=3,
        ).map(lambda lits: parse(" | ".join(lits)))
    )
    @settings(max_examples=80, deadline=None)
    def test_clause_property(self, f):
        names = ["p", "q", "r"]
        bdd = Bdd(names)
        node = bdd.from_formula(f)
        assert set(bdd.models(node)) == brute_models(f, names)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_3var_function(self, bitmask):
        # Build the function as a DNF of minterms, compile, compare counts.
        names = ["a", "b", "c"]
        minterm_cubes = []
        for i in range(8):
            if bitmask >> i & 1:
                lits = [
                    var(names[j]) if i >> j & 1 else lnot(var(names[j]))
                    for j in range(3)
                ]
                minterm_cubes.append(land(*lits))
        f = lor(*minterm_cubes)
        bdd = Bdd(names)
        node = bdd.from_formula(f)
        assert bdd.count_models(node) == bin(bitmask).count("1")


class TestOrderSensitivity:
    def test_interleaved_vs_separated(self):
        # The classic (x1<->y1) & (x2<->y2) & (x3<->y3): linear with
        # interleaved order, exponential with separated order.
        f = parse("(x1 <-> y1) & (x2 <-> y2) & (x3 <-> y3)")
        interleaved = Bdd(["x1", "y1", "x2", "y2", "x3", "y3"])
        separated = Bdd(["x1", "x2", "x3", "y1", "y2", "y3"])
        small = interleaved.node_count(interleaved.from_formula(f))
        large = separated.node_count(separated.from_formula(f))
        assert small < large


class TestDataStructureRepresentation:
    def test_bdd_of_revision_ask_matches_ground_truth(self):
        t = parse("a & b & c")
        p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
        result = revise(t, p, "dalal")
        rep = bdd_of_revision(result)
        for m in all_interpretations(result.alphabet):
            assert rep.ask(m) == result.satisfies(m)

    def test_size_positive_and_counts(self):
        result = revise(parse("a & b"), parse("~a"), "dalal")
        rep = bdd_of_revision(result)
        assert rep.size() >= 2
        assert rep.count_models() == len(result.model_set)

    def test_order_mismatch_rejected(self):
        result = revise(parse("a & b"), parse("~a"), "dalal")
        with pytest.raises(ValueError):
            bdd_of_revision(result, order=["a", "b", "z"])

    def test_bdd_of_formula(self):
        rep = bdd_of_formula(parse("a -> b"))
        assert rep.ask({"a", "b"})
        assert not rep.ask({"a"})

    def test_ask_is_definition_7_1(self):
        # ASK must agree with the exact semantics for every interpretation
        # of every operator on a fixed instance.
        t = parse("a & b & c")
        p = parse("~a | ~b")
        for name in ("winslett", "forbus", "satoh", "dalal", "weber"):
            result = revise(t, p, name)
            rep = bdd_of_revision(result)
            for m in all_interpretations(result.alphabet):
                assert rep.ask(m) == result.satisfies(m), name
