"""Tests for NNF, distributive CNF and Tseitin conversions."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic import (
    FALSE,
    TRUE,
    Formula,
    all_interpretations,
    clauses_formula,
    is_nnf,
    land,
    lnot,
    lor,
    parse,
    simplify,
    to_cnf_distributive,
    to_nnf,
    tseitin,
    var,
)


def brute_equivalent(f: Formula, g: Formula) -> bool:
    alphabet = sorted(f.variables() | g.variables())
    return all(
        f.evaluate(m) == g.evaluate(m) for m in all_interpretations(alphabet)
    )


# Random formula strategy over a tiny alphabet.
_names = st.sampled_from(["p", "q", "r", "s"])


def _formulas(max_depth: int = 4):
    leaves = st.one_of(
        _names.map(var),
        st.just(TRUE),
        st.just(FALSE),
    )

    def extend(children):
        return st.one_of(
            children.map(lnot),
            st.tuples(children, children).map(lambda t: land(*t)),
            st.tuples(children, children).map(lambda t: lor(*t)),
            st.tuples(children, children).map(lambda t: t[0] >> t[1]),
            st.tuples(children, children).map(lambda t: t[0] ^ t[1]),
        )

    return st.recursive(leaves, extend, max_leaves=8)


class TestNnf:
    def test_simple(self):
        f = parse("~(a & b)")
        nnf = to_nnf(f)
        assert is_nnf(nnf)
        assert brute_equivalent(f, nnf)

    def test_implication_unfolds(self):
        f = parse("a -> b")
        assert to_nnf(f) == parse("~a | b")

    def test_xor_unfolds(self):
        f = parse("a ^ b")
        assert brute_equivalent(f, to_nnf(f))
        assert is_nnf(to_nnf(f))

    def test_nested_negation(self):
        f = parse("~(a -> ~(b <-> c))")
        nnf = to_nnf(f)
        assert is_nnf(nnf)
        assert brute_equivalent(f, nnf)

    @given(_formulas())
    @settings(max_examples=150, deadline=None)
    def test_nnf_equivalent_property(self, f):
        nnf = to_nnf(f)
        assert is_nnf(nnf)
        assert brute_equivalent(f, nnf)


class TestDistributiveCnf:
    def test_already_cnf(self):
        f = parse("(a | b) & c")
        clauses = to_cnf_distributive(f)
        assert brute_equivalent(f, clauses_formula(clauses))

    def test_dnf_input(self):
        f = parse("(a & b) | (c & d)")
        clauses = to_cnf_distributive(f)
        assert brute_equivalent(f, clauses_formula(clauses))

    def test_unsat_input_stays_unsat(self):
        f = parse("a & ~a")
        clauses = to_cnf_distributive(f)
        assert brute_equivalent(f, clauses_formula(clauses))

    def test_false_constant_yields_empty_clause(self):
        assert to_cnf_distributive(FALSE) == [frozenset()]

    def test_valid_yields_no_clauses(self):
        f = parse("a | ~a")
        assert to_cnf_distributive(f) == []

    @given(_formulas())
    @settings(max_examples=100, deadline=None)
    def test_equivalence_property(self, f):
        clauses = to_cnf_distributive(f)
        assert brute_equivalent(f, clauses_formula(clauses))


class TestTseitin:
    def test_query_equivalence_over_original_alphabet(self):
        f = parse("(a ^ b) -> (c <-> a)")
        result = tseitin(f)
        g = result.formula()
        alphabet = sorted(f.variables())
        # Projection of g's models onto the original alphabet equals f's models.
        full_alpha = sorted(g.variables())
        f_models = {
            frozenset(m)
            for m in all_interpretations(alphabet)
            if f.evaluate(m)
        }
        g_models_projected = {
            frozenset(m) & frozenset(alphabet)
            for m in all_interpretations(full_alpha)
            if g.evaluate(m)
        }
        assert f_models == g_models_projected

    def test_aux_functionally_determined(self):
        # Every model of f extends to exactly one model of the translation.
        f = parse("(a & b) | ~c")
        result = tseitin(f)
        g = result.formula()
        alphabet = sorted(f.variables())
        full_alpha = sorted(g.variables())
        extension_counts = {}
        for m in all_interpretations(full_alpha):
            if g.evaluate(m):
                key = frozenset(m) & frozenset(alphabet)
                extension_counts[key] = extension_counts.get(key, 0) + 1
        assert all(count == 1 for count in extension_counts.values())

    def test_linear_size(self):
        # Tseitin of an n-ary xor chain stays linear, unlike distribution.
        parts = var("x0")
        for i in range(1, 12):
            parts = parts ^ var(f"x{i}")
        result = tseitin(parts)
        total_literals = sum(len(c) for c in result.clauses)
        assert total_literals < 2000

    @given(_formulas())
    @settings(max_examples=60, deadline=None)
    def test_equisatisfiable_property(self, f):
        result = tseitin(f)
        g = result.formula()
        f_sat = any(
            f.evaluate(m) for m in all_interpretations(sorted(f.variables()))
        )
        g_sat = any(
            g.evaluate(m) for m in all_interpretations(sorted(g.variables()))
        )
        assert f_sat == g_sat


class TestSimplify:
    def test_idempotence_collapse(self):
        assert simplify(parse("a & a")) == var("a")

    def test_complement_collapse(self):
        assert simplify(parse("a & ~a & b")) == FALSE
        assert simplify(parse("a | ~a | b")) == TRUE

    def test_iff_same(self):
        assert simplify(parse("a <-> a")) == TRUE
        assert simplify(parse("a ^ a")) == FALSE

    @given(_formulas())
    @settings(max_examples=150, deadline=None)
    def test_equivalence_property(self, f):
        assert brute_equivalent(f, simplify(f))
