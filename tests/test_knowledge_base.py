"""Tests for the user-facing KnowledgeBase API."""

import pytest

from repro import KnowledgeBase
from repro.logic import Theory, parse


class TestOfficeScenario:
    """The paper's introductory example, through the public API."""

    def test_revision_concludes_bill(self):
        kb = KnowledgeBase("g | b", operator="dalal")
        kb.revise("~g")
        assert kb.ask("b")
        assert kb.ask("~g")

    def test_update_does_not_conclude_bill(self):
        kb = KnowledgeBase("g | b", operator="winslett")
        kb.revise("~g")
        assert not kb.ask("b")
        assert kb.ask("~g")


class TestPipeline:
    def test_delayed_revisions_accumulate(self):
        kb = KnowledgeBase("a & b & c")
        kb.revise("~a")
        kb.revise("~b")
        assert kb.pending_revisions == (parse("~a"), parse("~b"))
        assert kb.ask("c")
        assert kb.ask("~a & ~b")

    def test_original_theory_preserved(self):
        kb = KnowledgeBase("a & b")
        kb.revise("~a")
        assert kb.theory == Theory([parse("a & b")])

    def test_eager_mode_same_answers(self):
        lazy = KnowledgeBase("a & b & c", operator="satoh")
        eager = KnowledgeBase("a & b & c", operator="satoh", eager=True)
        for update in ("~a", "~b"):
            lazy.revise(update)
            eager.revise(update)
        for query in ("c", "~a", "a | c"):
            assert lazy.ask(query) == eager.ask(query)

    @pytest.mark.parametrize(
        "operator", ["dalal", "weber", "winslett", "borgida", "forbus", "satoh", "widtio"]
    )
    def test_compiled_matches_semantics(self, operator):
        kb = KnowledgeBase("a & b & c", operator=operator)
        kb.revise("~a")
        kb.revise("~b | ~c")
        for query in ("a", "~a", "b | c", "c -> b", "~b"):
            assert kb.ask(query, via="compiled") == kb.ask(query, via="semantics"), (
                operator,
                query,
            )

    def test_compile_returns_representation(self):
        kb = KnowledgeBase("a & b & c", operator="dalal")
        kb.revise("~a")
        rep = kb.compile()
        assert rep.operator == "dalal"
        assert rep.size() > 0
        # Cached on repeat calls.
        assert kb.compile() is rep

    def test_compile_cache_invalidated_by_revision(self):
        kb = KnowledgeBase("a & b", operator="dalal")
        kb.revise("~a")
        first = kb.compile()
        kb.revise("~b")
        assert kb.compile() is not first

    def test_gfuv_not_compilable(self):
        kb = KnowledgeBase(Theory.parse_many("a", "b"), operator="gfuv")
        kb.revise("~b")
        with pytest.raises(ValueError):
            kb.compile()
        # But exact-semantics querying still works.
        assert kb.ask("a")

    def test_compile_without_revisions_rejected(self):
        kb = KnowledgeBase("a", operator="dalal")
        with pytest.raises(ValueError):
            kb.compile()

    def test_ask_before_any_revision(self):
        kb = KnowledgeBase("a & b")
        assert kb.ask("a")
        assert not kb.ask("~b")

    def test_invalid_via_rejected(self):
        kb = KnowledgeBase("a")
        with pytest.raises(ValueError):
            kb.ask("a", via="telepathy")


class TestModelChecking:
    def test_holds_in(self):
        kb = KnowledgeBase("a & b & c", operator="dalal")
        kb.revise("~a")
        assert kb.holds_in({"b", "c"})
        assert not kb.holds_in({"a", "b", "c"})

    def test_models_and_alphabet(self):
        kb = KnowledgeBase("a & b", operator="dalal")
        kb.revise("~a")
        assert kb.models() == frozenset({frozenset({"b"})})
        assert kb.alphabet() == ("a", "b")


class TestOperatorDifferencesThroughApi:
    def test_paper_example_all_operators(self):
        t = "a & b & c"
        p = "(~a & ~b & ~d) | (~c & b & (a ^ d))"
        expected_counts = {
            "winslett": 3,
            "borgida": 3,
            "forbus": 2,
            "satoh": 2,
            "dalal": 1,
            "weber": 4,
        }
        for operator, count in expected_counts.items():
            kb = KnowledgeBase(t, operator=operator)
            kb.revise(p)
            assert len(kb.models()) == count, operator
