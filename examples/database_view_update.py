"""Belief revision as database update: a tiny personnel database.

The paper's introduction traces one motivation to the database community:
updating a database that contains *incomplete* information (null values,
views).  This example models a four-person department as a propositional
theory with integrity constraints and pushes updates through different
operators, showing why the choice matters:

* formula-based WIDTIO deletes cautiously (throws out anything doubtful);
* GFUV keeps all maximal consistent "possible databases" — at exponential
  representation cost;
* model-based Dalal changes a minimal *number* of facts.

Run:  python examples/database_view_update.py
"""

from repro import KnowledgeBase, OPERATORS
from repro.logic import Theory, parse
from repro.revision import possible_worlds


def show(title: str, models) -> None:
    print(f"  {title}")
    for model in sorted(models, key=sorted):
        inside = ", ".join(sorted(model)) or "(empty)"
        print(f"    {{{inside}}}")


def main() -> None:
    # Facts: who is assigned to project x / project y.
    # Constraint: anyone on both projects must be a manager.
    base = Theory.parse_many(
        "alice_x",            # Alice works on project X
        "alice_y",            # ... and on project Y
        "bob_x",              # Bob works on project X
        "alice_x & alice_y -> alice_mgr",  # integrity constraint
        "alice_mgr",          # Alice is a manager
    )

    # The update: an audit reveals Alice is NOT a manager.  Revision treats
    # every belief — integrity constraints included — as up for grabs, so a
    # constraint that must *survive* the repair has to travel inside the new
    # formula P (a classic point in the database-update literature).
    audit = parse("~alice_mgr")
    update = parse("~alice_mgr & (alice_x & alice_y -> alice_mgr)")

    print("Initial database:")
    for member in base:
        print(f"  {member}")
    print(f"\nAudit finding: {audit}")
    print(f"Update with protected constraint: {update}\n")

    # --- formula-based views of the repaired database ----------------------
    worlds = possible_worlds(base, update)
    print(f"GFUV keeps {len(worlds)} possible databases (maximal consistent subsets):")
    for world in worlds:
        print("  " + " | ".join(str(f) for f in world))

    widtio_kb = KnowledgeBase(base, operator="widtio")
    widtio_kb.revise(update)
    print("\nWIDTIO (When In Doubt Throw It Out):")
    print(f"  bob_x still recorded?      {widtio_kb.ask('bob_x')}")
    print(f"  alice_x still recorded?    {widtio_kb.ask('alice_x')}")

    # --- model-based repair -------------------------------------------------
    dalal_kb = KnowledgeBase(base, operator="dalal")
    dalal_kb.revise(update)
    print("\nDalal (change a minimum number of facts):")
    show("repaired database states:", dalal_kb.models())
    print(f"  bob_x survives?            {dalal_kb.ask('bob_x')}")
    print(f"  alice keeps some project?  {dalal_kb.ask('alice_x | alice_y')}")
    print(f"  constraint holds?          "
          f"{dalal_kb.ask('alice_x & alice_y -> alice_mgr')}")

    # Without protection, minimal change simply drops the constraint:
    naive_kb = KnowledgeBase(base, operator="dalal")
    naive_kb.revise(audit)
    print("\nSame repair with the bare audit fact (constraint unprotected):")
    show("repaired database states:", naive_kb.models())
    print(f"  constraint holds?          "
          f"{naive_kb.ask('alice_x & alice_y -> alice_mgr')}")

    # --- compare all model-based operators ---------------------------------
    print("\nModels of the repaired database (protected update), per operator:")
    for name in ("winslett", "borgida", "forbus", "satoh", "dalal", "weber"):
        result = OPERATORS[name].revise(base, update)
        print(f"  {name:9s}: {len(result.model_set)} models")


if __name__ == "__main__":
    main()
