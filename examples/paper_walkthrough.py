"""Walk through every worked example of the paper, printing each result.

Covers:
* Section 2.2.1 — syntax sensitivity of formula-based revision;
* Section 2.2.2 — Tables 1 and 2 and the model sets of all six
  model-based operators;
* Section 4.1/4.2 — the bounded-case example T = a&b&c&d&e, P = ~a|~b;
* Section 5 — iterated Weber with P1 = ~x1|~x2, P2 = ~x5;
* Section 6 — iterated-bounded Winslett with P = ~x1.

Run:  python examples/paper_walkthrough.py
"""

from repro import revise, revise_iterated
from repro.compact import weber_iterated, winslett_bounded_query
from repro.logic import Theory, interp, parse
from repro.revision import delta, k_global, mu, possible_worlds


def fmt(model) -> str:
    return "{" + ", ".join(sorted(model)) + "}"


def main() -> None:
    print("=" * 64)
    print("Section 2.2.1 — formula-based revision is syntax sensitive")
    print("=" * 64)
    p = parse("~b")
    for name, theory in (("T1 = {a, b}", Theory.parse_many("a", "b")),
                         ("T2 = {a, a->b}", Theory.parse_many("a", "a -> b"))):
        worlds = possible_worlds(theory, p)
        result = revise(theory, p, "gfuv")
        print(f"  {name}:  {len(worlds)} possible world(s); "
              f"models of T *GFUV ~b: {[fmt(m) for m in sorted(result.model_set, key=sorted)]}")

    print()
    print("=" * 64)
    print("Section 2.2.2 — the running example (Tables 1 and 2)")
    print("=" * 64)
    t = parse("a & b & c")
    p = parse("(~a & ~b & ~d) | (~c & b & (a ^ d))")
    m1, m2 = interp("abcd"), interp("abc")
    ns = [interp("ab"), interp("c"), interp("bd"), interp("")]
    print("  T = a & b & c        models:", fmt(m1), fmt(m2))
    print("  P =", p)
    print("  models of P:", ", ".join(fmt(n) for n in ns))
    print("\n  Table 1 (symmetric differences) / Table 2 (cardinalities):")
    header = "     " + "".join(f"{fmt(n):>15}" for n in ns)
    print(header)
    for m, label in ((m1, "M1"), (m2, "M2")):
        diffs = "".join(f"{fmt(m ^ n):>15}" for n in ns)
        cards = "".join(f"{len(m ^ n):>15}" for n in ns)
        print(f"  {label} {diffs}")
        print(f"     {cards}")
    print("\n  mu(M1, P) =", [fmt(d) for d in mu(m1, ns)])
    print("  mu(M2, P) =", [fmt(d) for d in mu(m2, ns)])
    print("  delta(T, P) =", [fmt(d) for d in delta([m1, m2], ns)])
    print("  k_{T,P} =", k_global([m1, m2], ns))
    print("\n  Operator results (paper Section 2.2.2):")
    for name in ("winslett", "borgida", "forbus", "satoh", "dalal", "weber"):
        result = revise(t, p, name)
        print(f"    {name:9s}: {[fmt(m) for m in sorted(result.model_set, key=sorted)]}")

    print()
    print("=" * 64)
    print("Sections 4.1 / 4.2 — bounded case: T = a&b&c&d&e, P = ~a|~b")
    print("=" * 64)
    t = parse("a & b & c & d & e")
    p = parse("~a | ~b")
    for name in ("forbus", "satoh", "dalal", "weber"):
        result = revise(t, p, name)
        print(f"  {name:9s}: {[fmt(m) for m in sorted(result.model_set, key=sorted)]}")

    print()
    print("=" * 64)
    print("Section 5 — iterated Weber: P1 = ~x1|~x2, P2 = ~x5")
    print("=" * 64)
    t = parse("x1 & x2 & x3 & x4 & x5")
    updates = [parse("~x1 | ~x2"), parse("~x5")]
    ground = revise_iterated(t, updates, "weber")
    rep = weber_iterated(t, updates)
    print("  ground-truth models:",
          [fmt(m) for m in sorted(ground.model_set, key=sorted)])
    print(f"  formula (10) size: {rep.size()} (|T| + |P1| + |P2| = "
          f"{t.size() + sum(u.size() for u in updates)})")
    print("  projected models match:",
          rep.projected_models() == ground.model_set)

    print()
    print("=" * 64)
    print("Section 6 — bounded iterated Winslett: P = ~x1")
    print("=" * 64)
    p = parse("~x1")
    ground = revise_iterated(t, [p], "winslett")
    rep = winslett_bounded_query(t, p)
    print("  ground-truth models:",
          [fmt(m) for m in sorted(ground.model_set, key=sorted)])
    print(f"  formula (12) size: {rep.size()}, new letters: {rep.new_letter_count()}")
    print("  projected models match:",
          rep.projected_models() == ground.model_set)


if __name__ == "__main__":
    main()
