"""Regenerate the YES cells of Tables 3 and 4 from live code.

For every operator and every (bounded?, equivalence, iterated?) coordinate
with a positive result, this script builds the corresponding construction on
a sample instance, certifies it against ground truth by model enumeration,
and reports its size.  NO cells are annotated with the reduction family that
rules them out (measured separately by the blow-up benchmarks).

Run:  python examples/compactability_survey.py
"""

from repro.compact import (
    BOUNDED_CONSTRUCTIONS,
    bounded_iterated,
    dalal_compact,
    dalal_iterated,
    is_logically_equivalent_to,
    is_query_equivalent_to,
    weber_compact,
    weber_iterated,
    widtio_compact,
    widtio_iterated,
)
from repro.logic import Theory, parse
from repro.revision import get_operator, revise, revise_iterated

T_TEXT = "a & b & c & d"
P_TEXT = "~a | ~b"
UPDATES = ["~a | ~b", "~c"]


def check(flag: bool) -> str:
    return "ok" if flag else "MISMATCH"


def main() -> None:
    t = parse(T_TEXT)
    p = parse(P_TEXT)
    updates = [parse(u) for u in UPDATES]

    print(f"Sample instance: T = {T_TEXT},  P = {P_TEXT},  updates = {UPDATES}")
    print()
    print("Table 3 (single revision) — YES cells, certified live:")
    print(f"  {'operator':9s} {'case':22s} {'equiv':8s} {'size':>5s}  verified")

    # General case, query equivalence: Dalal (Thm 3.4), Weber (Thm 3.5),
    # WIDTIO (trivial, logical even).
    rep = dalal_compact(t, p)
    ok = is_query_equivalent_to(rep, revise(t, p, "dalal"))
    print(f"  {'dalal':9s} {'general':22s} {'query':8s} {rep.size():>5d}  {check(ok)}")

    rep = weber_compact(t, p)
    ok = is_query_equivalent_to(rep, revise(t, p, "weber"))
    print(f"  {'weber':9s} {'general':22s} {'query':8s} {rep.size():>5d}  {check(ok)}")

    widtio_theory = Theory.parse_many("a", "b", "c", "d")
    rep = widtio_compact(widtio_theory, p)
    ok = is_logically_equivalent_to(rep, revise(widtio_theory, p, "widtio"))
    print(f"  {'widtio':9s} {'general':22s} {'logical':8s} {rep.size():>5d}  {check(ok)}")

    # Bounded case, logical equivalence: all six model-based operators.
    for name in sorted(BOUNDED_CONSTRUCTIONS):
        rep = BOUNDED_CONSTRUCTIONS[name](t, p)
        ok = is_logically_equivalent_to(rep, revise(t, p, name))
        print(f"  {name:9s} {'bounded':22s} {'logical':8s} {rep.size():>5d}  {check(ok)}")

    print("\n  NO cells (single revision): GFUV/Nebel (Thm 3.1 family, any case);")
    print("  Winslett/Borgida/Satoh (Thm 3.2) and Forbus (Thm 3.3), general case;")
    print("  Dalal/Weber general-case *logical* equivalence (Thm 3.6 family).")

    print()
    print("Table 4 (iterated revision) — YES cells, certified live:")
    print(f"  {'operator':9s} {'case':22s} {'equiv':8s} {'size':>5s}  verified")

    rep = dalal_iterated(t, updates)
    ok = is_query_equivalent_to(rep, revise_iterated(t, updates, "dalal"))
    print(f"  {'dalal':9s} {'iterated general':22s} {'query':8s} {rep.size():>5d}  {check(ok)}")

    rep = weber_iterated(t, updates)
    ok = is_query_equivalent_to(rep, revise_iterated(t, updates, "weber"))
    print(f"  {'weber':9s} {'iterated general':22s} {'query':8s} {rep.size():>5d}  {check(ok)}")

    for name in ("winslett", "borgida", "forbus", "satoh"):
        rep = bounded_iterated(name, t, updates)
        ok = is_query_equivalent_to(rep, revise_iterated(t, updates, name))
        print(
            f"  {name:9s} {'iterated bounded':22s} {'query':8s} {rep.size():>5d}  {check(ok)}"
        )

    rep = widtio_iterated(widtio_theory, updates)
    ground = get_operator("widtio").iterate(widtio_theory, updates)
    ok = rep.projected_models() == ground.model_set
    print(f"  {'widtio':9s} {'iterated':22s} {'logical':8s} {rep.size():>5d}  {check(ok)}")

    print("\n  NO cells (iterated): all six model-based operators under *logical*")
    print("  equivalence (Thm 6.5 family); GFUV/Nebel everywhere (Thm 4.1).")


if __name__ == "__main__":
    main()
