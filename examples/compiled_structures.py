"""Beyond formulas: revised knowledge bases as data structures.

Section 7 of the paper generalises compactability to *any* data structure
with polynomial-time model checking (Definition 7.1's ``ASK``).  This
example compiles a revised knowledge base three ways and compares them:

1. the exact model set (ground truth),
2. an ROBDD — canonical per variable order, one-path ``ASK``,
3. a Horn least upper bound — the Kautz–Selman approximate compilation the
   paper's Section 2.3 discusses (weaker, but Horn ⇒ fast unit-propagation
   reasoning).

Run:  python examples/compiled_structures.py
"""

from repro.approx import horn_lub_formula, is_intersection_closed
from repro.compact.datastructure import bdd_of_revision
from repro.logic import parse
from repro.revision import revise
from repro.sat import entails


def main() -> None:
    t = parse("a & b & c & d")
    p = parse("(~a & ~b) | (~c & (a ^ d))")
    result = revise(t, p, "dalal")

    print(f"T = {t}")
    print(f"P = {p}")
    print("\nGround truth (Dalal):")
    for model in sorted(result.model_set, key=sorted):
        print("  {" + ", ".join(sorted(model)) + "}")

    # --- ROBDD: Definition 7.1's (D, ASK) pair --------------------------------
    rep = bdd_of_revision(result)
    print(f"\nROBDD over order {result.alphabet}:")
    print(f"  nodes          : {rep.size()}")
    print(f"  models (count) : {rep.count_models()}")
    print(f"  ASK({{b, d}})    : {rep.ask({'b', 'd'})}")
    print(f"  ASK({{a,b,c,d}}) : {rep.ask({'a', 'b', 'c', 'd'})}")

    # --- Horn upper bound -------------------------------------------------------
    closed = is_intersection_closed(result.model_set)
    print(f"\nIs the revised base Horn-representable? {closed}")
    lub = horn_lub_formula(result.model_set, result.alphabet)
    print(f"Horn LUB: {lub}")
    print(f"  revised base |= LUB : {entails(result.formula(), lub)}")
    print(f"  LUB |= revised base : {entails(lub, result.formula())}")
    print(
        "\nThe LUB is a sound weakening: every query it proves holds in the"
        "\nrevised base, at Horn (unit-propagation) reasoning cost — the"
        "\napproximate-compilation trade-off of Section 2.3."
    )


if __name__ == "__main__":
    main()
