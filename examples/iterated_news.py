"""Iterated revision: a stream of news bulletins about a power grid.

A monitoring station believes all four substations are up.  Bulletins
arrive one at a time; each is a small formula (the bounded-|P| case of the
paper).  The example demonstrates the engineering moral of Section 8:

* delay incorporation, keep the whole bulletin sequence;
* compile once with the *iterated* constructions (Theorem 5.1 / formulas
  (10), (16)) — whose size grows linearly in the number of bulletins —
  instead of re-applying the single-step construction m times (exponential).

Run:  python examples/iterated_news.py
"""

from repro import KnowledgeBase
from repro.compact import dalal_iterated, weber_iterated
from repro.logic import parse


BULLETINS = [
    "~s1 | ~s2",        # fault somewhere in the northern pair
    "~s3",              # substation 3 confirmed down
    "s1 | s3",          # at least one of 1, 3 back online
    "~s2 | ~s4",        # overload in the southern pair
]


def main() -> None:
    initial = "s1 & s2 & s3 & s4"

    print("Initial belief: all substations up:", initial)
    print()

    kb = KnowledgeBase(initial, operator="dalal")
    for i, bulletin in enumerate(BULLETINS, start=1):
        kb.revise(bulletin)
        print(f"Bulletin {i}: {bulletin}")

    print("\nAfter all bulletins (Dalal, exact semantics):")
    for model in sorted(kb.models(), key=sorted):
        up = ", ".join(sorted(model)) or "(none)"
        print(f"  up: {up}")

    print("\nQueries:")
    for query in ("s4", "~s3", "s1 | s2"):
        print(f"  {query:8s} -> {kb.ask(query)}")

    # --- the size story -----------------------------------------------------
    print("\nSize of the compiled representation vs number of bulletins:")
    print(f"  {'m':>2} {'Dalal Φ_m':>10} {'Weber (10)':>10} {'explicit':>9}")
    t = parse(initial)
    for m in range(1, len(BULLETINS) + 1):
        updates = [parse(b) for b in BULLETINS[:m]]
        phi = dalal_iterated(t, updates)
        web = weber_iterated(t, updates)
        snapshot = KnowledgeBase(initial, operator="dalal")
        for b in BULLETINS[:m]:
            snapshot.revise(b)
        explicit = snapshot._semantics().formula().size()
        print(f"  {m:>2} {phi.size():>10} {web.size():>10} {explicit:>9}")

    print(
        "\nΦ_m grows linearly in m (one alphabet copy + one distance circuit"
        "\nper bulletin); the naive m-fold single-step construction would"
        "\nmultiply instead (Section 5)."
    )


if __name__ == "__main__":
    main()
