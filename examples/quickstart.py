"""Quickstart: the office scenario from the paper's introduction.

George and Bill share an office.  Walking down the corridor you hear a voice
from the office; just beyond the corner you meet George.  Was it Bill you
heard?  *Revision* says yes; *update* says "no evidence" — the two families
of operators the paper classifies.

Run:  python examples/quickstart.py
"""

from repro import KnowledgeBase, revise
from repro.logic import parse


def main() -> None:
    # --- revision: the observation corrects our beliefs -------------------
    # T = g | b  ("I heard someone: George or Bill is in")
    # P = ~g     ("George is out here in the corridor")
    kb = KnowledgeBase("g | b", operator="dalal")
    kb.revise("~g")
    print("Revision (Dalal):")
    print(f"  Was Bill in the office?   kb.ask('b')  -> {kb.ask('b')}")
    print(f"  Models: {sorted(sorted(m) for m in kb.models())}")

    # --- update: the world may have changed -------------------------------
    # Same T and P, but George *left the room* between the two observations:
    # the voice may have been George's, so Bill's presence is unknown.
    kb = KnowledgeBase("g | b", operator="winslett")
    kb.revise("~g")
    print("\nUpdate (Winslett):")
    print(f"  Was Bill in the office?   kb.ask('b')  -> {kb.ask('b')}")
    print(f"  Models: {sorted(sorted(m) for m in kb.models())}")

    # --- the size question the paper asks ---------------------------------
    # Compile the revised base to a propositional formula T' (offline), then
    # answer queries against T' (online) — the two-subtask split.
    kb = KnowledgeBase("a & b & c & d & e", operator="dalal")
    kb.revise("~a | ~b")
    representation = kb.compile()
    print("\nCompiled representation (Theorem 3.4):")
    print(f"  operator     = {representation.operator}")
    print(f"  equivalence  = {representation.equivalence}")
    print(f"  |T'|         = {representation.size()} variable occurrences")
    print(f"  new letters  = {representation.new_letter_count()}")
    print(f"  T' |= c      -> {representation.entails(parse('c'))}")
    print(f"  T' |= a & b  -> {representation.entails(parse('a & b'))}")

    # --- one-shot functional style -----------------------------------------
    result = revise("a & b & c", "(~a & ~b & ~d) | (~c & b & (a ^ d))", "forbus")
    print("\nOne-shot revise() with Forbus on the paper's running example:")
    print(f"  models: {sorted(sorted(m) for m in result.model_set)}")

    # --- batched revision: the serving-layer unit --------------------------
    # A server does not revise once: it drains a queue of (T, P) pairs in
    # which the same KBs and the same updates recur.  revise_many() answers
    # a whole batch while compiling every distinct theory and update once
    # (results are exactly those of per-pair revise(), in order).
    from repro.revision import revise_many

    offices = ["g | b", "g & ~b", "~g | ~b"]          # three office KBs ...
    observation = "~g"                                 # ... one observation
    batch = revise_many(
        [(kb_text, observation) for kb_text in offices], operator="dalal"
    )
    print("\nBatched revision (revise_many, shared compilation):")
    for kb_text, revised in zip(offices, batch):
        models = sorted(sorted(m) for m in revised.model_set)
        print(f"  {kb_text!r} * {observation!r}  ->  {models}")

    # --- warm KBs and multi-operator batches -------------------------------
    # A serving loop that knows its hot KBs warms them before draining:
    # warm() compiles the theory's truth table once, on whichever engine
    # tier fits the alphabet, and every operator in the batch reuses it.
    # Passing a *list* of operators revises each pair under all of them
    # against that one compiled table.
    from repro.revision import BatchCache

    cache = BatchCache()
    cache.warm("g | b")
    per_pair = revise_many(
        [("g | b", observation)], operator=["dalal", "winslett"], cache=cache
    )
    print("\nWarm path + multi-operator batch (one compiled table of T):")
    for result in per_pair[0]:
        models = sorted(sorted(m) for m in result.model_set)
        print(f"  {result.operator_name:<8} -> {models}")

    # --- scaling knobs: sharded tier and the parallel fan-out --------------
    # Past the big-int cutoff (20 letters) model sets live on sharded
    # truth tables, up to shards.SHARD_MAX_LETTERS (26 by default; env
    # REPRO_SHARD_MAX_LETTERS overrides, and every cutoff is read live).
    # There the pointwise operators (winslett/forbus/borgida) batch their
    # per-T-model work into multi-model kernels, fanned out over workers:
    #
    #   REPRO_PARALLEL=8          # worker count (threads on the numpy
    #                             # backend, processes on the pure-int
    #                             # fallback); unset = auto at 22+ letters
    #   REPRO_PARALLEL_BLOCK=16   # T-models per batched block (unset =
    #                             # sized to a 16 MiB block buffer)
    #   REPRO_POINTWISE_BATCH=0   # per-model reference path (debugging /
    #                             # benchmarking only)
    #
    # Leave the knobs unset on small alphabets: below ~22 letters the
    # fan-out overhead outweighs the work.
    from repro.logic import shards

    print("\nEngine tiers and parallel knobs:")
    print(f"  shard-tier cutoff : {shards.SHARD_MAX_LETTERS} letters")
    print(f"  tier at 23 letters: {shards.tier(23)!r}")
    print(f"  parallel workers  : {shards.parallel_workers()} (auto)")

    # --- the sparse tier: past the cutoff, density is what matters --------
    # Beyond shards.SHARD_MAX_LETTERS no truth table fits in memory — but a
    # serving-shaped KB (a large schema with few admissible states) doesn't
    # need one.  The fourth engine tier stores just the models, as a
    # sorted mask array, and every selection rule runs in time proportional
    # to the *model count*, not to 2^n.  Dispatch is automatic: feed
    # shards.tier() a model-count bound (the operators do it for you) and
    # bounded-density sets past the cutoff land on the sparse tier.
    #
    #   REPRO_SPARSE_MAX_MODELS=1048576  # density budget: carriers and
    #                                    # intermediates above it spill to
    #                                    # the SAT mask loops (identical
    #                                    # results, no bound)
    #   REPRO_SPARSE_MIN_LETTERS=21      # optionally serve sparse below
    #                                    # the shard cutoff too
    #   REPRO_SPARSE_TIER=0              # disable the tier entirely
    #
    # A 40-letter revision — twice the sharded cutoff, unthinkable on any
    # bitplane (2^40 bits), instant on the sparse carrier:
    from repro.hardness import sparse_family

    workload = sparse_family.build(40, t_cubes=24, p_cubes=16, seed=0)
    result = revise(workload.t_formula, workload.p_formula, "dalal")
    print("\nSparse tier at 40 letters (24 x 16 models, exact semantics):")
    print(f"  tier used    : {result.engine_tier}")
    print(f"  result models: {result.model_count()}")
    print(f"  tier at 40 letters, 1000 models: {shards.tier(40, 1000)!r}")
    print(f"  tier at 40 letters, no bound   : {shards.tier(40)!r}")

    # --- the enumeration path: incremental AllSAT ---------------------------
    # Past the bitplane cutoffs the model sets themselves come out of a
    # SAT solver.  Since PR 5 that is the *incremental* enumerator of
    # repro.sat.allsat: one solver per enumeration, resumed after each
    # model (no blocking clauses, no quadratic restart cost), emitting
    # *cubes* — partial models whose don't-care letters cover 2^k total
    # models — straight into the sparse tier's mask carrier.  Since PR 6
    # the solver underneath is a CDCL search: first-UIP clause learning,
    # VSIDS branching, Luby restarts (gated off during enumeration so
    # the cube stream stays duplicate-free) and learned-clause DB
    # reduction — on clause-heavy CNF shapes the "no further models"
    # proof is where chronological search pays exponentially.  Knobs:
    #
    #   REPRO_ALLSAT=0             # back to the blocking-clause loop
    #                              # (A/B timing, parity checking)
    #   REPRO_ALLSAT_CUBES=0       # disable cube generalization
    #   REPRO_ALLSAT_COMPONENTS=0  # disable component splitting
    #   REPRO_CDCL=0               # back to the chronological PR 5
    #                              # search (learning/VSIDS/restarts off;
    #                              # model sets identical either way)
    #   REPRO_ALLSAT_PARALLEL=0    # disable the process fan-out that
    #                              # enumerates independent components
    #                              # (and, for one big component,
    #                              # disjoint decision-prefix subtrees)
    #                              # over REPRO_PARALLEL workers; any
    #                              # worker count yields bit-identical
    #                              # masks, only the cube partition and
    #                              # wall-clock change
    #
    # The same machinery answers model counting on the cubes (sum of
    # 2^k, nothing materialised) and, in BatchCache, compiles a drifting
    # update stream incrementally: the previous P's carrier is
    # re-checked against the new P and only the delta (new & ~old) is
    # enumerated, under assumptions (REPRO_INCREMENTAL_CARRIER=0
    # disables).  Queries against mask-tier results run on the carrier
    # too: RevisionResult.entails evaluates the query formula once per
    # node, vectorised over the model rows.
    from repro.sat import allsat

    print("\nIncremental AllSAT enumeration:")
    print(f"  enumerations : {allsat.STATS['enumerations']}")
    print(f"  solver resumes per model set: see allsat.STATS "
          f"(cubes {allsat.STATS['cubes']}, models {allsat.STATS['models']})")
    print(f"  CDCL observability: conflicts {allsat.STATS['conflicts']}, "
          f"learned {allsat.STATS['learned']}, "
          f"restarts {allsat.STATS['restarts']}, "
          f"max backjump {allsat.STATS['max_backjump']}")
    print(f"  result entails its own first letter? "
          f"{result.entails(sorted(workload.letters)[0])}")

    # --- resource governance: budgets, deadlines, degradation ---------------
    # A serving layer cannot sit on an engine whose only failure mode is
    # an unhandled exception.  repro.runtime gives every hot loop a
    # cooperative contract:
    #
    #   with runtime.Budget(deadline=0.5):        # wall-clock seconds
    #       ...                                   # raises EngineTimeout
    #   with runtime.Budget(max_models=10_000):   # cumulative model cap
    #       ...                                   # raises BudgetExceeded
    #   with runtime.Budget(max_words=1 << 24):   # per-allocation cap
    #       ...                                   # raises MemoryBudgetExceeded
    #
    # Deadlines and cancellation (Budget.cancel()) land at checkpoints
    # polled by the CDCL search loop (every 64 decisions/conflicts), the
    # cube stream (every cube), the blocked table kernels (every block)
    # and the batch driver (every pair) — and the interrupted operation
    # stays *resumable*: re-enter a CubeStream's cubes() and it continues
    # exactly where the raise landed, duplicate-free and lossless.
    #
    # MemoryBudgetExceeded is-a MemoryError on purpose: a tier that
    # overflows its budget *degrades* instead of crashing, one rung down
    # the chain documented on shards.tier() —
    #
    #   sharded compile OOM -> sparse (if the density bound fits) -> masks
    #   sparse spill        -> dense bound-free tier             -> masks
    #   table OOM           -> masks
    #
    # — with bit-identical results on every rung and each hop counted in
    # runtime.STATS (plus per-edge "demotions:<from>-><to>" keys) and the
    # batch layer's tier_counts.  Process fan-outs survive dead workers
    # too: the crashed worker's range is re-run inline (masks identical
    # for any crash pattern), and while a deadline governs, fan-out is
    # disabled outright — children cannot observe the parent's checkpoints.
    #
    # All of it is testable on demand via the deterministic fault registry:
    #
    #   REPRO_FAULTS="worker-crash@1"            # kill the 1st pool job
    #   REPRO_FAULTS="alloc-oom@3"               # fail the 3rd allocation
    #   REPRO_FAULTS="shard-compile-oom@1"       # OOM the 1st shard compile
    #   REPRO_FAULTS="propagate-delay@5:0.01"    # slow the 5th propagate
    #   REPRO_FAULTS="seed=7;worker-crash@r"     # seeded random occurrence
    #
    from repro import runtime

    with runtime.Budget(deadline=30.0, max_models=1 << 20) as budget:
        governed = revise(workload.t_formula, workload.p_formula, "winslett")
    print("\nResource governance (repro.runtime):")
    print(f"  governed result models : {governed.model_count()}")
    print(f"  models charged         : {budget.models_charged}")
    print(f"  checkpoints served     : {runtime.STATS['checkpoints']}")
    print(f"  demotions (this run)   : {runtime.STATS['demotions']}")

    # --- persistence: the crash-safe artifact store --------------------------
    # Everything above dies with the process: BatchCache's compiled
    # carriers, the incremental-carrier LRU, the warm state a serving
    # loop paid SAT enumeration for.  repro.store makes the expensive
    # carriers durable — point REPRO_STORE at a directory and the engine
    # runs a second-level cache behind the in-memory one:
    #
    #   REPRO_STORE=/var/cache/repro        # enables the store (read live)
    #   REPRO_STORE_MAX_BYTES=1073741824    # byte budget (default 1 GiB);
    #                                       # eviction keys on hit recency
    #
    # BatchCache.warm() *publishes* the carrier it just compiled (crash-
    # safe: temp file + fsync + atomic rename, under an advisory lock),
    # and BatchCache.bit_models() *probes* disk before paying SAT
    # enumeration or a bitplane compile.  Reads are mmap-backed and, for
    # sparse carriers, zero-copy — forked pool workers share the pages.
    #
    # Cold start vs warm restart, concretely:
    #
    #   os.environ["REPRO_STORE"] = "/var/cache/repro"
    #   cache = BatchCache()
    #   cache.warm(kb_formula)          # cold: SAT enumeration + publish
    #   # ... the process dies, restarts ...
    #   cache = BatchCache()            # fresh process, same REPRO_STORE
    #   cache.warm(kb_formula)          # warm: disk hit, no enumeration,
    #                                   # masks bit-identical to the cold run
    #
    # Correctness never depends on the disk: every read checksums the
    # payload and a mismatch quarantines the file (counted in
    # runtime.STATS["store-corrupt"] and tier_counts["store-corrupt"])
    # and falls through to recompile-from-source; torn writes from
    # crashed processes are swept at startup.  The fault registry covers
    # the I/O paths too:
    #
    #   REPRO_FAULTS="store-torn-write@1"   # crash the 1st publish mid-write
    #   REPRO_FAULTS="store-bit-flip@1"     # corrupt the 1st published payload
    #   REPRO_FAULTS="store-fsync-fail@1"   # fail the 1st fsync cleanly
    #
    # Inspect and maintain a store from the CLI:
    #
    #   python -m repro store ls --dir /var/cache/repro      # key/size/age/hits
    #   python -m repro store verify --dir /var/cache/repro  # checksum sweep
    #   python -m repro store gc --dir /var/cache/repro      # drop to budget
    #
    # (Counter hygiene for tests and benches: runtime.STATS.reset() and
    # BatchCache.reset_counters() zero the meters without dropping state.)
    import os as _os
    import tempfile as _tempfile

    from repro import store as repro_store
    from repro.revision.batch import BatchCache

    with _tempfile.TemporaryDirectory() as store_dir:
        _os.environ["REPRO_STORE"] = store_dir
        try:
            cold_cache = BatchCache()
            cold_bits = cold_cache.warm(workload.t_formula)
            repro_store.reset_active()  # simulate the restart
            warm_cache = BatchCache()
            warm_bits = warm_cache.warm(workload.t_formula)
            print("\nPersistent artifact store (repro.store):")
            print(f"  artifacts published    : "
                  f"{cold_cache.tier_counts['store-put']}")
            print(f"  disk hits after restart: "
                  f"{warm_cache.tier_counts['store-hit']}")
            print(f"  masks bit-identical    : "
                  f"{sorted(warm_bits.iter_masks()) == sorted(cold_bits.iter_masks())}")
        finally:
            del _os.environ["REPRO_STORE"]
            repro_store.reset_active()

    # ----------------------------------------------------------------
    # Observability: one registry, nested spans, cross-process traces
    # ----------------------------------------------------------------
    #
    # Everything the engine counts flows through one thread-safe
    # metrics registry (repro.obs.REGISTRY), keyed by dotted names:
    #
    #   runtime.*     governance (checkpoints, budget trips, demotions,
    #                 worker crashes) — behind repro.runtime.STATS
    #   allsat.*      solver counters (conflicts, propagations, learned
    #                 clauses, cubes, models) — behind allsat.STATS
    #   faults.*      injected-fault counts — behind faults.STATS
    #   batch.tier.*  which tier served each revision — mirrored from
    #                 BatchCache.tier_counts
    #   store.*       artifact-store traffic — mirrored from
    #                 ArtifactStore.stats
    #   span.<name>.s log-scale latency histograms, fed on span exit
    #                 (only while tracing is on)
    #
    # The historical counter bags still work exactly as before — they
    # are views over the registry now — and repro.obs.reset() zeroes
    # everything in one call, including deltas merged back from pool
    # workers (each worker ships its counter deltas home with its
    # result, so parallel runs read as if they ran inline).
    #
    # Dump the registry from the CLI (text, JSON, or Prometheus
    # exposition; the `--` form runs a command first in-process):
    #
    #   python -m repro stats
    #   python -m repro stats --format prom -- revise -o dalal "g|b" "~g"
    #
    # Tracing: set REPRO_TRACE=<path> and every hot-path stage — tier
    # dispatch, table/sparse compiles, SAT enumeration, pointwise
    # kernels, store probe/publish, the batch driver — appends nested
    # B/E span events to that JSONL file, pool workers included (their
    # spans are buffered, shipped back, and re-parented under the
    # parent's span, so `repro trace show` renders one tree):
    #
    #   REPRO_TRACE=/tmp/trace.jsonl python -m repro revise "g|b" "~g"
    #   python -m repro trace show /tmp/trace.jsonl
    #
    # The rendering shows per-span total/self milliseconds, the serving
    # tier of each revise, and a per-tier time rollup — the fastest way
    # to answer "where did that batch spend its time, and on which
    # tier".  With REPRO_TRACE unset, span() is a shared no-op and the
    # registry records nothing trace-related: the hot path stays at
    # noise-level overhead (the pr9-telemetry bench leg measures it).
    from repro import obs as repro_obs

    repro_obs.reset()
    revise(workload.t_formula, workload.p_formula, operator="dalal")
    fired = {
        name: value
        for name, value in repro_obs.REGISTRY.counters().items()
        if value and name.startswith(("allsat.", "runtime."))
    }
    print("\nTelemetry (repro stats view, non-zero engine counters):")
    for name in sorted(fired)[:6]:
        print(f"  {name:32s} {fired[name]}")

    # ----------------------------------------------------------------
    # Serving: the resilient revision service
    # ----------------------------------------------------------------
    #
    # repro.service turns the batch engine into a long-lived service: a
    # supervisor owns worker processes (heartbeat liveness, hung workers
    # killed, dead ones restarted with bounded backoff), and an asyncio
    # front-end accepts revise/query/warm requests with per-request
    # deadlines mapped onto repro.runtime.Budget inside the worker.
    # Because a request frame is a pure description (KB name, formula
    # strings, operator), a request whose worker crashes is simply
    # retried on another worker and the answer is bit-identical — the
    # retry/restart/shed/hedge counters under service.* are the only
    # trace the failure leaves.  Admission control sheds with a typed
    # response when the bounded queue fills, per-KB round-robin keeps a
    # hot KB from starving the rest, a circuit breaker marks a KB
    # "poisoned" after N consecutive worker deaths on one request, and
    # over-pressure requests are served one engine tier down (the
    # response says so in engine_tier/degraded).
    #
    # The same loop is scriptable from the CLI — JSONL requests in,
    # JSONL responses out, counters on stderr:
    #
    #   echo '{"kb": "fleet", "theory": "g | b", "updates": ["~g"]}' \
    #     | python -m repro serve --workers 2
    from repro.service import RevisionService, ServiceClient

    with RevisionService(workers=2) as service:
        client = ServiceClient(service, timeout=60)
        revised = client.revise("fleet", "g | b", ("~g",))
        entails = client.query("fleet", "g | b", ("~g",), query="b")
        print("\nRevision service (supervised workers, deadlines, retry):")
        print(f"  revise status/tier : {revised.status} "
              f"[{revised.engine_tier}] pid={revised.worker_pid}")
        print(f"  masks              : {revised.masks} "
              f"over {revised.letters}")
        print(f"  query b after ~g   : entailed={entails.entailed}")
    service_counters = {
        name: value
        for name, value in repro_obs.REGISTRY.counters().items()
        if value and name.startswith("service.")
    }
    for name in sorted(service_counters)[:4]:
        print(f"  {name:32s} {service_counters[name]}")


if __name__ == "__main__":
    main()
