"""Counting circuits rendered as propositional formulas.

The star of the show is :func:`repro.circuits.exa.exa` — the polynomial-size
``EXA(k, X, Y, W)`` exact-Hamming-distance formula of Theorem 3.4.
"""

from .builder import CircuitBuilder, const_bits
from .cardinality import at_least, at_most, exactly, exactly_pairwise
from .exa import atmost, distance_bits, distance_less_than, exa, exa_plain

__all__ = [
    "CircuitBuilder",
    "at_least",
    "at_most",
    "atmost",
    "const_bits",
    "distance_bits",
    "distance_less_than",
    "exa",
    "exa_plain",
    "exactly",
    "exactly_pairwise",
]
