"""Cardinality constraints over letter sets.

Built on the same counter circuitry as :mod:`repro.circuits.exa`.  These are
used by tests (independent cross-checks of the EXA semantics) and by the
workload generators in the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..logic.formula import FALSE, TRUE, Formula, Var, land, lnot, lor
from .builder import CircuitBuilder


def _wires(builder: CircuitBuilder, letters: Sequence[str]) -> List[Formula]:
    return [Var(name) for name in letters]


def exactly(k: int, letters: Sequence[str], prefix: str = "_card") -> Formula:
    """Exactly ``k`` of ``letters`` are true (circuit encoding, aux letters)."""
    if k < 0 or k > len(letters):
        return FALSE
    builder = CircuitBuilder(prefix=prefix, avoid=letters)
    count = builder.popcount(_wires(builder, letters))
    return land(builder.definitions(), builder.equals_const(count, k))


def at_most(k: int, letters: Sequence[str], prefix: str = "_card") -> Formula:
    """At most ``k`` of ``letters`` are true."""
    if k < 0:
        return FALSE
    if k >= len(letters):
        return TRUE
    builder = CircuitBuilder(prefix=prefix, avoid=letters)
    count = builder.popcount(_wires(builder, letters))
    return land(builder.definitions(), builder.less_than_const(count, k + 1))


def at_least(k: int, letters: Sequence[str], prefix: str = "_card") -> Formula:
    """At least ``k`` of ``letters`` are true."""
    if k <= 0:
        return TRUE
    if k > len(letters):
        return FALSE
    builder = CircuitBuilder(prefix=prefix, avoid=letters)
    count = builder.popcount(_wires(builder, letters))
    return land(builder.definitions(), lnot(builder.less_than_const(count, k)))


def exactly_pairwise(k: int, letters: Sequence[str]) -> Formula:
    """Auxiliary-free exactly-``k`` by subset enumeration (exponential).

    Kept as an independent oracle for tests and the size-ablation bench.
    """
    from itertools import combinations

    if k < 0 or k > len(letters):
        return FALSE
    options: List[Formula] = []
    for chosen in combinations(letters, k):
        chosen_set = set(chosen)
        parts = [
            Var(name) if name in chosen_set else lnot(Var(name))
            for name in letters
        ]
        options.append(land(*parts))
    return lor(*options)
