"""The ``EXA(k, X, Y, W)`` exact-Hamming-distance formula (Theorem 3.4).

``exa(k, xs, ys)`` returns a propositional formula over ``X ∪ Y ∪ W`` (the
``W`` being fresh functionally-defined circuit wires) which is satisfiable
with a given assignment to ``X ∪ Y`` iff the Hamming distance between the
``X``-part and the ``Y``-part is exactly ``k`` — and in that case the
extension to ``W`` is unique.

Two additional comparison modes (:func:`atmost`, :func:`distance_bits`) are
provided for the iterated/bounded constructions (formula (14) needs a
``DIST(·,·,·) < DIST(·,·,·)`` comparison).

A deliberately naive, auxiliary-letter-free variant :func:`exa_plain` is
included for the ablation benchmark: it enumerates the ``C(n,k)`` subsets and
blows up combinatorially, illustrating why Theorem 3.4 needs the circuit.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

from ..logic.formula import Formula, Var, iff, land, lnot, lor, xor
from .builder import CircuitBuilder


def _check_pairing(xs: Sequence[str], ys: Sequence[str]) -> None:
    if len(xs) != len(ys):
        raise ValueError("X and Y must have the same cardinality")
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("letter lists must not repeat")
    if set(xs) & set(ys):
        raise ValueError("X and Y must be disjoint")


def distance_bits(
    builder: CircuitBuilder, xs: Sequence[str], ys: Sequence[str]
) -> List[Formula]:
    """Wire vector (little-endian) carrying the Hamming distance X vs Y."""
    _check_pairing(xs, ys)
    diffs = [builder.wire(xor(Var(x), Var(y))) for x, y in zip(xs, ys)]
    return builder.popcount(diffs)


def exa(
    k: int,
    xs: Sequence[str],
    ys: Sequence[str],
    prefix: str = "_exa",
) -> Formula:
    """``EXA(k, X, Y, W)``: true iff dist(X, Y) = k exactly.

    The returned formula is ``definitions(W) ∧ (count = k)``; its size is
    polynomial (O(n) gates for the counter, O(log n) for the comparison),
    matching the paper's size analysis in Section 3.1.
    """
    _check_pairing(xs, ys)
    if k < 0 or k > len(xs):
        # No pair of assignments is at such a distance.
        from ..logic.formula import FALSE

        return FALSE
    builder = CircuitBuilder(prefix=prefix, avoid=list(xs) + list(ys))
    count = distance_bits(builder, xs, ys)
    return land(builder.definitions(), builder.equals_const(count, k))


def atmost(
    k: int,
    xs: Sequence[str],
    ys: Sequence[str],
    prefix: str = "_le",
) -> Formula:
    """Distance-at-most-``k`` variant: true iff dist(X, Y) <= k."""
    _check_pairing(xs, ys)
    if k < 0:
        from ..logic.formula import FALSE

        return FALSE
    if k >= len(xs):
        from ..logic.formula import TRUE

        return TRUE
    builder = CircuitBuilder(prefix=prefix, avoid=list(xs) + list(ys))
    count = distance_bits(builder, xs, ys)
    return land(builder.definitions(), builder.less_than_const(count, k + 1))


def exa_plain(k: int, xs: Sequence[str], ys: Sequence[str]) -> Formula:
    """Auxiliary-free ``EXA``: disjunction over all distance-``k`` patterns.

    Size Θ(C(n,k)·n) — the exponential blow-up the circuit encoding avoids.
    Used only by tests (as an independent oracle) and the size-ablation bench.
    """
    _check_pairing(xs, ys)
    if k < 0 or k > len(xs):
        from ..logic.formula import FALSE

        return FALSE
    pairs = list(zip(xs, ys))
    options: List[Formula] = []
    for flipped in combinations(range(len(pairs)), k):
        flipped_set = set(flipped)
        parts: List[Formula] = []
        for index, (x, y) in enumerate(pairs):
            if index in flipped_set:
                parts.append(xor(Var(x), Var(y)))
            else:
                parts.append(iff(Var(x), Var(y)))
        options.append(land(*parts))
    return lor(*options)


def distance_less_than(
    xs_left: Sequence[str],
    ys_left: Sequence[str],
    xs_right: Sequence[str],
    ys_right: Sequence[str],
    prefix: str = "_dlt",
) -> Tuple[Formula, Formula]:
    """Circuitry for ``DIST(XL,YL) < DIST(XR,YR)`` (formula (14) of §6).

    Returns ``(definitions, strictly_less_wire)``: conjoin the definitions and
    use the wire as the comparison outcome.
    """
    avoid = set(xs_left) | set(ys_left) | set(xs_right) | set(ys_right)
    builder = CircuitBuilder(prefix=prefix, avoid=avoid)
    left_count = distance_bits(builder, xs_left, ys_left)
    right_count = distance_bits(builder, xs_right, ys_right)
    outcome = builder.less_than(left_count, right_count)
    return builder.definitions(), outcome
