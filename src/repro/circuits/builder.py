"""Circuit-to-formula builder.

Theorem 3.4 of the paper represents a Hamming-distance circuit as "a
polynomial size propositional formula using literals from X ∪ Y, log n
literals representing k, and a polynomial number of new atoms W representing
the internal nodes of the circuit".  :class:`CircuitBuilder` implements that
translation: every internal wire receives a fresh letter defined by a
two-sided equivalence ``w <-> gate(inputs)``, so the auxiliary letters are
*functionally determined* by the circuit inputs.  Consequently conjoining
``definitions()`` to any formula preserves query equivalence over the
original alphabet and preserves model counts.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..logic.formula import FALSE, TRUE, Formula, Var, iff, land, lnot, lor, xor


class CircuitBuilder:
    """Allocates wire letters and records their gate definitions."""

    def __init__(self, prefix: str = "_w", avoid: Iterable[str] = ()) -> None:
        self._prefix = prefix
        self._avoid = set(avoid)
        self._counter = 0
        self._definitions: List[Formula] = []
        self.wire_names: List[str] = []

    def _fresh_name(self) -> str:
        while True:
            name = f"{self._prefix}{self._counter}"
            self._counter += 1
            if name not in self._avoid:
                self._avoid.add(name)
                self.wire_names.append(name)
                return name

    def wire(self, expr: Formula) -> Formula:
        """Create a wire letter defined as ``expr``; returns the wire.

        Constants pass through undefined — no letter is wasted on them.
        """
        if isinstance(expr, (type(TRUE), type(FALSE))):
            return expr
        if isinstance(expr, Var):
            return expr
        name = self._fresh_name()
        wire_var = Var(name)
        self._definitions.append(iff(wire_var, expr))
        return wire_var

    def definitions(self) -> Formula:
        """The conjunction of all gate definitions recorded so far."""
        return land(*self._definitions)

    def definition_count(self) -> int:
        return len(self._definitions)

    # -- arithmetic building blocks ------------------------------------------

    def half_adder(self, a: Formula, b: Formula) -> Tuple[Formula, Formula]:
        """Return ``(sum, carry)`` wires for one-bit addition."""
        return self.wire(xor(a, b)), self.wire(land(a, b))

    def full_adder(self, a: Formula, b: Formula, c: Formula) -> Tuple[Formula, Formula]:
        """Return ``(sum, carry)`` wires for three-input addition."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, c)
        return s2, self.wire(lor(c1, c2))

    def add(self, left: Sequence[Formula], right: Sequence[Formula]) -> List[Formula]:
        """Ripple-carry addition of two little-endian bit vectors."""
        width = max(len(left), len(right))
        a_bits = list(left) + [FALSE] * (width - len(left))
        b_bits = list(right) + [FALSE] * (width - len(right))
        out: List[Formula] = []
        carry: Formula = FALSE
        for a_bit, b_bit in zip(a_bits, b_bits):
            total, carry = self.full_adder(a_bit, b_bit, carry)
            out.append(total)
        out.append(carry)
        return _trim(out)

    def popcount(self, bits: Sequence[Formula]) -> List[Formula]:
        """Binary count (little-endian wire vector) of true inputs.

        Divide-and-conquer adder tree: O(n) gates, O(log n) output bits —
        the polynomial circuit Theorem 3.4 relies on.
        """
        bits = list(bits)
        if not bits:
            return [FALSE]
        if len(bits) == 1:
            return [bits[0]]
        mid = len(bits) // 2
        return self.add(self.popcount(bits[:mid]), self.popcount(bits[mid:]))

    # -- comparators -------------------------------------------------------------

    def equals_const(self, number: Sequence[Formula], value: int) -> Formula:
        """Formula asserting the wire vector equals the constant ``value``."""
        if value < 0:
            return FALSE
        if value >> len(number):
            return FALSE  # constant needs more bits than the vector has
        parts: List[Formula] = []
        for position, bit in enumerate(number):
            if value >> position & 1:
                parts.append(bit)
            else:
                parts.append(lnot(bit))
        return land(*parts)

    def less_than_const(self, number: Sequence[Formula], value: int) -> Formula:
        """Formula asserting the wire vector is strictly below ``value``."""
        if value <= 0:
            return FALSE
        if value > (1 << len(number)) - 1:
            return TRUE
        # number < value  iff  exists a bit position where value has 1,
        # number has 0, and they agree above it.
        options: List[Formula] = []
        for position in reversed(range(len(number))):
            if not (value >> position & 1):
                continue
            higher_agree = [
                number[j] if (value >> j & 1) else lnot(number[j])
                for j in range(position + 1, len(number))
            ]
            options.append(land(*higher_agree, lnot(number[position])))
        return lor(*options)

    def less_than(self, left: Sequence[Formula], right: Sequence[Formula]) -> Formula:
        """Wire asserting ``left < right`` (unsigned little-endian vectors).

        Ripple comparison from the most significant bit downward.
        """
        width = max(len(left), len(right))
        a_bits = list(left) + [FALSE] * (width - len(left))
        b_bits = list(right) + [FALSE] * (width - len(right))
        result: Formula = FALSE  # equal so far => not less
        # Process from LSB: lt_k = (a_k < b_k) or (a_k == b_k and lt_{k-1})
        for a_bit, b_bit in zip(a_bits, b_bits):
            bit_less = land(lnot(a_bit), b_bit)
            bit_equal = iff(a_bit, b_bit)
            result = self.wire(lor(bit_less, land(bit_equal, result)))
        return result


def _trim(bits: List[Formula]) -> List[Formula]:
    """Drop constant-FALSE high bits (keep at least one bit)."""
    while len(bits) > 1 and bits[-1] is FALSE:
        bits.pop()
    return bits


def const_bits(value: int, width: int | None = None) -> List[Formula]:
    """Little-endian constant bit vector for ``value``."""
    if value < 0:
        raise ValueError("only non-negative constants")
    bits: List[Formula] = []
    remaining = value
    while remaining:
        bits.append(TRUE if remaining & 1 else FALSE)
        remaining >>= 1
    if not bits:
        bits.append(FALSE)
    if width is not None:
        if len(bits) > width:
            raise ValueError(f"{value} does not fit in {width} bits")
        bits.extend([FALSE] * (width - len(bits)))
    return bits
