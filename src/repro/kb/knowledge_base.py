"""User-facing knowledge base with revision, querying and compilation.

This is the API a downstream user adopts.  It packages the paper's
engineering moral (Section 8):

* revisions can be **delayed** — the base stores ``T`` and the pending
  sequence ``P¹..P^m`` and incorporates them only when a query arrives
  ("a reasonable strategy seems to be to delay revisions and incorporate
  them when T * P¹ * ... * P^m is accessed");
* the formulas ``P¹..P^m`` are **kept even after incorporation** — the
  compact iterated representations need the whole sequence;
* query answering follows the **two-subtask split** of the introduction:
  (1) compile a representation ``T'`` off-line, (2) answer ``T' |= Q``
  with ordinary entailment machinery.

Compilation strategy per operator (from Tables 3 and 4):

========  =======================================  ====================
operator  representation                            equivalence
========  =======================================  ====================
dalal     Theorem 5.1 ``Φ_m``                       query
weber     formula (10)                              query
winslett  formulas (12)/(16)                        query (bounded |P|)
borgida   Borgida variant of (12)/(16)              query (bounded |P|)
forbus    formula (14) iterated                     query (bounded |P|)
satoh     corrected formula (13) iterated           query (bounded |P|)
widtio    revised theory itself                     logical
gfuv      none — falls back to exact semantics      (not compactable)
nebel     none — falls back to exact semantics      (not compactable)
========  =======================================  ====================
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..compact.iterated import dalal_iterated, weber_iterated
from ..compact.qbf import bounded_iterated
from ..compact.representation import CompactRepresentation
from ..compact.widtio import widtio_iterated
from ..logic.formula import Formula, FormulaLike, as_formula
from ..logic.parser import parse
from ..logic.theory import Theory, TheoryLike
from ..revision.base import RevisionResult
from ..revision.registry import get_operator

#: Operators with an iterated compact compilation route.
_COMPILERS = {
    "dalal": lambda theory, updates: dalal_iterated(theory, updates),
    "weber": lambda theory, updates: weber_iterated(theory, updates),
    "winslett": lambda theory, updates: bounded_iterated("winslett", theory, updates),
    "borgida": lambda theory, updates: bounded_iterated("borgida", theory, updates),
    "forbus": lambda theory, updates: bounded_iterated("forbus", theory, updates),
    "satoh": lambda theory, updates: bounded_iterated("satoh", theory, updates),
    "widtio": lambda theory, updates: widtio_iterated(theory, updates),
}


class KnowledgeBase:
    """A propositional knowledge base with a chosen revision operator.

    >>> kb = KnowledgeBase("g | b", operator="dalal")
    >>> kb.revise("~g")
    >>> kb.ask("b")
    True
    """

    def __init__(
        self,
        theory: TheoryLike | str,
        operator: str = "dalal",
        eager: bool = False,
    ) -> None:
        """``eager=True`` incorporates every revision immediately (exact
        semantics); the default delays them until a query arrives."""
        if isinstance(theory, str):
            theory = Theory([parse(theory)])
        self._theory = Theory.coerce(theory)
        self._operator = get_operator(operator)
        self._eager = eager
        self._pending: List[Formula] = []
        self._cached_result: Optional[RevisionResult] = None
        self._cached_compilation: Optional[CompactRepresentation] = None

    # -- introspection -------------------------------------------------------

    @property
    def operator_name(self) -> str:
        return self._operator.name

    @property
    def theory(self) -> Theory:
        """The original theory (never mutated by revisions)."""
        return self._theory

    @property
    def pending_revisions(self) -> Tuple[Formula, ...]:
        """The stored revision sequence ``P¹..P^m`` (kept after
        incorporation, as Section 8 advises)."""
        return tuple(self._pending)

    # -- revision --------------------------------------------------------------

    def revise(self, new_formula: FormulaLike | str) -> None:
        """Queue (or eagerly incorporate) one more revision."""
        formula = parse(new_formula) if isinstance(new_formula, str) else as_formula(
            new_formula
        )
        self._pending.append(formula)
        self._cached_compilation = None
        if self._eager:
            self._cached_result = self._semantics()
        else:
            self._cached_result = None

    # -- the two-subtask pipeline -------------------------------------------------

    def _semantics(self) -> RevisionResult:
        if self._cached_result is None:
            self._cached_result = self._operator.iterate(self._theory, self._pending)
        return self._cached_result

    def compile(self) -> CompactRepresentation:
        """Subtask 1: compute a representation ``T'`` of ``T * P¹ * ... * P^m``.

        Uses the operator's compact construction when one exists
        (Tables 3/4); raises ``ValueError`` for GFUV/Nebel, which are not
        compactable — callers fall back to :meth:`ask` which uses exact
        semantics.
        """
        compiler = _COMPILERS.get(self._operator.name)
        if compiler is None:
            raise ValueError(
                f"operator {self._operator.name!r} admits no compact "
                "representation (Tables 3/4 of the paper)"
            )
        if not self._pending:
            raise ValueError("nothing to compile: no revisions queued")
        if self._cached_compilation is None:
            self._cached_compilation = compiler(self._theory, list(self._pending))
        return self._cached_compilation

    def ask(self, query: FormulaLike | str, via: str = "auto") -> bool:
        """Subtask 2: decide ``T * P¹ * ... * P^m |= Q``.

        ``via``:
            * ``"auto"`` — compiled representation when available, exact
              semantics otherwise;
            * ``"compiled"`` — force the compact route;
            * ``"semantics"`` — force exact model enumeration.
        """
        formula = parse(query) if isinstance(query, str) else as_formula(query)
        if via not in ("auto", "compiled", "semantics"):
            raise ValueError("via must be 'auto', 'compiled' or 'semantics'")
        if via == "semantics" or not self._pending:
            return self._semantics().entails(formula)
        if via == "compiled":
            return self.compile().entails(formula)
        if self._operator.name in _COMPILERS:
            return self.compile().entails(formula)
        return self._semantics().entails(formula)

    def holds_in(self, model) -> bool:
        """Model checking ``M |= T * P¹ * ... * P^m`` (exact semantics —
        query-equivalent compilations are unsound for this, as the Dalal
        row of Table 3 shows)."""
        return self._semantics().satisfies(model)

    def models(self):
        """The model set of the current (revised) knowledge base."""
        return self._semantics().model_set

    def alphabet(self) -> Tuple[str, ...]:
        return self._semantics().alphabet
