"""Public knowledge-base API (the paper's offline/online query pipeline)."""

from .knowledge_base import KnowledgeBase

__all__ = ["KnowledgeBase"]
