"""Engine-wide resource governance: budgets, deadlines, cancellation.

A serving layer cannot sit on an engine whose only failure mode is an
unhandled exception.  This package gives every hot loop in the engine a
cooperative contract:

* :class:`Budget` — a context manager carrying a wall-clock deadline, a
  cumulative model-count budget and a per-allocation memory-word cap.
  Budgets nest; the innermost one governs.
* :func:`checkpoint` — polled by the CDCL search loop, the cube stream,
  the blocked table kernels and the batch driver.  Raises
  :class:`EngineTimeout` past the deadline or :class:`Cancelled` after
  :meth:`Budget.cancel`; the interrupted operation is left resumable
  (the solver honours the ``next_model`` contract across the raise).
* :func:`charge_models` / :func:`charge_words` — accounting hooks.
  Model charges accumulate and raise :class:`BudgetExceeded`; word
  charges cap the single largest allocation and raise
  :class:`MemoryBudgetExceeded`, which **is a** ``MemoryError`` so the
  tier-demotion handlers treat a budgeted overflow exactly like a real
  OOM: retry one tier down instead of crashing (see
  :func:`repro.logic.shards.tier` for the demotion chain).

Deadlines are honoured within one checkpoint interval: the solver polls
every :data:`CHECKPOINT_INTERVAL` decisions/conflicts, the streams and
kernels once per cube/chunk.  While a deadline or cancellable budget is
active, :func:`allows_fanout` turns process fan-out off — a child
process cannot observe the parent's checkpoints — and the serial paths
(which can) serve instead.

Fault injection for all of the above lives in
:mod:`repro.runtime.faults` (``REPRO_FAULTS``); the crash-tolerant
process-pool map in :mod:`repro.runtime.pool`.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.obs import metrics as _metrics

from . import faults

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CHECKPOINT_INTERVAL",
    "Cancelled",
    "EngineTimeout",
    "MemoryBudgetExceeded",
    "STATS",
    "Stats",
    "allows_fanout",
    "charge_models",
    "charge_words",
    "checkpoint",
    "current",
    "faults",
    "record_demotion",
]

#: Solver decisions/conflicts between deadline polls.  Small enough that
#: a deadline lands within milliseconds of real work, large enough that
#: governance stays under the <5% overhead target on the bench legs.
CHECKPOINT_INTERVAL = 64

#: Counter keys STATS always carries (and that :meth:`Stats.reset`
#: restores); dynamic keys — per-edge demotions, store corruption —
#: are dropped entirely on reset.
_BASELINE_KEYS = (
    "budgets",
    "checkpoints",
    "timeouts",
    "cancelled",
    "model_budget_exceeded",
    "memory_budget_exceeded",
    "demotions",
    "worker_crashes",
    "inline_retries",
    "store-corrupt",
)


class Stats(_metrics.CounterGroup):
    """The engine's counter bag, now a ``runtime.*`` registry view.

    Still dict-shaped, so every existing ``STATS["key"] += 1`` site
    keeps working on single-threaded paths; threaded sites (the
    ``REPRO_PARALLEL`` kernels checkpoint from worker threads) go
    through the atomic :meth:`inc`.  Storage lives in
    :data:`repro.obs.metrics.REGISTRY` under ``runtime.<key>``, which
    is what ``repro stats`` dumps and what pool-worker deltas merge
    into.
    """

    def __init__(self) -> None:
        super().__init__("runtime", baseline=_BASELINE_KEYS)

    def reset(self) -> None:
        """Zero the baseline counters and drop every dynamic key.

        Also clears the fault-injection counters
        (:data:`repro.runtime.faults.STATS`): both groups carry
        pool-worker deltas merged by :mod:`repro.runtime.pool`, and a
        reset that left stale fault/crash counts behind used to make
        post-fan-out assertions lie.
        """
        super().reset()
        faults.STATS.reset()


#: Governance counters: checkpoints served, budget trips, tier
#: demotions (plus per-edge ``demotions:<from>-><to>`` keys), worker
#: crashes survived, inline retries run by :mod:`repro.runtime.pool`
#: and artifact-store corruption events (``store-corrupt``, counted by
#: :mod:`repro.store` whenever a read quarantines a file).
STATS = Stats()


class EngineTimeout(RuntimeError):
    """A budget's wall-clock deadline passed at a checkpoint."""


class Cancelled(EngineTimeout):
    """The governing budget was cancelled (:meth:`Budget.cancel`)."""


class BudgetExceeded(RuntimeError):
    """A cumulative budget (model count) ran out; demotion cannot help."""


class MemoryBudgetExceeded(BudgetExceeded, MemoryError):
    """A single allocation would exceed the word cap.

    Subclasses ``MemoryError`` on purpose: the tier-demotion handlers
    catch it exactly like a real allocator failure and retry the
    operation one tier down.
    """


_stack: List["Budget"] = []
_ACTIVE: Optional["Budget"] = None


class Budget:
    """A governance scope: ``with Budget(deadline=0.5): ...``.

    ``deadline``
        seconds of wall clock granted from ``__enter__``.
    ``max_models``
        cumulative cap on models charged inside the scope.
    ``max_words``
        cap on the single largest allocation, in 64-bit words.

    The object is reusable (counters restart on entry) but not
    re-entrant.  :meth:`cancel` may be called from another thread; the
    next checkpoint in the governed thread raises :class:`Cancelled`.
    """

    __slots__ = (
        "deadline",
        "max_models",
        "max_words",
        "models_charged",
        "_cancelled",
        "_expires",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_models: Optional[int] = None,
        max_words: Optional[int] = None,
    ) -> None:
        self.deadline = deadline
        self.max_models = max_models
        self.max_words = max_words
        self.models_charged = 0
        self._cancelled = False
        self._expires: Optional[float] = None

    def __enter__(self) -> "Budget":
        global _ACTIVE
        self.models_charged = 0
        self._cancelled = False
        self._expires = (
            None if self.deadline is None
            else time.monotonic() + self.deadline
        )
        _stack.append(self)
        _ACTIVE = self
        STATS.inc("budgets")
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        _stack.remove(self)
        _ACTIVE = _stack[-1] if _stack else None

    def cancel(self) -> None:
        """Request cooperative cancellation at the next checkpoint."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        return self._expires is not None and time.monotonic() > self._expires

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline, or None without one."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())

    def checkpoint(self) -> None:
        """Raise if cancelled or past the deadline; otherwise a no-op."""
        if self._cancelled:
            STATS.inc("cancelled")
            raise Cancelled("operation cancelled at a checkpoint")
        expires = self._expires
        if expires is not None and time.monotonic() > expires:
            STATS.inc("timeouts")
            raise EngineTimeout(
                f"deadline of {self.deadline}s exceeded at a checkpoint"
            )

    def charge_models(self, count: int) -> None:
        """Accumulate *count* emitted models against the model budget."""
        self.models_charged += count
        cap = self.max_models
        if cap is not None and self.models_charged > cap:
            STATS.inc("model_budget_exceeded")
            raise BudgetExceeded(
                f"model budget exhausted: {self.models_charged} models "
                f"charged against max_models={cap}"
            )

    def charge_words(self, count: int, context: str = "allocation") -> None:
        """Check a prospective allocation of *count* words against the cap."""
        cap = self.max_words
        if cap is not None and count > cap:
            STATS.inc("memory_budget_exceeded")
            raise MemoryBudgetExceeded(
                f"{context}: {count} words exceed max_words={cap}"
            )


def current() -> Optional[Budget]:
    """The innermost active budget, or None."""
    return _ACTIVE


def checkpoint() -> None:
    """Poll the governing budget; no-op (one load) when none is active."""
    budget = _ACTIVE
    if budget is not None:
        STATS.inc("checkpoints")
        budget.checkpoint()


def charge_models(count: int) -> None:
    """Charge *count* models against the governing budget, if any."""
    budget = _ACTIVE
    if budget is not None:
        budget.charge_models(count)


def charge_words(count: int, context: str = "allocation") -> None:
    """Vet a prospective *count*-word allocation.

    Also the ``alloc-oom`` fault-injection site: an armed occurrence
    raises a plain ``MemoryError`` here, upstream of any budget.
    """
    if faults.ACTIVE and faults.trip("alloc-oom") is not None:
        raise MemoryError(f"injected alloc-oom fault at {context}")
    budget = _ACTIVE
    if budget is not None:
        budget.charge_words(count, context)


def allows_fanout() -> bool:
    """Whether process fan-out is permitted under the governing budget.

    Child processes cannot observe the parent's deadline or
    cancellation, so any budget carrying either routes the work to the
    serial/threaded paths, which checkpoint cooperatively.
    """
    budget = _ACTIVE
    return budget is None or (
        budget._expires is None and not budget._cancelled
    )


def record_demotion(from_tier: str, to_tier: str) -> None:
    """Count one tier demotion (also keyed per ``from->to`` edge)."""
    STATS.inc("demotions")
    STATS.inc(f"demotions:{from_tier}->{to_tier}")
