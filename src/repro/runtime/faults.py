"""Deterministic fault injection for the resource-governance layer.

Robustness claims ("masks bit-identical under any worker-crash pattern",
"compile OOM degrades one tier down") are only worth anything if CI can
actually make those failures happen on demand.  This registry turns the
``REPRO_FAULTS`` environment string into a set of armed fault points
that the engine consults at well-defined sites:

``worker-crash@K``
    the K-th job dispatched to a process pool dies with ``os._exit(1)``
    (decided parent-side at submit time, so the pattern is independent
    of the multiprocessing start method; the parent's inline retry of
    the same job is immune by construction).
``alloc-oom@N``
    the N-th charged allocation (:func:`repro.runtime.charge_words`)
    raises ``MemoryError``.
``shard-compile-oom@N``
    the N-th sharded-table compile raises ``MemoryError`` before any
    bitplane is materialised.
``propagate-delay@M:S``
    the M-th unit-propagation call sleeps ``S`` seconds — a slow-solver
    stand-in for deadline tests.
``store-torn-write@N[:bytes]``
    the N-th artifact publish in :mod:`repro.store` crashes mid-write:
    only a prefix (``bytes`` long, default half the blob) reaches the
    temp file and the atomic rename never happens.
``store-bit-flip@N[:bit]``
    the N-th artifact publish flips one payload bit *after* the
    checksum was computed — the on-disk file is genuinely corrupt and
    must be quarantined by the next read.
``store-fsync-fail@N``
    the N-th artifact publish fails its ``fsync`` with ``EIO``; the
    publish is abandoned cleanly.
``service-worker-crash@N``
    the N-th request dispatched by :mod:`repro.service` is doomed: the
    worker that picks it up dies with ``os._exit(1)`` before replying
    (decided front-end-side at dispatch time, mirroring
    ``worker-crash``, so retries of the same request are immune).
``service-worker-hang@N[:S]``
    the N-th dispatched service request makes its worker sleep ``S``
    seconds (default 3600 — i.e. far past any heartbeat/hang deadline)
    instead of answering, so the supervisor must detect the hang and
    kill/restart the worker.
``service-queue-full@N``
    the N-th admission decision in the service front-end behaves as if
    the bounded queue were full: the request is shed with a typed
    response instead of being enqueued.

Entries are separated by ``;`` (or ``,``); an index of ``r`` draws a
deterministic pseudo-random occurrence in 1..8 from the ``seed=N`` entry
(default seed 0), so seeded sweeps explore crash patterns reproducibly:

    REPRO_FAULTS="worker-crash@1;alloc-oom@3;propagate-delay@5:0.01"
    REPRO_FAULTS="seed=7;worker-crash@r"

The registry is read once at import; tests re-arm it with
:func:`reset`.  ``ACTIVE`` is a plain module bool so hot loops can gate
the whole machinery on one attribute load.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

from repro.obs import metrics as _metrics

ENV_VAR = "REPRO_FAULTS"

#: Fault points the engine consults.  Arming an unknown point is a spec
#: typo and raises immediately rather than silently never firing.
POINTS = (
    "worker-crash",
    "alloc-oom",
    "shard-compile-oom",
    "propagate-delay",
    "store-torn-write",
    "store-bit-flip",
    "store-fsync-fail",
    "service-worker-crash",
    "service-worker-hang",
    "service-queue-full",
)

#: True when at least one fault point is armed — the one-load hot gate.
ACTIVE = False

#: How often each armed point has fired, plus the grand total.  A
#: ``faults.*`` registry view: worker-injected faults merged back by
#: :mod:`repro.runtime.pool` land here too, and
#: ``repro.runtime.STATS.reset()`` clears the group.
STATS = _metrics.CounterGroup("faults", baseline=("injected",))

_targets: Dict[str, Tuple[int, Optional[str]]] = {}
_counters: Dict[str, int] = {}


def _drawn_index(seed: int, salt: int) -> int:
    """Deterministic occurrence index in 1..8 for an ``@r`` entry."""
    state = (seed * 2 + salt + 1) & 0xFFFFFFFFFFFFFFFF
    state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
    return 1 + ((state >> 33) % 8)


def reset(spec: Optional[str] = None) -> None:
    """Re-arm the registry from *spec* (default: the env var, or disarm).

    Counters always restart from zero, so a test can deterministically
    target "the Nth occurrence after this point".
    """
    global ACTIVE
    if spec is None:
        spec = os.environ.get(ENV_VAR, "")
    _targets.clear()
    _counters.clear()
    seed = 0
    entries = []
    for raw in spec.replace(",", ";").split(";"):
        raw = raw.strip()
        if not raw:
            continue
        if raw.startswith("seed="):
            seed = int(raw[len("seed="):], 0)
            continue
        name, sep, rest = raw.partition("@")
        name = name.strip()
        if not sep or name not in POINTS:
            raise ValueError(
                f"{ENV_VAR}: unknown fault entry {raw!r} "
                f"(points: {', '.join(POINTS)})"
            )
        index_text, _, param = rest.partition(":")
        entries.append((name, index_text.strip(), param.strip() or None))
    for salt, (name, index_text, param) in enumerate(entries):
        if index_text == "r":
            index = _drawn_index(seed, salt + sum(ord(c) for c in name))
        else:
            index = int(index_text, 0)
            if index < 1:
                raise ValueError(
                    f"{ENV_VAR}: {name}@{index}: occurrence index is 1-based"
                )
        _targets[name] = (index, param)
        _counters[name] = 0
    ACTIVE = bool(_targets)


def armed(point: str) -> bool:
    """True when *point* is armed (fired or not)."""
    return point in _targets


def trip(point: str) -> Optional[str]:
    """Count one occurrence of *point*; non-None when the fault fires.

    Returns the entry's parameter string (possibly ``""``) on the armed
    occurrence, ``None`` otherwise — callers must test ``is not None``.
    """
    target = _targets.get(point)
    if target is None:
        return None
    _counters[point] += 1
    index, param = target
    if _counters[point] != index:
        return None
    STATS.inc("injected")
    STATS.inc(point)
    return param if param is not None else ""


def propagate_pause() -> None:
    """The ``propagate-delay`` site: sleep the armed entry's seconds."""
    param = trip("propagate-delay")
    if param:
        time.sleep(float(param))


reset()
