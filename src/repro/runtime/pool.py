"""Crash-tolerant fan-out maps shared by the parallel kernels.

:func:`map_with_recovery` is the process-pool workhorse: ordered
results, dead-worker detection via ``BrokenProcessPool``, bounded
inline retry of every job the dead worker took down, and
context-managed shutdown with ``cancel_futures=True`` so an error or
``KeyboardInterrupt`` mid-map leaks no orphan workers.  Because every
combine in the engine is a union (order- and partition-independent),
re-running a lost range inline reproduces bit-identical masks for any
crash pattern.

:func:`map_threads` is the thread-pool sibling used by the blocked
numpy kernels: same ordered-map contract and prompt-cancel shutdown
semantics (threads cannot be killed, but pending chunks are dropped the
moment one chunk raises — e.g. at a deadline checkpoint).
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, List, Sequence

from repro import runtime as _runtime
from repro.runtime import faults as _faults


def _invoke(payload):
    """Worker-side trampoline (top-level so it pickles).

    A job doomed by the ``worker-crash`` fault dies only in a child:
    the parent-pid guard makes the parent's inline retry of the very
    same payload immune by construction.
    """
    function, args, doomed, parent = payload
    if doomed and os.getpid() != parent:
        os._exit(1)
    return function(args)


def map_with_recovery(
    function: Callable[[Any], Any],
    jobs: Sequence[Any],
    workers: int,
    label: str = "parallel fan-out",
) -> List[Any]:
    """Ordered ``[function(job) for job in jobs]`` over a process pool.

    If a worker dies mid-map the pool breaks; every job without a
    result is then re-run inline in the parent (one bounded retry —
    a failure there propagates).  The executor is always shut down with
    ``cancel_futures=True``, so nothing is leaked on any exit path.
    Checkpoints are polled between result collections, keeping
    deadlines live even here (callers normally avoid process fan-out
    under a deadline via :func:`repro.runtime.allows_fanout`).
    """
    jobs = list(jobs)
    if not jobs:
        return []
    parent = os.getpid()
    payloads = []
    for args in jobs:
        doomed = _faults.ACTIVE and _faults.trip("worker-crash") is not None
        payloads.append((function, args, doomed, parent))
    results: List[Any] = [None] * len(jobs)
    done = [False] * len(jobs)
    broken = False
    executor = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
    try:
        futures = [executor.submit(_invoke, payload) for payload in payloads]
        for index, future in enumerate(futures):
            _runtime.checkpoint()
            try:
                results[index] = future.result()
                done[index] = True
            except BrokenExecutor:
                broken = True
    finally:
        executor.shutdown(wait=not broken, cancel_futures=True)
    if broken:
        _runtime.STATS["worker_crashes"] += 1
        for index, finished in enumerate(done):
            if not finished:
                _runtime.STATS["inline_retries"] += 1
                results[index] = function(jobs[index])
    return results


def map_threads(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
) -> List[Any]:
    """Ordered thread-pool map with prompt-cancel shutdown.

    Pending items are cancelled as soon as any item raises (the running
    ones finish — threads are cooperative); results come back in input
    order, so union combines stay worker-count-independent.
    """
    items = list(items)
    if not items:
        return []
    if workers <= 1 or len(items) == 1:
        return [function(item) for item in items]
    executor = ThreadPoolExecutor(max_workers=min(workers, len(items)))
    try:
        futures = [executor.submit(function, item) for item in items]
        return [future.result() for future in futures]
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
