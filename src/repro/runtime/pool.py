"""Crash-tolerant fan-out maps shared by the parallel kernels.

:func:`map_with_recovery` is the process-pool workhorse: ordered
results, dead-worker detection via ``BrokenProcessPool``, bounded
inline retry of every job the dead worker took down, and
context-managed shutdown with ``cancel_futures=True`` so an error or
``KeyboardInterrupt`` mid-map leaks no orphan workers.  Because every
combine in the engine is a union (order- and partition-independent),
re-running a lost range inline reproduces bit-identical masks for any
crash pattern.

Telemetry rides the same map: each worker snapshots the metrics
registry on entry and ships its deltas (plus any buffered span events)
back inside a :class:`_WorkerEnvelope`; the parent folds them in via
:func:`repro.obs.merge_worker` as results arrive, so counters bumped
and spans opened inside a child show up in the parent's ``repro
stats`` / trace as if the work ran inline.  A crashed worker's
envelope is lost with it — the inline retry re-runs the job in the
parent, where its telemetry is recorded directly, and the retry batch
is wrapped in a ``pool.retry`` span naming the lost job indices.

:func:`map_threads` is the thread-pool sibling used by the blocked
numpy kernels: same ordered-map contract and prompt-cancel shutdown
semantics (threads cannot be killed, but pending chunks are dropped the
moment one chunk raises — e.g. at a deadline checkpoint).  Span-wise,
each chunk adopts the submitting thread's open span as its parent, so
chunk-level spans nest under the kernel that fanned them out.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as _FutureTimeout,
)
from typing import Any, Callable, List, Sequence

from repro import obs as _obs
from repro import runtime as _runtime
from repro.runtime import faults as _faults


class _WorkerEnvelope:
    """A worker's result plus its telemetry deltas (picklable)."""

    __slots__ = ("value", "telemetry")

    def __init__(self, value, telemetry) -> None:
        self.value = value
        self.telemetry = telemetry

    def __getstate__(self):
        return (self.value, self.telemetry)

    def __setstate__(self, state) -> None:
        self.value, self.telemetry = state


def _invoke(payload):
    """Worker-side trampoline (top-level so it pickles).

    A job doomed by the ``worker-crash`` fault dies only in a child:
    the parent-pid guard makes the parent's inline retry of the very
    same payload immune by construction.  Surviving jobs come back
    wrapped in a :class:`_WorkerEnvelope` carrying the worker's metric
    deltas and buffered span events.
    """
    function, args, doomed, parent = payload
    if os.getpid() == parent:
        return function(args)
    if doomed:
        os._exit(1)
    token = _obs.worker_capture_begin()
    try:
        value = function(args)
    finally:
        envelope = _obs.worker_capture_end(token)
    return _WorkerEnvelope(value, envelope)


#: How often the result-collection loop polls checkpoints while a
#: budget is active — bounds how stale a deadline can get mid-map.
_RESULT_POLL_S = 0.25


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: terminate workers, drop pending jobs.

    The deadline/cancellation exit path — a worker grinding on a job
    cannot observe the parent's checkpoints, so waiting for it would
    turn an ``EngineTimeout`` into an unbounded stall (and an early
    ``raise`` without this would leak orphan workers past the map).
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=2.0)


def map_with_recovery(
    function: Callable[[Any], Any],
    jobs: Sequence[Any],
    workers: int,
    label: str = "parallel fan-out",
) -> List[Any]:
    """Ordered ``[function(job) for job in jobs]`` over a process pool.

    If a worker dies mid-map the pool breaks; every job without a
    result is then re-run inline in the parent (one bounded retry —
    a failure there propagates).  The executor is always shut down with
    ``cancel_futures=True``, so nothing is leaked on any exit path.
    While a budget is active, result collection polls checkpoints every
    :data:`_RESULT_POLL_S`; if the caller's deadline expires (or the
    budget is cancelled) mid-map, the pool's worker processes are
    terminated and pending jobs dropped *before* the ``EngineTimeout``
    propagates — a timeout never leaks orphan workers (callers normally
    avoid process fan-out under a deadline via
    :func:`repro.runtime.allows_fanout`, but the service layer and
    direct users get the guarantee regardless).

    Each surviving worker's telemetry envelope is merged into the
    parent registry/trace as its result arrives; the whole map runs
    under a ``pool.map`` span so merged worker spans nest there.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    parent = os.getpid()
    payloads = []
    for args in jobs:
        doomed = _faults.ACTIVE and _faults.trip("worker-crash") is not None
        payloads.append((function, args, doomed, parent))
    results: List[Any] = [None] * len(jobs)
    done = [False] * len(jobs)
    broken = False
    with _obs.span(
        "pool.map", label=label, jobs=len(jobs),
        workers=min(workers, len(jobs)),
    ) as pool_span:
        executor = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
        killed = False
        try:
            futures = [
                executor.submit(_invoke, payload) for payload in payloads
            ]
            for index, future in enumerate(futures):
                try:
                    if _runtime.current() is None:
                        value = future.result()
                    else:
                        # Poll so a deadline or cancellation lands within
                        # _RESULT_POLL_S even while a child is mid-job.
                        while True:
                            _runtime.checkpoint()
                            try:
                                value = future.result(_RESULT_POLL_S)
                                break
                            except _FutureTimeout:
                                continue
                except BrokenExecutor:
                    broken = True
                    continue
                except _runtime.EngineTimeout:
                    _runtime.STATS.inc("pool_deadline_kills")
                    pool_span.set("deadline_killed", True)
                    killed = True
                    _kill_executor(executor)
                    raise
                if isinstance(value, _WorkerEnvelope):
                    _obs.merge_worker(value.telemetry)
                    value = value.value
                results[index] = value
                done[index] = True
        finally:
            if not killed:
                executor.shutdown(wait=not broken, cancel_futures=True)
        if broken:
            _runtime.STATS.inc("worker_crashes")
            lost = [index for index, finished in enumerate(done)
                    if not finished]
            pool_span.set("crashed", True)
            with _obs.span(
                "pool.retry", label=label, jobs=len(lost),
                indices=lost[:16],
            ):
                for index in lost:
                    _runtime.STATS.inc("inline_retries")
                    results[index] = function(jobs[index])
    return results


def map_threads(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
) -> List[Any]:
    """Ordered thread-pool map with prompt-cancel shutdown.

    Pending items are cancelled as soon as any item raises (the running
    ones finish — threads are cooperative); results come back in input
    order, so union combines stay worker-count-independent.
    """
    items = list(items)
    if not items:
        return []
    if workers <= 1 or len(items) == 1:
        return [function(item) for item in items]
    if _obs.tracing():
        parent_span = _obs.current_span_id()
        inner = function

        def function(item, _inner=inner, _parent=parent_span):
            with _obs.adopt(_parent):
                return _inner(item)

    executor = ThreadPoolExecutor(max_workers=min(workers, len(items)))
    try:
        futures = [executor.submit(function, item) for item in items]
        return [future.result() for future in futures]
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
