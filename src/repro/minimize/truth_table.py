"""Truth tables over a fixed, sorted alphabet.

A truth table is the list of minterm indices (bitmask over the sorted
alphabet; bit ``i`` = truth of the ``i``-th letter) on which the formula is
true.  This is the exchange format for the exact minimisation in
:mod:`repro.minimize.qm`, which the benchmark harness uses as a measurable
stand-in for "the smallest formula logically equivalent to T * P".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..logic.formula import Formula


class TruthTable:
    """Semantics of a formula over an explicit alphabet."""

    def __init__(self, alphabet: Sequence[str], minterms: Iterable[int]) -> None:
        self.alphabet: Tuple[str, ...] = tuple(sorted(alphabet))
        self.minterms: FrozenSet[int] = frozenset(minterms)
        upper = 1 << len(self.alphabet)
        for term in self.minterms:
            if not (0 <= term < upper):
                raise ValueError(f"minterm {term} out of range for {self.alphabet}")

    @staticmethod
    def of_formula(formula: Formula, alphabet: Sequence[str] | None = None) -> "TruthTable":
        """Tabulate ``formula`` (default alphabet: its own letters)."""
        names = tuple(sorted(alphabet if alphabet is not None else formula.variables()))
        minterms: Set[int] = set()
        for mask in range(1 << len(names)):
            model = {names[i] for i in range(len(names)) if mask >> i & 1}
            if formula.evaluate(model):
                minterms.add(mask)
        return TruthTable(names, minterms)

    @staticmethod
    def of_models(
        models: Iterable[Iterable[str]], alphabet: Sequence[str]
    ) -> "TruthTable":
        """Tabulate an explicit model set over ``alphabet``."""
        names = tuple(sorted(alphabet))
        position = {name: i for i, name in enumerate(names)}
        minterms: Set[int] = set()
        for model in models:
            mask = 0
            for name in model:
                index = position.get(name)
                if index is None:
                    raise ValueError(f"model letter {name!r} outside alphabet")
                mask |= 1 << index
            minterms.add(mask)
        return TruthTable(names, minterms)

    def model_of(self, minterm: int) -> FrozenSet[str]:
        """The interpretation encoded by a minterm index."""
        return frozenset(
            self.alphabet[i] for i in range(len(self.alphabet)) if minterm >> i & 1
        )

    def models(self) -> List[FrozenSet[str]]:
        """All models as letter sets, sorted by minterm index."""
        return [self.model_of(term) for term in sorted(self.minterms)]

    # -- predicates ------------------------------------------------------------

    @property
    def is_contradiction(self) -> bool:
        return not self.minterms

    @property
    def is_tautology(self) -> bool:
        return len(self.minterms) == 1 << len(self.alphabet)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.alphabet == other.alphabet and self.minterms == other.minterms

    def __hash__(self) -> int:
        return hash((self.alphabet, self.minterms))

    def __repr__(self) -> str:
        return f"TruthTable(alphabet={self.alphabet}, minterms={sorted(self.minterms)})"
