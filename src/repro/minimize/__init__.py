"""Exact two-level minimisation (Quine–McCluskey + Petrick)."""

from .qm import (
    covers,
    implicant_formula,
    minimal_dnf,
    minimal_dnf_cost,
    minimal_dnf_of_formula,
    prime_implicants,
)
from .truth_table import TruthTable

__all__ = [
    "TruthTable",
    "covers",
    "implicant_formula",
    "minimal_dnf",
    "minimal_dnf_cost",
    "minimal_dnf_of_formula",
    "prime_implicants",
]
