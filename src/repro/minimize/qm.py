"""Exact two-level minimisation: Quine–McCluskey + Petrick's method.

The paper's non-compactability results concern "the size of the smallest
formula logically equivalent to T * P" — a quantity with no efficient
algorithm (that is the point).  For the benchmark harness we need a
*measurable* proxy at small alphabet sizes; exact minimal DNF is the
classical choice: it is a genuine lower-bound-ish witness of representation
blow-up (an exponential minimal DNF does not prove an exponential minimal
formula, but a polynomial one disproves it — and the growth *trend* across
the proof families is the observable the experiments report).

Implicants are encoded as ``(value_bits, care_mask)`` pairs: position ``i``
is fixed to ``value_bits>>i & 1`` when ``care_mask>>i & 1`` else don't-care.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..logic.formula import FALSE, TRUE, Formula, Var, big_or, land, lnot
from .truth_table import TruthTable

Implicant = Tuple[int, int]


def prime_implicants(num_vars: int, minterms: FrozenSet[int]) -> List[Implicant]:
    """All prime implicants of the function given by ``minterms``."""
    if not minterms:
        return []
    full_mask = (1 << num_vars) - 1
    current: Set[Implicant] = {(term, full_mask) for term in minterms}
    primes: Set[Implicant] = set()
    while current:
        merged_away: Set[Implicant] = set()
        next_level: Set[Implicant] = set()
        # Group by care mask; two implicants merge when they share the mask
        # and differ in exactly one cared bit.
        by_mask: Dict[int, List[int]] = {}
        for value, mask in current:
            by_mask.setdefault(mask, []).append(value)
        for mask, values in by_mask.items():
            value_set = set(values)
            for value in values:
                for bit in range(num_vars):
                    probe = 1 << bit
                    if not mask & probe:
                        continue
                    partner = value ^ probe
                    if partner in value_set and value < partner:
                        new_mask = mask & ~probe
                        next_level.add((value & new_mask, new_mask))
                        merged_away.add((value, mask))
                        merged_away.add((partner, mask))
        primes |= current - merged_away
        current = next_level
    return sorted(primes)


def covers(implicant: Implicant, minterm: int) -> bool:
    """Whether an implicant covers a minterm."""
    value, mask = implicant
    return (minterm & mask) == value


def _petrick_min_cover(
    primes: Sequence[Implicant], minterms: FrozenSet[int]
) -> List[Implicant]:
    """Exact minimum-cardinality cover via Petrick's method.

    Represents the product-of-sums as a set of sums (frozensets of prime
    indices), multiplies out with absorption, then picks a smallest product
    (ties broken by fewest total fixed letters, then lexicographically,
    for determinism).
    """
    if not minterms:
        return []
    products: Set[FrozenSet[int]] = {frozenset()}
    for minterm in sorted(minterms):
        covering = [i for i, prime in enumerate(primes) if covers(prime, minterm)]
        if not covering:  # pragma: no cover - primes always cover their minterms
            raise RuntimeError("minterm not covered by any prime implicant")
        new_products: Set[FrozenSet[int]] = set()
        for product in products:
            for index in covering:
                new_products.add(product | {index})
        # Absorption: drop supersets.
        pruned: Set[FrozenSet[int]] = set()
        for candidate in sorted(new_products, key=len):
            if not any(kept <= candidate and kept != candidate for kept in pruned):
                pruned.add(candidate)
        products = pruned
    def cost(product: FrozenSet[int]) -> tuple:
        literal_count = sum(bin(primes[i][1]).count("1") for i in product)
        return (len(product), literal_count, tuple(sorted(product)))

    best = min(products, key=cost)
    return [primes[i] for i in sorted(best)]


def implicant_formula(implicant: Implicant, alphabet: Sequence[str]) -> Formula:
    """Render one implicant as a conjunction of literals."""
    value, mask = implicant
    parts: List[Formula] = []
    for position, name in enumerate(alphabet):
        if not mask >> position & 1:
            continue
        atom = Var(name)
        parts.append(atom if value >> position & 1 else lnot(atom))
    return land(*parts)


def minimal_dnf(table: TruthTable) -> Formula:
    """An exact minimum-term DNF for the tabulated function."""
    if table.is_contradiction:
        return FALSE
    if table.is_tautology:
        return TRUE
    primes = prime_implicants(len(table.alphabet), table.minterms)
    chosen = _petrick_min_cover(primes, table.minterms)
    return big_or(implicant_formula(imp, table.alphabet) for imp in chosen)


def minimal_dnf_of_formula(
    formula: Formula, alphabet: Sequence[str] | None = None
) -> Formula:
    """Exact minimal DNF of a formula (tabulates first; small alphabets only)."""
    return minimal_dnf(TruthTable.of_formula(formula, alphabet))


def minimal_dnf_cost(table: TruthTable) -> Tuple[int, int]:
    """``(number of terms, number of literal occurrences)`` of the minimal DNF.

    This is the size measure the blow-up benchmarks report.
    """
    if table.is_contradiction or table.is_tautology:
        return (0, 0)
    primes = prime_implicants(len(table.alphabet), table.minterms)
    chosen = _petrick_min_cover(primes, table.minterms)
    literals = sum(bin(mask).count("1") for _, mask in chosen)
    return (len(chosen), literals)
