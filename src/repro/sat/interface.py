"""Formula-level SAT interface.

This is the decision-procedure layer the rest of the library uses: formulas
go in, truth comes out.  Internally every query is Tseitin-translated to CNF
(query-equivalent over the original letters — the library eats its own
dog food) and handed to the DPLL solver.

All functions take an optional ``alphabet``: the set of letters the models
range over.  The paper's semantics always evaluates models over
``V(T) ∪ V(P)``; passing a larger alphabet adds unconstrained letters, which
doubles model counts per extra letter — the helpers here make that explicit
rather than implicit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro import obs as _obs
from repro import runtime as _runtime

from ..logic import bitmodels as _bitmodels
from ..logic import shards as _shards
from ..logic import sparse as _sparse
from ..logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    evaluate_mask,
    iter_set_bits,
    truth_table,
)
from ..logic.shards import ShardedTable
from ..logic.sparse import SparseModelSet, SparseSpill
from ..logic.cnf import tseitin
from ..logic.formula import And, Formula, Not, Or, Var, _Constant, land, lnot
from ..logic.interpretation import Interpretation
from . import allsat as _allsat
from .enumerate import enumerate_models, enumerate_models_blocking
from .solver import CnfInstance, Solver


class _Encoding:
    """Mapping between letter names and solver variable indices."""

    def __init__(self) -> None:
        self.instance = CnfInstance()
        self.index_of: Dict[str, int] = {}
        self.name_of: Dict[int, str] = {}

    def var(self, name: str) -> int:
        existing = self.index_of.get(name)
        if existing is not None:
            return existing
        index = self.instance.new_var()
        self.index_of[name] = index
        self.name_of[index] = name
        return index

    def add_formula(self, formula: Formula) -> None:
        self._add_clauses(tseitin(formula, prefix="_sat"), asserted=True)

    def add_formula_unasserted(self, formula: Formula) -> int:
        """Encode ``formula``'s definitional clauses *without* asserting its
        root, and return the root as a signed solver literal.

        With the two-sided Tseitin clauses in place, the root literal is
        true exactly when the formula holds — so assuming (or adding) its
        negation constrains the search to ``¬formula``.  This is what the
        incremental-carrier path uses to enumerate only the delta
        ``new ∧ ¬old`` under assumptions.
        """
        return self._add_clauses(tseitin(formula, prefix="_sat"), asserted=False)

    def _add_clauses(self, result, asserted: bool) -> int:
        # Auxiliary letters must be fresh per formula: rename on the fly.
        rename: Dict[str, str] = {}
        for aux in result.aux_names:
            rename[aux] = f"_sat{self.instance.num_vars}_{aux}"
        clauses = result.clauses
        if not asserted:
            # tseitin() appends the root-asserting unit clause last; the
            # definitional clauses before it are kept in full.
            clauses = clauses[:-1]
        for clause in clauses:
            ints = []
            # Clauses are frozensets; iterate literals in sorted order so
            # variable numbering (first-encounter allocation) and watched
            # literal choice do not depend on PYTHONHASHSEED.
            for name, positive in sorted(clause):
                actual = rename.get(name, name)
                index = self.var(actual)
                ints.append(index if positive else -index)
            self.instance.add_clause(ints)
        root_name, root_positive = result.root
        index = self.var(rename.get(root_name, root_name))
        return index if root_positive else -index


def _encode(formulas: Iterable[Formula]) -> _Encoding:
    encoding = _Encoding()
    for formula in formulas:
        encoding.add_formula(formula)
    return encoding


def is_satisfiable(formula: Formula) -> bool:
    """Decide satisfiability of ``formula``."""
    encoding = _encode([formula])
    if encoding.instance.has_empty_clause:
        return False
    return Solver(encoding.instance).solve()


def is_valid(formula: Formula) -> bool:
    """Decide validity (truth in all interpretations)."""
    return not is_satisfiable(lnot(formula))


def entails(premise: Formula, conclusion: Formula) -> bool:
    """Decide ``premise |= conclusion`` via unsatisfiability of
    ``premise ∧ ¬conclusion``."""
    return not is_satisfiable(land(premise, lnot(conclusion)))


def equivalent(left: Formula, right: Formula) -> bool:
    """Decide logical equivalence (criterion (2) of the paper)."""
    return entails(left, right) and entails(right, left)


def query_equivalent(
    left: Formula,
    right: Formula,
    alphabet: Optional[Iterable[str]] = None,
) -> bool:
    """Decide query equivalence over ``alphabet`` (criterion (1)).

    ``left`` and ``right`` are query-equivalent over an alphabet ``A`` when
    they have the same models *projected onto A* — equivalently, the same
    entailed formulas over ``A``.  Defaults to the union of both formulas'
    letters minus nothing, i.e. the caller should normally pass
    ``V(T) ∪ V(P)`` explicitly; without an alphabet this degenerates to
    comparing projections onto the *shared* original letters.
    """
    if alphabet is None:
        alphabet = left.variables() | right.variables()
    names = sorted(set(alphabet))
    left_models = set(models(left, names))
    right_models = set(models(right, names))
    return left_models == right_models


#: Work bound for the bit-parallel truth-table fast path (table width times
#: formula node count); above it, incremental SAT enumeration wins.
#: The bit-parallel sweep processes a machine word of interpretations per
#: big-int word operation, so the budget is far above the old per-model
#: evaluation bound.
_BRUTE_FORCE_BUDGET = 1 << 28

#: Work bound for the sharded tier, measured in 64-bit words times formula
#: node count (the sharded sweep touches one word per vectorised step).
#: Sized so the clause counts the perf workloads carry at the 26-letter
#: shard cutoff (hundreds of nodes over 2^20 words) still compile on the
#: vectorised sweep rather than falling back to per-model SAT enumeration.
_SHARDED_WORD_BUDGET = 1 << 30


def _wants_bit_parallel(formula: Formula, names: Sequence[str]) -> bool:
    """Big-int tier: alphabet under the (live) table cutoff and affordable."""
    if len(names) > _bitmodels._TABLE_MAX_LETTERS:
        return False
    work = (1 << len(names)) * max(formula.node_count(), 1)
    return work <= _BRUTE_FORCE_BUDGET


def _wants_sharded(formula: Formula, names: Sequence[str]) -> bool:
    """Sharded tier: between the table cutoff and the shard cutoff."""
    if _shards.tier(len(names)) != "sharded":
        return False
    words = max(1, (1 << len(names)) >> 6)
    return words * max(formula.node_count(), 1) <= _SHARDED_WORD_BUDGET


def _projected_engine(formula: Formula, names: Sequence[str]) -> str:
    """Which engine serves ``formula`` projected onto ``names``.

    The one dispatch ladder behind :func:`models`, :func:`bit_models` and
    :func:`count_models`: ``"table"`` (bit-parallel big-int sweep) under
    the table cutoff, ``"sharded"`` (bitplane compile) under the shard
    cutoff, ``"sat"`` (incremental enumeration) beyond — and always
    ``"sat"`` when the formula mentions letters outside the projection,
    which only the solver can quantify away.
    """
    if formula.variables() - set(names):
        return "sat"
    if _wants_bit_parallel(formula, names):
        return "table"
    if _wants_sharded(formula, names):
        return "sharded"
    return "sat"


def compilation_tier(
    formula: Formula,
    alphabet: Optional[Iterable[str]] = None,
) -> str:
    """The engine tier that would serve ``formula`` over ``alphabet``.

    Public face of the dispatch ladder — ``"table"``, ``"sharded"`` or
    ``"sat"`` — for layers that need the routing decision *without*
    triggering the compile: the artifact store keys its persistence
    policy on it (sharded tiers persist bitplanes, the SAT tier persists
    the enumerated sparse carrier; the big-int table tier recompiles
    faster than a disk read).  Same live knobs, same answer as
    :func:`models`/:func:`bit_models` would act on at this instant.
    """
    if alphabet is None:
        names = sorted(formula.variables())
    else:
        names = sorted(set(alphabet))
    return _projected_engine(formula, names)


def models(
    formula: Formula,
    alphabet: Optional[Iterable[str]] = None,
    limit: Optional[int] = None,
) -> Iterator[Interpretation]:
    """Enumerate models of ``formula`` projected onto ``alphabet``.

    Each model is a frozenset of the alphabet letters assigned true (the
    paper's representation).  Default alphabet: the formula's own letters.

    Two engines, chosen by a cost estimate: a bit-parallel truth-table
    sweep for small alphabets (the formula compiles to one big-int column;
    see :mod:`repro.logic.bitmodels`), incremental SAT enumeration
    (:mod:`repro.sat.allsat`; the blocking-clause loop under
    ``REPRO_ALLSAT=0``) otherwise.  The sweep yields masks in ascending
    order over the sorted alphabet — the same deterministic order as the
    historical per-model evaluation; the SAT engines' order is
    engine-defined (the model *set* is identical).
    """
    if alphabet is None:
        names = sorted(formula.variables())
    else:
        names = sorted(set(alphabet))
    engine = _projected_engine(formula, names)
    if engine == "table":
        bit_alphabet = BitAlphabet.coerce(names)
        table = truth_table(formula, bit_alphabet)
        produced = 0
        for mask in iter_set_bits(table):
            yield bit_alphabet.set_of(mask)
            produced += 1
            if limit is not None and produced >= limit:
                return
        return
    if engine == "sharded":
        bit_alphabet = BitAlphabet.coerce(names)
        sharded = ShardedTable.from_formula(formula, bit_alphabet)
        produced = 0
        for mask in sharded.iter_set_bits():
            yield bit_alphabet.set_of(mask)
            produced += 1
            if limit is not None and produced >= limit:
                return
        return
    encoding = _encode([formula])
    # Ensure every projection letter exists in the encoding even when the
    # formula does not mention it (unconstrained letters double the models).
    projection = [encoding.var(name) for name in names]
    for projected in enumerate_models(encoding.instance, projection, limit):
        yield frozenset(
            encoding.name_of[lit] for lit in projected if lit > 0
        )


def bit_models(
    formula: Formula,
    alphabet: "Optional[BitAlphabet | Iterable[str]]" = None,
) -> BitModelSet:
    """The model set of ``formula`` over ``alphabet`` in bitmask form.

    This is the engine entry point used by the revision core: below the
    truth-table cutoff the whole model set is one big-int expression;
    between the table and shard cutoffs it is a sharded-table compile
    (numpy bitplanes, masks left unmaterialised); beyond that — or when
    the formula mentions letters outside the projection alphabet — the
    incremental AllSAT enumerator of :mod:`repro.sat.allsat` fills the
    set, emitting *cubes* (partial models with don't-care letters)
    straight into packed masks — and, past every bitplane cutoff, straight
    into the sparse tier's :class:`~repro.logic.sparse.SparseModelSet`
    column blocks, so the carrier the selection rules run on is built in
    one pass (``REPRO_ALLSAT=0`` restores the blocking-clause loop).  The
    operators feed the enumerated set's model count to
    :func:`repro.logic.shards.tier`, which routes bounded-density sets to
    the density-proportional sparse engine instead of the per-pair mask
    loops (see :func:`model_count_bound` for the pre-compilation density
    estimate).

    A table/sharded compile that overflows memory (a host
    ``MemoryError`` or the word cap of an active
    :class:`repro.runtime.Budget`) demotes to the SAT enumerator — the
    terminal, density-proportional tier — instead of crashing; the model
    set is identical either way and the hop is counted by
    :func:`repro.runtime.record_demotion`.
    """
    if alphabet is None:
        bit_alphabet = BitAlphabet.coerce(formula.variables())
    else:
        bit_alphabet = BitAlphabet.coerce(alphabet)
    engine = _projected_engine(formula, bit_alphabet.letters)
    with _obs.span(
        "compile", letters=len(bit_alphabet.letters), engine=engine
    ) as compile_span:
        if engine == "table":
            try:
                return BitModelSet.from_table(
                    bit_alphabet, truth_table(formula, bit_alphabet)
                )
            except MemoryError:
                _runtime.record_demotion("table", "masks")
                compile_span.set("demoted", "table->masks")
        elif engine == "sharded":
            try:
                return BitModelSet.from_sharded(
                    bit_alphabet,
                    ShardedTable.from_formula(formula, bit_alphabet),
                )
            except MemoryError:
                _runtime.record_demotion("sharded", "masks")
                compile_span.set("demoted", "sharded->masks")
        if engine != "sat":
            compile_span.set("engine", "sat")
        return _enumerated_bit_models(formula, bit_alphabet)


def _projection_bits(
    encoding: _Encoding, bit_alphabet: BitAlphabet
) -> Tuple[List[int], Dict[int, int]]:
    """Solver projection variables for the alphabet plus their bit map."""
    projection = [encoding.var(name) for name in bit_alphabet.letters]
    bit_of = {
        var: bit_alphabet.bit(encoding.name_of[var]) for var in projection
    }
    return projection, bit_of


def _blocking_mask_stream(
    instance: CnfInstance, projection: List[int], bit_of: Dict[int, int]
) -> Iterator[int]:
    """Packed masks out of the blocking-clause loop (``REPRO_ALLSAT=0``)."""
    for projected in enumerate_models_blocking(instance, projection):
        mask = 0
        for lit in projected:
            if lit > 0:
                mask |= 1 << bit_of[lit]
        yield mask


def _wrap_enumerated_masks(
    bit_alphabet: BitAlphabet, masks: List[int]
) -> BitModelSet:
    """An enumerated mask list as a :class:`BitModelSet` — carried on the
    sparse column blocks when the alphabet is past every bitplane cutoff
    and the set fits the budget (so the selection rules find their
    carrier pre-built), a plain mask set otherwise."""
    if _shards.tier(len(bit_alphabet)) == "masks" and _shards.SPARSE_TIER:
        try:
            return BitModelSet.from_sparse(
                bit_alphabet, SparseModelSet.from_masks(bit_alphabet, masks)
            )
        except SparseSpill:
            pass
    return BitModelSet(bit_alphabet, masks)


def _enumerated_bit_models(
    formula: Formula, bit_alphabet: BitAlphabet
) -> BitModelSet:
    """The SAT-tier model set: incremental cubes straight to masks.

    With the AllSAT enumerator live, cubes expand directly into packed
    mask ints (no per-model tuples, dicts or Interpretation objects); on
    sparse-tier alphabets the cubes expand into the
    :class:`~repro.logic.sparse.SparseModelSet` column blocks themselves,
    so the carrier the selection rules run on is built in one pass and the
    mask frozenset never materialises.  ``REPRO_ALLSAT=0`` restores the
    blocking-clause loop.
    """
    with _obs.span(
        "sat.enumerate", letters=len(bit_alphabet.letters)
    ) as sat_span:
        before = (
            {key: _allsat.STATS.get(key, 0) for key in _ENUM_DELTA_KEYS}
            if _obs.tracing() else None
        )
        try:
            return _enumerated_bit_models_impl(formula, bit_alphabet)
        finally:
            if before is not None:
                for key in _ENUM_DELTA_KEYS:
                    sat_span.set(
                        key, _allsat.STATS.get(key, 0) - before[key]
                    )
                sat_span.set(
                    "learned_db", _allsat.STATS.get("learned_db", 0)
                )


#: The per-enumeration CDCL activity reported on ``sat.enumerate`` spans
#: (deltas of the ``allsat.*`` counters across the call, workers included).
_ENUM_DELTA_KEYS = (
    "cubes",
    "models",
    "resumes",
    "conflicts",
    "propagations",
    "learned",
    "restarts",
)


def _enumerated_bit_models_impl(
    formula: Formula, bit_alphabet: BitAlphabet
) -> BitModelSet:
    encoding = _encode([formula])
    projection, bit_of = _projection_bits(encoding, bit_alphabet)
    if _allsat.enabled():
        cubes = list(_allsat.enumerate_cubes(encoding.instance, projection))
        if (
            _shards.tier(len(bit_alphabet)) == "masks"
            and _shards.SPARSE_TIER
        ):
            # Past every bitplane cutoff the sparse carrier is the target
            # representation: emit the cubes straight into it.
            try:
                carrier = SparseModelSet.from_cubes(
                    bit_alphabet,
                    (cube.mask_pair(bit_of) for cube in cubes),
                )
                return BitModelSet.from_sparse(bit_alphabet, carrier)
            except SparseSpill:
                # Denser than the sparse budget: fall through to the
                # plain mask set, re-expanding the cubes already in hand
                # (the solver does not run again).
                pass
        return BitModelSet(
            bit_alphabet, _allsat.cube_masks(cubes, bit_of)
        )
    return _wrap_enumerated_masks(
        bit_alphabet,
        list(_blocking_mask_stream(encoding.instance, projection, bit_of)),
    )


def count_models(
    formula: Formula,
    alphabet: Optional[Iterable[str]] = None,
    limit: Optional[int] = None,
) -> int:
    """Count models of ``formula`` over ``alphabet`` (capped at ``limit``).

    Never materialises per-model objects: the table tiers answer with a
    popcount, and the SAT tier sums ``2^k`` over the incremental
    enumerator's cubes (:func:`repro.sat.allsat.count_models`) — this is
    what keeps the :func:`model_count_bound` dispatch probe cheap at
    40-letter alphabets.  ``REPRO_ALLSAT=0`` falls back to counting the
    blocking-clause stream.  A non-positive ``limit`` is 0 on every tier.
    """
    if limit is not None and limit <= 0:
        return 0
    if alphabet is None:
        names: Sequence[str] = sorted(formula.variables())
    else:
        names = sorted(set(alphabet))
    engine = _projected_engine(formula, names)
    if engine == "table":
        try:
            count = truth_table(formula, BitAlphabet.coerce(names)).bit_count()
            return count if limit is None else min(count, limit)
        except MemoryError:
            _runtime.record_demotion("table", "masks")
    elif engine == "sharded":
        try:
            sharded = ShardedTable.from_formula(
                formula, BitAlphabet.coerce(names)
            )
            count = sharded.popcount()
            return count if limit is None else min(count, limit)
        except MemoryError:
            _runtime.record_demotion("sharded", "masks")
    encoding = _encode([formula])
    projection = [encoding.var(name) for name in names]
    if _allsat.enabled():
        with _obs.span(
            "sat.count", letters=len(names)
        ) as count_span:
            count = _allsat.count_models(encoding.instance, projection, limit)
            count_span.set("count", count)
            return count
    total = 0
    for _ in enumerate_models_blocking(encoding.instance, projection, limit):
        total += 1
    return total


def _literal_name(node: Formula) -> Optional[str]:
    """The letter of a literal (``x`` / ``~x``), None for anything else."""
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Not) and isinstance(node.operand, Var):
        return node.operand.name
    return None


def _structural_bound(
    node: Formula, names: FrozenSet[str], cap: int
) -> int:
    """A cheap, sound upper bound on the *projected* model count over the
    ``names`` alphabet (capped at ``cap``).

    Recursion over the formula shape: a literal halves the space, a
    conjunction is bounded by its tightest conjunct *and* by the distinct
    letters its literal conjuncts fix, a disjunction by the sum of its
    disjuncts — so a DNF of ``m`` full cubes over ``n`` letters bounds to
    ``m`` exactly, without touching a solver.  Anything else (Xor, Iff,
    Implies, bare Not of a compound) falls back to ``2^n``.  Only letters
    *inside* the alphabet may tighten the bound: a literal on a projected-
    away letter constrains nothing the projection can see.
    """
    letter_count = len(names)
    full = min(cap, 1 << letter_count) if letter_count < 64 else cap
    literal = _literal_name(node)
    if literal is not None:
        if literal not in names:
            return full
        return min(cap, 1 << (letter_count - 1)) if letter_count >= 1 else 1
    if isinstance(node, _Constant):
        return 0 if not node.value else full
    if isinstance(node, And):
        fixed = set()
        best = full
        for operand in node.operands:
            name = _literal_name(operand)
            if name is not None:
                if name in names:
                    fixed.add(name)
            else:
                best = min(best, _structural_bound(operand, names, cap))
        free = letter_count - len(fixed)
        if free < 64:
            best = min(best, 1 << max(0, free))
        return min(cap, best)
    if isinstance(node, Or):
        total = 0
        for operand in node.operands:
            total += _structural_bound(operand, names, cap)
            if total >= cap:
                return cap
        return total
    return full


def model_count_bound(
    formula: Formula,
    alphabet: "Optional[BitAlphabet | Iterable[str]]" = None,
    budget: Optional[int] = None,
    probe: bool = True,
) -> Optional[int]:
    """An upper bound on ``formula``'s model count over ``alphabet``, or
    ``None`` when no bound at or below ``budget`` could be established.

    This is the density estimate the four-tier dispatch of
    :func:`repro.logic.shards.tier` wants before anything is compiled —
    "does this knowledge base fit the sparse carrier?" — answered in two
    stages:

    * a **cheap structural bound** from the formula shape (conjuncts fix
      letters, disjuncts add, a cube DNF bounds to its cube count), no
      solver involved;
    * failing that, and only when ``probe`` is true, a **SAT-count
      probe**: incremental enumeration capped at ``budget + 1`` models —
      counted as ``sum(2^k)`` over the enumerator's cubes, with no
      per-model object ever materialised — an exact count when it stops
      early, ``None`` (density too high for the sparse tier) when it
      doesn't.

    ``budget`` defaults to the live sparse budget
    (``shards.SPARSE_MAX_MODELS``).
    """
    if budget is None:
        budget = _shards.SPARSE_MAX_MODELS
    if alphabet is None:
        names: Sequence[str] = sorted(formula.variables())
    else:
        names = sorted(set(alphabet))
    bound = _structural_bound(formula, frozenset(names), budget + 1)
    if bound <= budget:
        return bound
    if not probe:
        return None
    counted = count_models(formula, names, limit=budget + 1)
    return counted if counted <= budget else None


def incremental_bit_models(
    formula: Formula,
    alphabet: "BitAlphabet | Iterable[str]",
    previous_formula: Formula,
    previous_bits: BitModelSet,
) -> BitModelSet:
    """The model set of ``formula``, seeded from a previously enumerated one.

    The incremental-carrier path of the revision service
    (:class:`repro.revision.batch.BatchCache`): when only the revising
    formula changes between requests over the same alphabet,

    ``models(new) = { m ∈ models(old) : m |= new }  ∪  models(new ∧ ¬old)``

    — the left part *re-checks the old carrier* against the new constraint
    (vectorised over the sparse column blocks when available), and the
    right part *enumerates only the delta*: the old formula's definitional
    clauses are encoded without asserting their root
    (:meth:`_Encoding.add_formula_unasserted`) and the enumeration runs
    under the assumption ``¬root(old)``.  For a stream of small edits the
    delta is a few models where a fresh enumeration would redo all of
    them; the result is exactly :func:`bit_models`'s (the hypothesis suite
    asserts parity).

    ``previous_bits`` must be ``models(previous_formula)`` over the same
    alphabet, and both formulas' letters must lie inside it.
    """
    bit_alphabet = BitAlphabet.coerce(alphabet)
    if previous_bits.alphabet != bit_alphabet:
        raise ValueError("previous model set ranges over a different alphabet")
    extra = (formula.variables() | previous_formula.variables()) - set(
        bit_alphabet.letters
    )
    if extra:
        raise ValueError(
            f"formula letters {sorted(extra)} outside the carrier alphabet"
        )
    # Re-check the old carrier against the new constraint.
    with _obs.span(
        "sat.incremental", letters=len(bit_alphabet.letters)
    ) as inc_span:
        return _incremental_bit_models_impl(
            formula, bit_alphabet, previous_formula, previous_bits, inc_span
        )


def _incremental_bit_models_impl(
    formula: Formula,
    bit_alphabet: BitAlphabet,
    previous_formula: Formula,
    previous_bits: BitModelSet,
    inc_span,
) -> BitModelSet:
    try:
        carrier = previous_bits.sparse()
        flags = _sparse.evaluate_formula(formula, carrier)
        kept = [
            mask for mask, ok in zip(carrier.iter_masks(), flags) if ok
        ]
    except SparseSpill:
        kept = [
            mask
            for mask in previous_bits.iter_masks()
            if evaluate_mask(formula, mask, bit_alphabet)
        ]
    # Enumerate only the delta: models of ``new ∧ ¬old``.
    encoding = _encode([formula])
    old_root = encoding.add_formula_unasserted(previous_formula)
    projection, bit_of = _projection_bits(encoding, bit_alphabet)
    if _allsat.enabled():
        delta = _allsat.cube_masks(
            _allsat.enumerate_cubes(
                encoding.instance, projection, assumptions=[-old_root]
            ),
            bit_of,
        )
    else:
        encoding.instance.add_clause([-old_root])
        delta = _blocking_mask_stream(encoding.instance, projection, bit_of)
    kept = list(kept)
    count = len(kept)
    kept.extend(delta)
    inc_span.set("kept", count)
    inc_span.set("delta", len(kept) - count)
    return _wrap_enumerated_masks(bit_alphabet, kept)


def satisfies(model: Iterable[str], formula: Formula) -> bool:
    """Model checking ``M |= F`` — direct evaluation, polynomial time.

    This is the operation Definition 7.1's ``ASK`` algorithm performs; kept
    here so callers treat it symmetrically with :func:`entails`.
    """
    return formula.evaluate(frozenset(model))
