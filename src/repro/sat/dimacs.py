"""DIMACS CNF import/export for the SAT substrate."""

from __future__ import annotations

from typing import Iterable, List, TextIO

from .solver import CnfInstance


def write_dimacs(instance: CnfInstance, stream: TextIO, comment: str = "") -> None:
    """Serialise a :class:`CnfInstance` in DIMACS ``cnf`` format."""
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    stream.write(f"p cnf {instance.num_vars} {len(instance.clauses)}\n")
    for clause in instance.clauses:
        stream.write(" ".join(str(lit) for lit in clause) + " 0\n")


def read_dimacs(stream: TextIO) -> CnfInstance:
    """Parse DIMACS ``cnf`` into a :class:`CnfInstance`.

    Tolerant of comments, blank lines and clauses spanning several lines.
    """
    instance = CnfInstance()
    declared_vars = 0
    pending: List[int] = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                instance.add_clause(pending)
                pending = []
            else:
                pending.append(lit)
    if pending:
        instance.add_clause(pending)
    if declared_vars > instance.num_vars:
        instance.num_vars = declared_vars
    return instance
