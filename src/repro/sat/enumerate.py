"""Model enumeration over CNF instances, with projection.

Enumeration uses the classic blocking-clause loop: solve, emit the model
restricted to the projection variables, add the clause forbidding that
projection, repeat.  With projection this enumerates each *projected* model
exactly once, which is what the revision semantics need (models over
``V(T) ∪ V(P)`` of a Tseitin-translated formula, ignoring auxiliary
definitional letters).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .solver import CnfInstance, Solver


def enumerate_models(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield models of ``instance`` projected onto ``projection`` variables.

    Each yielded value is a tuple of signed literals covering exactly the
    projection variables (sorted by variable index).  Without projection,
    full models over all variables are produced.

    ``limit`` caps the number of models (useful as a guard in tests).
    """
    if instance.has_empty_clause:
        return
    solver = Solver(instance)
    if projection is None:
        proj_vars: List[int] = list(range(1, instance.num_vars + 1))
    else:
        proj_vars = sorted(set(projection))
    produced = 0
    while solver.solve():
        model = solver.model()
        value = {abs(lit): lit > 0 for lit in model}
        projected = tuple(
            var if value.get(var, False) else -var for var in proj_vars
        )
        yield projected
        produced += 1
        if limit is not None and produced >= limit:
            return
        if not proj_vars:
            return  # a single empty projection: exactly one projected model
        solver.add_clause([-lit for lit in projected])


def count_models(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> int:
    """Count projected models (up to ``limit`` if given)."""
    total = 0
    for _ in enumerate_models(instance, projection, limit):
        total += 1
    return total
