"""Model enumeration over CNF instances, with projection.

This module is the stable front door; since PR 5 it is a thin dispatcher.
The default engine is the **incremental AllSAT enumerator** of
:mod:`repro.sat.allsat` — one solver per enumeration, resumed
chronologically after each model, with cube generalization and component
splitting — which replaced the classic blocking-clause loop as the
production path (the loop restarts DPLL per model against an ever-growing
clause pile, quadratic in the model count).

The blocking-clause loop is retained verbatim as
:func:`enumerate_models_blocking`: it is the independent reference
implementation the hypothesis suite checks the enumerator against, and
setting ``REPRO_ALLSAT=0`` routes :func:`enumerate_models` back onto it
for A/B timing (the knob is read live, so harnesses can flip it
in-process).

With projection, both engines enumerate each *projected* model exactly
once, which is what the revision semantics need (models over
``V(T) ∪ V(P)`` of a Tseitin-translated formula, ignoring auxiliary
definitional letters).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from . import allsat as _allsat
from .solver import CnfInstance, Solver


def enumerate_models(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield models of ``instance`` projected onto ``projection`` variables.

    Each yielded value is a tuple of signed literals covering exactly the
    projection variables (sorted by variable index).  Without projection,
    full models over all variables are produced.

    ``limit`` caps the number of models (useful as a guard in tests).

    Engine: the incremental enumerator of :mod:`repro.sat.allsat` unless
    ``REPRO_ALLSAT=0``, in which case the blocking-clause reference loop
    runs.  Both produce the same model *set*; the iteration order is
    engine-defined (callers that need an order sort or collect into sets,
    as the library itself does).
    """
    if _allsat.enabled():
        return _allsat.enumerate_models(instance, projection, limit)
    return enumerate_models_blocking(instance, projection, limit)


def enumerate_models_blocking(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """The classic blocking-clause loop: solve, emit the model restricted
    to the projection, add the clause forbidding that projection, repeat.

    Quadratic in the model count (every restart re-propagates the grown
    clause database) — kept as the ``REPRO_ALLSAT=0`` reference path and
    the parity oracle for the incremental enumerator's tests.
    """
    if instance.has_empty_clause:
        return
    solver = Solver(instance)
    if projection is None:
        proj_vars: List[int] = list(range(1, instance.num_vars + 1))
    else:
        proj_vars = sorted(set(projection))
    produced = 0
    while solver.solve():
        model = solver.model()
        value = {abs(lit): lit > 0 for lit in model}
        projected = tuple(
            var if value.get(var, False) else -var for var in proj_vars
        )
        yield projected
        produced += 1
        if limit is not None and produced >= limit:
            return
        if not proj_vars:
            return  # a single empty projection: exactly one projected model
        solver.add_clause([-lit for lit in projected])


def count_models(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
) -> int:
    """Count projected models (up to ``limit`` if given).

    On the incremental engine this sums ``2^k`` over the enumerator's
    cubes without expanding them — a DNF-shaped instance counts in
    ``O(#cubes)`` solver resumes.  A non-positive ``limit`` is 0 on both
    engines.
    """
    if limit is not None and limit <= 0:
        return 0
    if _allsat.enabled():
        return _allsat.count_models(instance, projection, limit)
    total = 0
    for _ in enumerate_models_blocking(instance, projection, limit):
        total += 1
    return total
