"""A from-scratch DPLL SAT solver with two-watched-literals.

The solver operates on integer literals in the usual DIMACS convention:
variables are ``1..n`` and the literal ``-v`` is the negation of ``v``.
Features:

* two-watched-literal unit propagation,
* conflict-driven branching-order scores (a light VSIDS variant: bump the
  variables of conflicting clauses and decay periodically),
* optional assumption literals (used by the incremental model-enumeration
  layer),
* deterministic behaviour — no randomness, so every test and benchmark is
  reproducible.

This is the substrate standing in for the abstract NP/coNP oracles of the
paper: every entailment test ``T * P |= Q``, consistency check inside
``W(T,P)``, and equivalence verification runs through here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class CnfInstance:
    """A mutable CNF instance over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        self._contradiction = False

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause; tautologies are dropped, the empty clause recorded."""
        seen: set[int] = set()
        out: List[int] = []
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if not out:
            self._contradiction = True
        self.clauses.append(out)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def has_empty_clause(self) -> bool:
        return self._contradiction


class Solver:
    """DPLL with watched literals over a :class:`CnfInstance` snapshot.

    The instance is copied at construction: adding clauses to the original
    afterwards does not affect the solver.  For the incremental patterns the
    library needs (blocking clauses during enumeration), create the solver
    once and call :meth:`add_clause` on it directly.
    """

    def __init__(self, instance: CnfInstance) -> None:
        self.num_vars = instance.num_vars
        self.clauses: List[List[int]] = [list(c) for c in instance.clauses]
        self._unsat_forever = instance.has_empty_clause
        # assignment[v] in (-1 unassigned, 0 false, 1 true)
        self._assign: List[int] = [-1] * (self.num_vars + 1)
        self._level: List[int] = [0] * (self.num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (self.num_vars + 1)
        self._watches: Dict[int, List[int]] = {}
        self._init_watches()

    # -- construction helpers -------------------------------------------------

    def _init_watches(self) -> None:
        self._units: List[int] = []
        for index, clause in enumerate(self.clauses):
            self._watch_clause(index, clause)

    def _watch_clause(self, index: int, clause: List[int]) -> None:
        if not clause:
            self._unsat_forever = True
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        for lit in clause[:2]:
            self._watches.setdefault(-lit, []).append(index)

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause incrementally (solver must be at decision level 0)."""
        self._backtrack_to(0)
        out: List[int] = []
        seen: set[int] = set()
        for lit in clause:
            var = abs(lit)
            if var > self.num_vars:
                self._grow(var)
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self.clauses.append(out)
        self._watch_clause(len(self.clauses) - 1, out)

    def _grow(self, new_num_vars: int) -> None:
        extra = new_num_vars - self.num_vars
        self._assign.extend([-1] * extra)
        self._level.extend([0] * extra)
        self._activity.extend([0.0] * extra)
        self.num_vars = new_num_vars

    # -- assignment primitives --------------------------------------------------

    def _value(self, lit: int) -> int:
        """-1 unassigned, 1 satisfied, 0 falsified."""
        val = self._assign[abs(lit)]
        if val < 0:
            return -1
        return val if lit > 0 else 1 - val

    def _enqueue(self, lit: int) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)
        return True

    def _propagate(self, queue_start: int) -> Optional[List[int]]:
        """Unit propagation from trail position ``queue_start``.

        Returns a conflicting clause, or ``None`` on success.
        """
        head = queue_start
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            watch_list = self._watches.get(lit)
            if not watch_list:
                continue
            keep: List[int] = []
            conflict: Optional[List[int]] = None
            position = 0
            while position < len(watch_list):
                clause_index = watch_list[position]
                position += 1
                clause = self.clauses[clause_index]
                # Normalise: make clause[1] the falsified watch (-lit).
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                if self._value(clause[0]) == 1:
                    keep.append(clause_index)
                    continue
                moved = False
                for alt in range(2, len(clause)):
                    if self._value(clause[alt]) != 0:
                        clause[1], clause[alt] = clause[alt], clause[1]
                        self._watches.setdefault(-clause[1], []).append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause_index)
                if not self._enqueue(clause[0]):
                    conflict = clause
                    keep.extend(watch_list[position:])
                    break
            watch_list[:] = keep
            if conflict is not None:
                return conflict
        return None

    def _backtrack_to(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            self._assign[abs(lit)] = -1
        del self._trail[boundary:]
        del self._trail_lim[level:]

    # -- branching heuristic -----------------------------------------------------

    def _bump_clause(self, clause: Sequence[int]) -> None:
        for lit in clause:
            self._activity[abs(lit)] += 1.0

    def _decay(self) -> None:
        self._activity = [a * 0.9 for a in self._activity]

    def _pick_branch(self) -> int:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self._assign[var] < 0 and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        return best_var

    # -- main search ----------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under the given assumption literals."""
        if self._unsat_forever:
            return False
        self._backtrack_to(0)
        # Level-0 units (original unit clauses).
        for lit in self._units:
            if not self._enqueue(lit):
                return False
        if self._propagate(0) is not None:
            return False
        root = len(self._trail)

        # Assumption level.
        self._trail_lim.append(len(self._trail))
        for lit in assumptions:
            if abs(lit) > self.num_vars:
                self._grow(abs(lit))
            if not self._enqueue(lit):
                self._backtrack_to(0)
                return False
        if self._propagate(root) is not None:
            self._backtrack_to(0)
            return False

        conflicts = 0
        while True:
            branch_var = self._pick_branch()
            if branch_var == 0:
                return True  # all assigned, no conflict
            # Try positive phase first (deterministic).
            self._trail_lim.append(len(self._trail))
            queue_start = len(self._trail)
            self._enqueue(branch_var)
            while True:
                conflict = self._propagate(queue_start)
                if conflict is None:
                    break
                self._bump_clause(conflict)
                conflicts += 1
                if conflicts % 256 == 0:
                    self._decay()
                # Chronological backtracking with phase flip.
                flipped = self._flip_last_decision()
                if flipped is None:
                    self._backtrack_to(0)
                    return False
                queue_start = flipped

    def _flip_last_decision(self) -> Optional[int]:
        """Undo the deepest decision still on its first phase and flip it.

        Decisions are recorded implicitly: level ``i`` starts at trail index
        ``self._trail_lim[i]`` and the decision literal sits at that index.
        Levels whose decision was already flipped are popped.  Returns the
        trail position propagation should restart from, or ``None`` when only
        the assumption level remains.
        """
        while len(self._trail_lim) > 1:
            level = len(self._trail_lim) - 1
            boundary = self._trail_lim[level]
            decision = self._trail[boundary] if boundary < len(self._trail) else None
            self._backtrack_to(level)
            if decision is None:
                continue
            if decision > 0:
                # First phase was positive; try negative now at same depth.
                self._trail_lim.append(len(self._trail))
                position = len(self._trail)
                if self._enqueue(-decision):
                    return position
                # Cannot even enqueue: continue unwinding.
                self._backtrack_to(level)
            # decision < 0 means both phases exhausted: keep unwinding.
        return None

    def model(self) -> List[int]:
        """The satisfying assignment from the last successful :meth:`solve`.

        Unassigned variables (possible when the formula does not constrain
        them) default to false.
        """
        out: List[int] = []
        for var in range(1, self.num_vars + 1):
            value = self._assign[var]
            out.append(var if value == 1 else -var)
        return out
