"""A from-scratch CDCL SAT solver with two-watched-literals.

The solver operates on integer literals in the usual DIMACS convention:
variables are ``1..n`` and the literal ``-v`` is the negation of ``v``.
Features:

* two-watched-literal unit propagation (the watched pair lives in
  solver-owned side arrays, never inside the clause lists — so clause
  lists are immutable and shared, see below),
* **CDCL**: first-UIP conflict analysis with clause learning and
  non-chronological backjumping (``REPRO_CDCL=0`` restores the plain
  chronological DPLL for A/B parity runs),
* MiniSat-style VSIDS branching — bump every variable the conflict
  analysis touches by a growing increment and rescale, which is the
  exponential-decay scheme ``dpll2.py`` in SNIPPETS.md sketches (the
  ``REPRO_CDCL=0`` path keeps the original light variant: bump the
  conflicting clause, decay periodically),
* Luby-sequence restarts, *automatically disabled while the solver is
  mid-enumeration* (see below) so the resumable AllSAT stream stays
  duplicate-free,
* learned-clause database reduction keyed by clause activity with LBD
  (glue) protection, tombstoning clause slots so indices stay stable,
* optional assumption literals (used by the incremental model-enumeration
  layer),
* a resumable search protocol (:meth:`Solver.next_model`) for the
  AllSAT enumerator of :mod:`repro.sat.allsat`: after a model, the search
  backtracks to the deepest still-open decision and *continues* instead
  of restarting against blocking clauses,
* deterministic behaviour — no randomness, so every test and benchmark is
  reproducible.

**CDCL under resumable enumeration.**  Learned clauses are derived by
resolution over the clause database only (decisions and assumptions are
never resolved away — they stay in the learned clause as literals), so
every learned clause is *implied by the input formula* and can never
exclude a model: learning is sound across ``next_model`` resumes, across
repeated ``solve`` calls with different assumptions, and for the
blocking-clause loop.  What is **not** free is the backjump: the
enumerator encodes "these models were already emitted" purely in the
*flipped* (second-phase, negative) decisions on the trail, so jumping
above the deepest flipped decision would tear down the guard and revisit
emitted models.  The solver therefore clamps every backjump to the
deepest flipped-decision level (the *enumeration floor*); a conflict at
or below the floor falls back to the chronological
:meth:`_flip_last_decision`, which is exactly the PR 5 behaviour.
Between two emitted models the region below the floor contains no
emitted model, so full first-UIP backjumping applies there.  Restarts
reuse the same floor: they only fire when no flipped decision exists —
i.e. before the first model of an enumeration and in every plain
``solve`` — and are thereby "disabled during enumeration" without any
extra bookkeeping.

**Copy-on-write clause storage.**  ``Solver(instance)`` does *not* deep-copy
the clause lists: it takes a shallow copy of the clause container, shares
the (immutable) clause prefix with the instance, and appends
solver-private clauses — blocking clauses, learned clauses, incremental
additions — to its own tail.  The watched-literal machinery keeps its
state in per-clause side arrays instead of reordering clause lists in
place, which is what makes the sharing safe.  Learned-clause reduction
*tombstones* a slot (sets it to ``None``) instead of compacting the list,
so clause indices — including the shared prefix — never move.

This is the substrate standing in for the abstract NP/coNP oracles of the
paper: every entailment test ``T * P |= Q``, consistency check inside
``W(T,P)``, and equivalence verification runs through here.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import runtime as _runtime
from repro.runtime import faults as _faults

#: Conflicts before the first restart; later restarts scale by the Luby
#: sequence.  Module attribute so tests can shrink it to force restarts.
RESTART_BASE = 128

#: Initial learned-clause budget before a database reduction; grows by
#: half after every reduction.  Module attribute for the same reason.
LEARNED_BASE = 2000


def cdcl_enabled() -> bool:
    """Whether clause learning is live (env ``REPRO_CDCL``, default on).

    Read at :class:`Solver` construction — like ``REPRO_ALLSAT`` it can be
    flipped in-process between solver instances for A/B parity runs.
    """
    return os.environ.get("REPRO_CDCL", "1") != "0"


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,… (``index`` 0-based)."""
    size, sequence = 1, 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        sequence -= 1
        index %= size
    return 1 << sequence


class CnfInstance:
    """A mutable CNF instance over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        self._contradiction = False

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause; tautologies are dropped, the empty clause recorded."""
        seen: set[int] = set()
        out: List[int] = []
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if not out:
            self._contradiction = True
        self.clauses.append(out)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def has_empty_clause(self) -> bool:
        return self._contradiction


class Solver:
    """CDCL with watched literals over a :class:`CnfInstance`.

    The clause *prefix* is shared with the instance (the solver never
    mutates clause lists); clauses added through :meth:`add_clause`
    afterwards — and clauses the solver learns — are private to the
    solver.  For the incremental patterns the library needs (blocking
    clauses during enumeration), create the solver once and call
    :meth:`add_clause` on it directly — adding clauses to the original
    instance after construction does not affect the solver.
    """

    def __init__(self, instance: CnfInstance) -> None:
        self.num_vars = instance.num_vars
        # Shallow copy: clause lists are shared immutably with the
        # instance; only the container is private (for blocking/learned
        # clauses).  Learned slots may later hold None (tombstones).
        self.clauses: List[Optional[List[int]]] = list(instance.clauses)
        self._unsat_forever = instance.has_empty_clause
        # assignment[v] in (-1 unassigned, 0 false, 1 true)
        self._assign: List[int] = [-1] * (self.num_vars + 1)
        self._level: List[int] = [0] * (self.num_vars + 1)
        self._reason: List[Optional[int]] = [None] * (self.num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (self.num_vars + 1)
        self._watches: Dict[int, List[int]] = {}
        self._conflicts = 0
        # CDCL state: learned-clause metadata ([lbd, activity] per
        # reducible clause index), VSIDS/clause-activity increments,
        # restart schedule, and observability counters.
        self._cdcl = cdcl_enabled()
        self._learned_info: Dict[int, List[float]] = {}
        self._learned_units: Set[int] = set()
        self._max_learned = LEARNED_BASE
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._conflicts_since_restart = 0
        self._restart_limit = RESTART_BASE
        self._stat_learned = 0
        self._stat_restarts = 0
        self._stat_max_backjump = 0
        self._stat_propagations = 0
        # Branching control for projected enumeration: vars to decide
        # first, and vars to skip entirely (clause-free letters whose
        # value cannot matter).  See set_branch_priority / set_branch_skip.
        self._priority: Optional[List[bool]] = None
        self._skip: Optional[List[bool]] = None
        # Conflict stashed when a budget checkpoint interrupts _search
        # mid-conflict-chain; resume_search replays it so no falsified
        # clause is ever skipped across an interrupt.
        self._pending_conflict: Optional[int] = None
        self._init_watches()

    # -- construction helpers -------------------------------------------------

    def _init_watches(self) -> None:
        self._units: List[int] = []
        # Per-clause watched literal pair, stored outside the clause lists
        # so the (shared) clauses themselves are never reordered.
        self._watch_pair: List[Optional[List[int]]] = [None] * len(self.clauses)
        for index, clause in enumerate(self.clauses):
            self._watch_clause(index, clause)

    def _watch_clause(self, index: int, clause: List[int]) -> None:
        if not clause:
            self._unsat_forever = True
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        pair = [clause[0], clause[1]]
        self._watch_pair[index] = pair
        for lit in pair:
            self._watches.setdefault(-lit, []).append(index)

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause incrementally (solver must be at decision level 0)."""
        self._backtrack_to(0)
        out: List[int] = []
        seen: set[int] = set()
        for lit in clause:
            var = abs(lit)
            if var > self.num_vars:
                self._grow(var)
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self.clauses.append(out)
        self._watch_pair.append(None)
        self._watch_clause(len(self.clauses) - 1, out)

    def _grow(self, new_num_vars: int) -> None:
        extra = new_num_vars - self.num_vars
        self._assign.extend([-1] * extra)
        self._level.extend([0] * extra)
        self._reason.extend([None] * extra)
        self._activity.extend([0.0] * extra)
        if self._priority is not None:
            self._priority.extend([False] * extra)
        if self._skip is not None:
            self._skip.extend([False] * extra)
        self.num_vars = new_num_vars

    # -- branching control ----------------------------------------------------

    def set_branch_priority(self, variables: Iterable[int]) -> None:
        """Prefer these variables when branching (projection-first search).

        The enumeration layer sets the projection variables as priority so
        every auxiliary (Tseitin) decision happens *after* the projected
        assignment is complete — the invariant that makes chronological
        backtracking over projected models duplicate-free.
        """
        flags = [False] * (self.num_vars + 1)
        for var in variables:
            flags[var] = True
        self._priority = flags

    def set_branch_skip(self, variables: Iterable[int]) -> None:
        """Never branch on these variables (and do not require them for a
        model).  Only sound for variables that occur in no unsatisfied
        clause — the enumeration layer uses it for clause-free letters,
        which it re-expands as free bits of every emitted cube."""
        flags = [False] * (self.num_vars + 1)
        for var in variables:
            flags[var] = True
        self._skip = flags

    # -- assignment primitives --------------------------------------------------

    def _value(self, lit: int) -> int:
        """-1 unassigned, 1 satisfied, 0 falsified."""
        val = self._assign[abs(lit)]
        if val < 0:
            return -1
        return val if lit > 0 else 1 - val

    def value_of(self, var: int) -> Optional[bool]:
        """Current assignment of ``var`` (None when unassigned) — trail
        introspection for the enumeration layer."""
        val = self._assign[var]
        return None if val < 0 else bool(val)

    def decisions(self) -> List[int]:
        """The decision literals above the assumption level, in level order.

        A positive literal is a first-phase decision (its negation is still
        unexplored), a negative literal a second-phase one.  Empty before
        :meth:`solve` / after exhaustion.
        """
        return [segment[0] for segment in self.decision_segments()]

    def decision_segments(self) -> List[List[int]]:
        """Per decision level, its trail slice (decision literal first,
        the literals it propagated after) — the introspection the AllSAT
        layer's cube generalization needs: a decision whose level forced
        other projection literals cannot be generalized away.  Literals a
        clamped CDCL backjump *asserts into* an older level appear in that
        level's slice, after the original decision."""
        out: List[List[int]] = []
        limits = self._trail_lim
        for level in range(1, len(limits)):
            start = limits[level]
            end = limits[level + 1] if level + 1 < len(limits) else len(self._trail)
            if start < end:
                out.append(self._trail[start:end])
        return out

    def _enqueue(self, lit: int, reason: Optional[int] = None) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self, queue_start: int) -> Optional[int]:
        """Unit propagation from trail position ``queue_start``.

        Returns the index of a conflicting clause, or ``None`` on success.
        """
        if _faults.ACTIVE:
            _faults.propagate_pause()
        trail = self._trail
        assign = self._assign
        clauses = self.clauses
        watch_pair = self._watch_pair
        watches = self._watches
        head = queue_start
        while head < len(trail):
            lit = trail[head]
            head += 1
            watch_list = watches.get(lit)
            if not watch_list:
                continue
            keep: List[int] = []
            conflict: Optional[int] = None
            position = 0
            while position < len(watch_list):
                clause_index = watch_list[position]
                position += 1
                pair = watch_pair[clause_index]
                # pair holds the two watched literals; -lit is falsified.
                if pair[0] == -lit:
                    slot, other = 0, pair[1]
                else:
                    slot, other = 1, pair[0]
                # Inline of _value(other) == 1 — this loop is the hottest
                # code in the solver, and the call overhead dominates it.
                value = assign[other if other > 0 else -other]
                if value >= 0 and (value == 1) == (other > 0):
                    keep.append(clause_index)
                    continue
                moved = False
                for alt in clauses[clause_index]:
                    if alt != other and alt != -lit:
                        value = assign[alt if alt > 0 else -alt]
                        if value < 0 or (value == 1) == (alt > 0):
                            pair[slot] = alt
                            watches.setdefault(-alt, []).append(clause_index)
                            moved = True
                            break
                if moved:
                    continue
                keep.append(clause_index)
                if not self._enqueue(other, clause_index):
                    conflict = clause_index
                    keep.extend(watch_list[position:])
                    break
            watch_list[:] = keep
            if conflict is not None:
                self._stat_propagations += head - queue_start
                return conflict
        self._stat_propagations += head - queue_start
        return None

    def _backtrack_to(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._assign[var] = -1
            self._reason[var] = None
        del self._trail[boundary:]
        del self._trail_lim[level:]

    # -- branching heuristic -----------------------------------------------------

    def _bump_clause(self, clause: Sequence[int]) -> None:
        for lit in clause:
            self._activity[abs(lit)] += 1.0

    def _decay(self) -> None:
        self._activity = [a * 0.9 for a in self._activity]

    def _bump_var(self, var: int) -> None:
        """MiniSat VSIDS: growing increment, rescale near overflow."""
        value = self._activity[var] + self._var_inc
        self._activity[var] = value
        if value > 1e100:
            self._activity = [a * 1e-100 for a in self._activity]
            self._var_inc *= 1e-100

    def _bump_clause_activity(self, index: int) -> None:
        info = self._learned_info.get(index)
        if info is None:
            return
        info[1] += self._cla_inc
        if info[1] > 1e20:
            inverse = 1e-20
            for other in self._learned_info.values():
                other[1] *= inverse
            self._cla_inc *= inverse

    def _pick_branch(self) -> int:
        assign = self._assign
        activity = self._activity
        priority = self._priority
        skip = self._skip
        best_var = 0
        best_activity = -1.0
        pref_var = 0
        pref_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if assign[var] >= 0:
                continue
            if skip is not None and skip[var]:
                continue
            value = activity[var]
            if priority is not None and priority[var]:
                if value > pref_activity:
                    pref_var = var
                    pref_activity = value
            elif value > best_activity:
                best_var = var
                best_activity = value
        return pref_var or best_var

    # -- conflict analysis (CDCL) ------------------------------------------------

    def _enum_floor(self) -> int:
        """The deepest flipped-decision level (the enumeration barrier).

        Flipped (negative) decisions are the only record of already-emitted
        models, so no backjump may cross the deepest one.  Returns 1 (the
        assumption level) when no decision has been flipped — i.e. outside
        enumeration resumes — which is also the restart-safety test.
        """
        trail = self._trail
        limits = self._trail_lim
        for segment in range(len(limits) - 1, 0, -1):
            start = limits[segment]
            if start < len(trail) and trail[start] < 0:
                return segment + 1
        return 1

    def _analyze(
        self, conflict_index: int
    ) -> Optional[Tuple[int, List[int], int, int]]:
        """First-UIP conflict analysis.

        Resolves the conflicting clause backwards along the trail (over
        reason clauses only — decisions and assumptions are kept as
        literals, which is what makes the result implied by the clause
        database alone) until a single literal of the conflict level
        remains.  Returns ``(uip, other_literals, assert_level, lbd)``, or
        ``None`` in the degenerate cases where the conflict holds no
        resolvable conflict-level literal (the caller then falls back to
        chronological flipping).
        """
        clauses = self.clauses
        level_of = self._level
        reason_of = self._reason
        trail = self._trail
        current = len(self._trail_lim)
        seen: Set[int] = set()
        learned: List[int] = []
        levels: Set[int] = set()
        counter = 0
        index = len(trail)
        pending: Sequence[int] = clauses[conflict_index]
        self._bump_clause_activity(conflict_index)
        while True:
            for lit in pending:
                var = lit if lit > 0 else -lit
                if var in seen:
                    continue
                lvl = level_of[var]
                if lvl == 0:
                    continue  # root-implied: drop from the learned clause
                seen.add(var)
                self._bump_var(var)
                if lvl >= current:
                    counter += 1
                else:
                    learned.append(lit)
                    levels.add(lvl)
            if counter == 0:
                return None  # conflict entirely below the current level
            while True:
                index -= 1
                if index < 0:
                    return None
                lit = trail[index]
                var = lit if lit > 0 else -lit
                if var in seen and level_of[var] >= current:
                    break
            counter -= 1
            if counter == 0:
                uip = -lit
                break
            reason_index = reason_of[var]
            if reason_index is None:
                return None  # reached a decision before isolating the UIP
            self._bump_clause_activity(reason_index)
            pending = clauses[reason_index]
        assert_level = 1
        for other in learned:
            lvl = level_of[abs(other)]
            if lvl > assert_level:
                assert_level = lvl
        lbd = len(levels) + 1
        return uip, learned, assert_level, lbd

    def _attach_learned(self, uip: int, learned: List[int], lbd: int) -> Optional[int]:
        """Store a learned clause and hook it into the watch scheme.

        Returns the clause index to use as the asserted UIP's reason.  A
        learned *unit* is implied by the clause database alone, so it also
        joins :attr:`_units` for replay by every future :meth:`prime`; it
        gets a self-pair watch (conflict trigger) instead of propagation
        wiring, because a unit below the backjump target would otherwise
        go silent after deeper backtracking.
        """
        self._stat_learned += 1
        index = len(self.clauses)
        if not learned:
            if uip in self._learned_units:
                return None
            self._learned_units.add(uip)
            self.clauses.append([uip])
            self._units.append(uip)
            pair = [uip, uip]
            self._watch_pair.append(pair)
            self._watches.setdefault(-uip, []).append(index)
            return None
        clause = [uip]
        clause.extend(learned)
        # Watch the UIP and the highest-level other literal: the standard
        # choice that keeps the watch invariant across future backtracking.
        best = 1
        best_level = self._level[abs(clause[1])]
        for position in range(2, len(clause)):
            lvl = self._level[abs(clause[position])]
            if lvl > best_level:
                best, best_level = position, lvl
        clause[1], clause[best] = clause[best], clause[1]
        self.clauses.append(clause)
        pair = [clause[0], clause[1]]
        self._watch_pair.append(pair)
        self._watches.setdefault(-clause[0], []).append(index)
        self._watches.setdefault(-clause[1], []).append(index)
        self._learned_info[index] = [lbd, self._cla_inc]
        return index

    def _reduce_learned(self) -> None:
        """Drop the low-activity half of the learned DB (tombstoning).

        Glue clauses (LBD ≤ 2) and clauses currently locked as a reason on
        the trail are protected.  Slots are set to ``None`` rather than
        compacted so every stored clause index — shared prefix, reasons,
        watch lists — stays valid.
        """
        info = self._learned_info
        locked = {reason for reason in self._reason if reason is not None}
        victims = sorted(
            (idx for idx in info if idx not in locked and info[idx][0] > 2),
            key=lambda idx: (info[idx][1], -idx),
        )
        for idx in victims[: len(victims) // 2]:
            pair = self._watch_pair[idx]
            for lit in {pair[0], pair[1]}:
                bucket = self._watches.get(-lit)
                if bucket is not None and idx in bucket:
                    bucket.remove(idx)
            self.clauses[idx] = None
            self._watch_pair[idx] = None
            del info[idx]
        self._max_learned += self._max_learned // 2

    def _handle_conflict(self, conflict_index: int) -> Optional[int]:
        """Resolve a conflict; returns the trail position to re-propagate
        from, or ``None`` when the search space is exhausted.

        CDCL path: analyze to the first UIP, backjump to the assertion
        level — clamped to the enumeration floor so flipped decisions
        guarding emitted models survive — and assert the UIP.  Conflicts
        at or below the floor, and degenerate analyses, fall back to the
        chronological flip (the ``REPRO_CDCL=0`` behaviour, which is also
        the entire strategy of the legacy path).
        """
        self._conflicts += 1
        if not self._cdcl:
            self._bump_clause(self.clauses[conflict_index])
            if self._conflicts % 256 == 0:
                self._decay()
            return self._flip_last_decision()
        self._conflicts_since_restart += 1
        floor = self._enum_floor()
        current = len(self._trail_lim)
        if current <= floor:
            return self._flip_last_decision()
        analysis = self._analyze(conflict_index)
        self._var_inc /= 0.95
        self._cla_inc /= 0.999
        if analysis is None:
            return self._flip_last_decision()
        uip, learned, assert_level, lbd = analysis
        target = assert_level if assert_level > floor else floor
        jump = current - target
        if jump > self._stat_max_backjump:
            self._stat_max_backjump = jump
        self._backtrack_to(target)
        reason_index = self._attach_learned(uip, learned, lbd)
        position = len(self._trail)
        if not self._enqueue(uip, reason_index):
            return self._flip_last_decision()
        # Reduce only after the UIP's reason is on the trail (locked), so
        # the clause just learned can never be tombstoned out from under
        # its own assertion.
        if len(self._learned_info) >= self._max_learned:
            self._reduce_learned()
        return position

    # -- main search ----------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under the given assumption literals.

        On success the trail holds a total assignment (read it with
        :meth:`model`) and the search can be *resumed* towards further
        models with :meth:`next_model` — calling :meth:`solve` again
        instead restarts from scratch.
        """
        if not self.prime(assumptions):
            return False
        return self._search(len(self._trail))

    def prime(self, assumptions: Sequence[int] = ()) -> bool:
        """Propagate level-0 units and the assumptions, without branching.

        Leaves the solver at the assumption level on success (trail and
        assignments inspectable — the enumeration layer reads the forced
        literals here to simplify and split the CNF); returns ``False``
        and resets to level 0 when the formula is already conflicting.
        """
        if self._unsat_forever:
            return False
        self._pending_conflict = None
        self._backtrack_to(0)
        for lit in self._units:
            if not self._enqueue(lit):
                return False
        if self._propagate(0) is not None:
            return False
        root = len(self._trail)
        self._trail_lim.append(len(self._trail))
        for lit in assumptions:
            if abs(lit) > self.num_vars:
                self._grow(abs(lit))
            if not self._enqueue(lit):
                self._backtrack_to(0)
                return False
        if self._propagate(root) is not None:
            self._backtrack_to(0)
            return False
        return True

    def _search(self, queue_start: int, conflict: Optional[int] = None) -> bool:
        """Branch/propagate until a total model or exhaustion.

        The shared engine behind :meth:`solve` (fresh search) and
        :meth:`next_model` (resumed search): propagate, resolve conflicts
        through :meth:`_handle_conflict` (first-UIP backjumping, or the
        chronological flip under ``REPRO_CDCL=0`` / at the enumeration
        floor), restart on the Luby schedule when no flipped decision is
        live, branch when propagation settles.  Returns ``True`` with the
        trail at the model, or ``False`` (solver reset to level 0) when
        the remaining search space under the assumptions is exhausted.

        Under an active :class:`repro.runtime.Budget` the loop polls a
        checkpoint every :data:`repro.runtime.CHECKPOINT_INTERVAL`
        decisions/conflicts.  A checkpoint raise leaves the trail intact
        and the search resumable via :meth:`resume_search`: at the branch
        point the trail is fully propagated, and mid-conflict-chain the
        unresolved conflict is stashed in ``_pending_conflict`` (a bare
        re-propagation would not rediscover it) and replayed on resume.
        ``conflict`` is that replayed conflict — only
        :meth:`resume_search` passes it.
        """
        budget = _runtime.current()
        interval = _runtime.CHECKPOINT_INTERVAL
        poll = 0
        if conflict is None:
            conflict = self._propagate(queue_start)
        while True:
            while conflict is not None:
                if budget is not None:
                    poll += 1
                    if poll >= interval:
                        poll = 0
                        try:
                            budget.checkpoint()
                        except BaseException:
                            self._pending_conflict = conflict
                            raise
                resume = self._handle_conflict(conflict)
                if resume is None:
                    self._backtrack_to(0)
                    return False
                conflict = self._propagate(resume)
            branch_var = self._pick_branch()
            if branch_var == 0:
                return True  # all (non-skipped) vars assigned, no conflict
            if budget is not None:
                poll += 1
                if poll >= interval:
                    poll = 0
                    # Trail fully propagated: a raise here resumes with a
                    # plain _search(len(self._trail)).
                    budget.checkpoint()
            if (
                self._cdcl
                and self._conflicts_since_restart >= self._restart_limit
                and len(self._trail_lim) > 1
                and self._enum_floor() == 1
            ):
                self._stat_restarts += 1
                self._conflicts_since_restart = 0
                self._restart_limit = RESTART_BASE * _luby(self._stat_restarts)
                self._backtrack_to(1)
                conflict = self._propagate(len(self._trail))
                continue
            # Try positive phase first (deterministic).
            self._trail_lim.append(len(self._trail))
            queue_start = len(self._trail)
            self._enqueue(branch_var)
            conflict = self._propagate(queue_start)

    def resume_search(self) -> bool:
        """Continue a search interrupted by a budget checkpoint raise.

        Picks up exactly where :meth:`_search` stopped — replaying the
        stashed conflict if the interrupt landed mid-conflict-chain,
        otherwise propagating from the end of the trail (a no-op at the
        settled branch point).  Same return contract as :meth:`solve` /
        :meth:`next_model`: ``True`` with the trail at the next model,
        ``False`` when the remaining space is exhausted.  Calling it on a
        solver that was never interrupted is safe and simply continues
        the search from the current trail.
        """
        if self._unsat_forever:
            return False
        pending = self._pending_conflict
        self._pending_conflict = None
        return self._search(len(self._trail), conflict=pending)

    def next_model(self, flip: Optional[Callable[[int], bool]] = None) -> bool:
        """Resume the search after a model found by :meth:`solve`.

        Chronological continuation: walk the decision levels from the
        deepest; second-phase decisions are popped (both phases explored),
        and each first-phase decision literal is offered to ``flip`` —
        ``True`` explores its second phase from the same depth (the normal
        next-model step), ``False`` pops the level as *covered* (the
        enumeration layer answers ``False`` for auxiliary completions and
        for decisions generalised into an emitted cube).  Returns ``True``
        at the next total model, ``False`` (solver reset to level 0) when
        the search space is exhausted.

        No blocking clause is ever added: the clause database grows only
        by learned clauses, which are implied by the input and never
        exclude a model.
        """
        if self._unsat_forever:
            return False
        self._pending_conflict = None
        while len(self._trail_lim) > 1:
            level = len(self._trail_lim) - 1
            boundary = self._trail_lim[level]
            decision = self._trail[boundary]
            self._backtrack_to(level)
            if decision > 0 and (flip is None or flip(decision)):
                self._trail_lim.append(len(self._trail))
                position = len(self._trail)
                if self._enqueue(-decision):
                    if self._search(position):
                        return True
                    return False
                self._backtrack_to(level)
        self._backtrack_to(0)
        return False

    def _flip_last_decision(self) -> Optional[int]:
        """Undo the deepest decision still on its first phase and flip it.

        Decisions are recorded implicitly: level ``i`` starts at trail index
        ``self._trail_lim[i]`` and the decision literal sits at that index.
        Levels whose decision was already flipped are popped.  Returns the
        trail position propagation should restart from, or ``None`` when only
        the assumption level remains.
        """
        while len(self._trail_lim) > 1:
            level = len(self._trail_lim) - 1
            boundary = self._trail_lim[level]
            decision = self._trail[boundary] if boundary < len(self._trail) else None
            self._backtrack_to(level)
            if decision is None:
                continue
            if decision > 0:
                # First phase was positive; try negative now at same depth.
                self._trail_lim.append(len(self._trail))
                position = len(self._trail)
                if self._enqueue(-decision):
                    return position
                # Cannot even enqueue: continue unwinding.
                self._backtrack_to(level)
            # decision < 0 means both phases exhausted: keep unwinding.
        return None

    def model(self) -> List[int]:
        """The satisfying assignment from the last successful :meth:`solve`.

        Unassigned variables (possible when the formula does not constrain
        them, or when they were excluded via :meth:`set_branch_skip`)
        default to false.
        """
        out: List[int] = []
        for var in range(1, self.num_vars + 1):
            value = self._assign[var]
            out.append(var if value == 1 else -var)
        return out

    def search_stats(self) -> Dict[str, int]:
        """CDCL observability counters: conflicts, learned clauses,
        restarts, deepest backjump, trail literals propagated (all
        monotonic per solver) and the live learned-DB size (a gauge —
        clause-DB reduction shrinks it)."""
        return {
            "conflicts": self._conflicts,
            "learned": self._stat_learned,
            "restarts": self._stat_restarts,
            "max_backjump": self._stat_max_backjump,
            "propagations": self._stat_propagations,
            "learned_db": len(self._learned_info),
        }
