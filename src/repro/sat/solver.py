"""A from-scratch DPLL SAT solver with two-watched-literals.

The solver operates on integer literals in the usual DIMACS convention:
variables are ``1..n`` and the literal ``-v`` is the negation of ``v``.
Features:

* two-watched-literal unit propagation (the watched pair lives in
  solver-owned side arrays, never inside the clause lists — so clause
  lists are immutable and shared, see below),
* conflict-driven branching-order scores (a light VSIDS variant: bump the
  variables of conflicting clauses and decay periodically),
* optional assumption literals (used by the incremental model-enumeration
  layer),
* a resumable search protocol (:meth:`Solver.next_model`) for the
  chronological AllSAT enumerator of :mod:`repro.sat.allsat`: after a
  model, the search backtracks to the deepest still-open decision and
  *continues* instead of restarting against blocking clauses,
* deterministic behaviour — no randomness, so every test and benchmark is
  reproducible.

**Copy-on-write clause storage.**  ``Solver(instance)`` does *not* deep-copy
the clause lists: it takes a shallow copy of the clause container, shares
the (immutable) clause prefix with the instance, and appends
solver-private clauses — blocking clauses, incremental additions — to its
own tail.  The watched-literal machinery keeps its state in per-clause
side arrays instead of reordering clause lists in place, which is what
makes the sharing safe; repeated probes (``query_equivalent``, streams of
``is_satisfiable`` calls) no longer pay a full clause-database copy per
solver.

This is the substrate standing in for the abstract NP/coNP oracles of the
paper: every entailment test ``T * P |= Q``, consistency check inside
``W(T,P)``, and equivalence verification runs through here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class CnfInstance:
    """A mutable CNF instance over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        self._contradiction = False

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause; tautologies are dropped, the empty clause recorded."""
        seen: set[int] = set()
        out: List[int] = []
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            var = abs(lit)
            if var > self.num_vars:
                self.num_vars = var
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        if not out:
            self._contradiction = True
        self.clauses.append(out)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    @property
    def has_empty_clause(self) -> bool:
        return self._contradiction


class Solver:
    """DPLL with watched literals over a :class:`CnfInstance`.

    The clause *prefix* is shared with the instance (the solver never
    mutates clause lists); clauses added through :meth:`add_clause`
    afterwards are private to the solver.  For the incremental patterns
    the library needs (blocking clauses during enumeration), create the
    solver once and call :meth:`add_clause` on it directly — adding
    clauses to the original instance after construction does not affect
    the solver.
    """

    def __init__(self, instance: CnfInstance) -> None:
        self.num_vars = instance.num_vars
        # Shallow copy: clause lists are shared immutably with the
        # instance; only the container is private (for blocking clauses).
        self.clauses: List[List[int]] = list(instance.clauses)
        self._unsat_forever = instance.has_empty_clause
        # assignment[v] in (-1 unassigned, 0 false, 1 true)
        self._assign: List[int] = [-1] * (self.num_vars + 1)
        self._level: List[int] = [0] * (self.num_vars + 1)
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = [0.0] * (self.num_vars + 1)
        self._watches: Dict[int, List[int]] = {}
        self._conflicts = 0
        # Branching control for projected enumeration: vars to decide
        # first, and vars to skip entirely (clause-free letters whose
        # value cannot matter).  See set_branch_priority / set_branch_skip.
        self._priority: Optional[List[bool]] = None
        self._skip: Optional[List[bool]] = None
        self._init_watches()

    # -- construction helpers -------------------------------------------------

    def _init_watches(self) -> None:
        self._units: List[int] = []
        # Per-clause watched literal pair, stored outside the clause lists
        # so the (shared) clauses themselves are never reordered.
        self._watch_pair: List[Optional[List[int]]] = [None] * len(self.clauses)
        for index, clause in enumerate(self.clauses):
            self._watch_clause(index, clause)

    def _watch_clause(self, index: int, clause: List[int]) -> None:
        if not clause:
            self._unsat_forever = True
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        pair = [clause[0], clause[1]]
        self._watch_pair[index] = pair
        for lit in pair:
            self._watches.setdefault(-lit, []).append(index)

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause incrementally (solver must be at decision level 0)."""
        self._backtrack_to(0)
        out: List[int] = []
        seen: set[int] = set()
        for lit in clause:
            var = abs(lit)
            if var > self.num_vars:
                self._grow(var)
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                out.append(lit)
        self.clauses.append(out)
        self._watch_pair.append(None)
        self._watch_clause(len(self.clauses) - 1, out)

    def _grow(self, new_num_vars: int) -> None:
        extra = new_num_vars - self.num_vars
        self._assign.extend([-1] * extra)
        self._level.extend([0] * extra)
        self._activity.extend([0.0] * extra)
        if self._priority is not None:
            self._priority.extend([False] * extra)
        if self._skip is not None:
            self._skip.extend([False] * extra)
        self.num_vars = new_num_vars

    # -- branching control ----------------------------------------------------

    def set_branch_priority(self, variables: Iterable[int]) -> None:
        """Prefer these variables when branching (projection-first search).

        The enumeration layer sets the projection variables as priority so
        every auxiliary (Tseitin) decision happens *after* the projected
        assignment is complete — the invariant that makes chronological
        backtracking over projected models duplicate-free.
        """
        flags = [False] * (self.num_vars + 1)
        for var in variables:
            flags[var] = True
        self._priority = flags

    def set_branch_skip(self, variables: Iterable[int]) -> None:
        """Never branch on these variables (and do not require them for a
        model).  Only sound for variables that occur in no unsatisfied
        clause — the enumeration layer uses it for clause-free letters,
        which it re-expands as free bits of every emitted cube."""
        flags = [False] * (self.num_vars + 1)
        for var in variables:
            flags[var] = True
        self._skip = flags

    # -- assignment primitives --------------------------------------------------

    def _value(self, lit: int) -> int:
        """-1 unassigned, 1 satisfied, 0 falsified."""
        val = self._assign[abs(lit)]
        if val < 0:
            return -1
        return val if lit > 0 else 1 - val

    def value_of(self, var: int) -> Optional[bool]:
        """Current assignment of ``var`` (None when unassigned) — trail
        introspection for the enumeration layer."""
        val = self._assign[var]
        return None if val < 0 else bool(val)

    def decisions(self) -> List[int]:
        """The decision literals above the assumption level, in level order.

        A positive literal is a first-phase decision (its negation is still
        unexplored), a negative literal a second-phase one.  Empty before
        :meth:`solve` / after exhaustion.
        """
        return [segment[0] for segment in self.decision_segments()]

    def decision_segments(self) -> List[List[int]]:
        """Per decision level, its trail slice (decision literal first,
        the literals it propagated after) — the introspection the AllSAT
        layer's cube generalization needs: a decision whose level forced
        other projection literals cannot be generalized away."""
        out: List[List[int]] = []
        limits = self._trail_lim
        for level in range(1, len(limits)):
            start = limits[level]
            end = limits[level + 1] if level + 1 < len(limits) else len(self._trail)
            if start < end:
                out.append(self._trail[start:end])
        return out

    def _enqueue(self, lit: int) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)
        return True

    def _propagate(self, queue_start: int) -> Optional[List[int]]:
        """Unit propagation from trail position ``queue_start``.

        Returns a conflicting clause, or ``None`` on success.
        """
        head = queue_start
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            watch_list = self._watches.get(lit)
            if not watch_list:
                continue
            keep: List[int] = []
            conflict: Optional[List[int]] = None
            position = 0
            while position < len(watch_list):
                clause_index = watch_list[position]
                position += 1
                clause = self.clauses[clause_index]
                pair = self._watch_pair[clause_index]
                # pair holds the two watched literals; -lit is falsified.
                if pair[0] == -lit:
                    slot, other = 0, pair[1]
                else:
                    slot, other = 1, pair[0]
                if self._value(other) == 1:
                    keep.append(clause_index)
                    continue
                moved = False
                for alt in clause:
                    if alt != other and alt != -lit and self._value(alt) != 0:
                        pair[slot] = alt
                        self._watches.setdefault(-alt, []).append(clause_index)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(clause_index)
                if not self._enqueue(other):
                    conflict = clause
                    keep.extend(watch_list[position:])
                    break
            watch_list[:] = keep
            if conflict is not None:
                return conflict
        return None

    def _backtrack_to(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            self._assign[abs(lit)] = -1
        del self._trail[boundary:]
        del self._trail_lim[level:]

    # -- branching heuristic -----------------------------------------------------

    def _bump_clause(self, clause: Sequence[int]) -> None:
        for lit in clause:
            self._activity[abs(lit)] += 1.0

    def _decay(self) -> None:
        self._activity = [a * 0.9 for a in self._activity]

    def _pick_branch(self) -> int:
        assign = self._assign
        activity = self._activity
        priority = self._priority
        skip = self._skip
        best_var = 0
        best_activity = -1.0
        pref_var = 0
        pref_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if assign[var] >= 0:
                continue
            if skip is not None and skip[var]:
                continue
            value = activity[var]
            if priority is not None and priority[var]:
                if value > pref_activity:
                    pref_var = var
                    pref_activity = value
            elif value > best_activity:
                best_var = var
                best_activity = value
        return pref_var or best_var

    # -- main search ----------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under the given assumption literals.

        On success the trail holds a total assignment (read it with
        :meth:`model`) and the search can be *resumed* towards further
        models with :meth:`next_model` — calling :meth:`solve` again
        instead restarts from scratch.
        """
        if not self.prime(assumptions):
            return False
        return self._search(len(self._trail))

    def prime(self, assumptions: Sequence[int] = ()) -> bool:
        """Propagate level-0 units and the assumptions, without branching.

        Leaves the solver at the assumption level on success (trail and
        assignments inspectable — the enumeration layer reads the forced
        literals here to simplify and split the CNF); returns ``False``
        and resets to level 0 when the formula is already conflicting.
        """
        if self._unsat_forever:
            return False
        self._backtrack_to(0)
        for lit in self._units:
            if not self._enqueue(lit):
                return False
        if self._propagate(0) is not None:
            return False
        root = len(self._trail)
        self._trail_lim.append(len(self._trail))
        for lit in assumptions:
            if abs(lit) > self.num_vars:
                self._grow(abs(lit))
            if not self._enqueue(lit):
                self._backtrack_to(0)
                return False
        if self._propagate(root) is not None:
            self._backtrack_to(0)
            return False
        return True

    def _search(self, queue_start: int) -> bool:
        """Branch/propagate until a total model or exhaustion.

        The shared engine behind :meth:`solve` (fresh search) and
        :meth:`next_model` (resumed search): propagate, on conflict flip
        the deepest first-phase decision chronologically, branch when
        propagation settles.  Returns ``True`` with the trail at the
        model, or ``False`` (solver reset to level 0) when the remaining
        search space under the assumptions is exhausted.
        """
        while True:
            conflict = self._propagate(queue_start)
            while conflict is not None:
                self._bump_clause(conflict)
                self._conflicts += 1
                if self._conflicts % 256 == 0:
                    self._decay()
                flipped = self._flip_last_decision()
                if flipped is None:
                    self._backtrack_to(0)
                    return False
                conflict = self._propagate(flipped)
            branch_var = self._pick_branch()
            if branch_var == 0:
                return True  # all (non-skipped) vars assigned, no conflict
            # Try positive phase first (deterministic).
            self._trail_lim.append(len(self._trail))
            queue_start = len(self._trail)
            self._enqueue(branch_var)

    def next_model(self, flip: Optional[Callable[[int], bool]] = None) -> bool:
        """Resume the search after a model found by :meth:`solve`.

        Chronological continuation: walk the decision levels from the
        deepest; second-phase decisions are popped (both phases explored),
        and each first-phase decision literal is offered to ``flip`` —
        ``True`` explores its second phase from the same depth (the normal
        next-model step), ``False`` pops the level as *covered* (the
        enumeration layer answers ``False`` for auxiliary completions and
        for decisions generalised into an emitted cube).  Returns ``True``
        at the next total model, ``False`` (solver reset to level 0) when
        the search space is exhausted.

        No blocking clause is ever added: the clause database — and hence
        propagation cost — stays exactly as large as the input.
        """
        if self._unsat_forever:
            return False
        while len(self._trail_lim) > 1:
            level = len(self._trail_lim) - 1
            boundary = self._trail_lim[level]
            decision = self._trail[boundary]
            self._backtrack_to(level)
            if decision > 0 and (flip is None or flip(decision)):
                self._trail_lim.append(len(self._trail))
                position = len(self._trail)
                if self._enqueue(-decision):
                    if self._search(position):
                        return True
                    return False
                self._backtrack_to(level)
        self._backtrack_to(0)
        return False

    def _flip_last_decision(self) -> Optional[int]:
        """Undo the deepest decision still on its first phase and flip it.

        Decisions are recorded implicitly: level ``i`` starts at trail index
        ``self._trail_lim[i]`` and the decision literal sits at that index.
        Levels whose decision was already flipped are popped.  Returns the
        trail position propagation should restart from, or ``None`` when only
        the assumption level remains.
        """
        while len(self._trail_lim) > 1:
            level = len(self._trail_lim) - 1
            boundary = self._trail_lim[level]
            decision = self._trail[boundary] if boundary < len(self._trail) else None
            self._backtrack_to(level)
            if decision is None:
                continue
            if decision > 0:
                # First phase was positive; try negative now at same depth.
                self._trail_lim.append(len(self._trail))
                position = len(self._trail)
                if self._enqueue(-decision):
                    return position
                # Cannot even enqueue: continue unwinding.
                self._backtrack_to(level)
            # decision < 0 means both phases exhausted: keep unwinding.
        return None

    def model(self) -> List[int]:
        """The satisfying assignment from the last successful :meth:`solve`.

        Unassigned variables (possible when the formula does not constrain
        them, or when they were excluded via :meth:`set_branch_skip`)
        default to false.
        """
        out: List[int] = []
        for var in range(1, self.num_vars + 1):
            value = self._assign[var]
            out.append(var if value == 1 else -var)
        return out
