"""Incremental AllSAT: projected model enumeration without blocking clauses.

The classic blocking-clause loop (kept in :mod:`repro.sat.enumerate` as the
``REPRO_ALLSAT=0`` reference path) restarts DPLL from scratch per model
against an ever-growing clause pile — quadratic in the model count, and the
dominant cost of the large-alphabet revision pipeline once the sparse tier
made the selections density-proportional.  This module replaces it with a
**resume-don't-restart** enumerator built on three layered ideas, the
standard repertoire of modern AllSAT solvers (chronological-backtracking
enumeration à la Grumberg et al.; projected enumeration with cube
generalization as in Möhle & Biere's dualizing enumerators):

* **chronological resumption** — one :class:`~repro.sat.solver.Solver`
  per enumeration, branching on the projection variables *first* (so every
  auxiliary/Tseitin decision happens below a complete projected
  assignment).  After emitting a model the solver backtracks to the
  deepest still-open projection decision and *continues the same search*
  (:meth:`Solver.next_model`): no re-propagation of the clause database,
  no blocking clauses, each projected model visited exactly once;

* **cube generalization** — at each model, walk the trailing decisions
  and test projection variables for *don't-care* status (every clause
  their literal satisfies must have another satisfying literal — an
  occurrence-list check against the current trail).  A maximal don't-care
  suffix is emitted as one :class:`Cube` covering ``2^k`` models and then
  popped without flipping, so a DNF-shaped KB enumerates in ``O(#cubes)``
  solver resumes instead of ``O(#models)``.  Restricting generalization
  to a *suffix of first-phase decisions* is what keeps the stream
  duplicate-free without blocking clauses: everything deeper than the
  flip point is covered by the cube, everything shallower is untouched;

* **component splitting** — after level-0/assumption propagation the
  residual CNF often decomposes into variable-disjoint components
  (union-find over the unsatisfied clauses).  Each component is
  enumerated independently and the cross-product is emitted as combined
  cubes: ``m₁ + m₂`` solves replace ``m₁ · m₂``.  Clause-free projection
  variables (letters the formula never mentions, or letters freed by
  level-0 propagation) never even reach the solver — they ride along as
  free bits of every cube.

Everything is deterministic: the solver branches deterministically, cube
expansion enumerates free-bit completions in ascending order, and
components combine in sorted order — so tests and benchmarks reproduce
exactly, and the *set* of projected models is identical to the
blocking-clause loop's (the hypothesis suite in ``tests/test_allsat.py``
asserts it across projections, limits and degenerate shapes).

A fourth layer arrived with the CDCL solver core: on clause-heavy
(non-DNF) shapes the "no further models" proof inside each region is now a
first-UIP learning search instead of exponential chronological
backtracking (see :mod:`repro.sat.solver` for why learning is sound under
resumes), and independent cube streams — one per connected component, or
disjoint decision-prefix subtrees of one large component — can fan out
over worker processes.  Combines are union-only (cube lists concatenate;
masks and carriers are built by sorted-deduplicating expansion), so the
emitted *model set* is bit-identical for any worker count.

Knobs:

* ``REPRO_ALLSAT=0`` — disable the incremental enumerator entirely;
  :func:`repro.sat.enumerate.enumerate_models` then runs the blocking-
  clause loop (A/B timing, parity testing).  Read **live** at every
  call, so harnesses can flip it in-process;
* ``REPRO_CDCL=0`` — disable clause learning in the solver core (read at
  every :class:`~repro.sat.solver.Solver` construction, see
  :func:`repro.sat.solver.cdcl_enabled`) — the chronological-DPLL A/B
  baseline;
* :data:`CUBES` / :data:`COMPONENTS` / :data:`PARALLEL` — disable cube
  generalization / component splitting / process fan-out individually.
  Initialised once at import from ``REPRO_ALLSAT_CUBES=0`` /
  ``REPRO_ALLSAT_COMPONENTS=0`` / ``REPRO_ALLSAT_PARALLEL=0``; for
  in-process A/B, retarget the *module attributes* (as the hypothesis
  suite does), not the environment.  The fan-out width itself comes from
  :func:`repro.logic.shards.parallel_workers` (``REPRO_PARALLEL``), like
  the sparse tier's.

:data:`STATS` counts enumerations, solver resumes, cubes and models, plus
the CDCL counters (conflicts, learned clauses, restarts, deepest
backjump) and the parallel fan-out shape — the CI perf-smoke legs assert
the enumerator actually served the workload, and benchmarks report cube
compression ratios and learning activity from it.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro import obs as _obs
from repro import runtime as _runtime
from repro.runtime import pool as _pool

from .solver import CnfInstance, Solver

#: Cube generalization on/off (env ``REPRO_ALLSAT_CUBES=0`` at import);
#: a module attribute — tests and harnesses retarget it at runtime.
CUBES = os.environ.get("REPRO_ALLSAT_CUBES", "1") != "0"

#: Component splitting on/off (env ``REPRO_ALLSAT_COMPONENTS=0`` at
#: import); a module attribute, retargetable at runtime like :data:`CUBES`.
COMPONENTS = os.environ.get("REPRO_ALLSAT_COMPONENTS", "1") != "0"

#: Process fan-out on/off (env ``REPRO_ALLSAT_PARALLEL=0`` at import); a
#: module attribute.  Even when on, fan-out engages only for unlimited
#: enumerations and only when ``repro.logic.shards.parallel_workers``
#: grants more than one worker for the projection size.
PARALLEL = os.environ.get("REPRO_ALLSAT_PARALLEL", "1") != "0"

#: Prefix-split a *single* component only when its projection has at
#: least this many variables (below that, subtree setup dwarfs the work).
PARALLEL_SPLIT_MIN_VARS = 6

#: Oversplit factor: a lone component is cut into roughly this many
#: decision-prefix subtrees per worker, so uneven subtrees load-balance.
PARALLEL_SPLIT_FACTOR = 4

#: Hard cap on the prefix depth (2^depth subtrees).
PARALLEL_SPLIT_MAX_DEPTH = 8

#: Running counters for observability: how many enumerations ran, how many
#: solver resumes / emitted cubes / covered models they produced, how many
#: components were split off, the CDCL activity behind them (conflicts,
#: learned clauses, restarts, deepest backjump — folded in from each
#: solver), and the parallel fan-out shape (fan-outs run, subproblems
#: dispatched, workers of the last fan-out).  Monotonic per process except
#: ``max_backjump`` (a high-water mark) and ``parallel_workers`` (last
#: value); the CI smoke legs assert they move when the enumerator is
#: supposed to serve.  Since PR 9 this is an ``allsat.*`` view of
#: :data:`repro.obs.metrics.REGISTRY`: thread-safe, merged across pool
#: workers, and covered by the one registry ``reset()``; the CDCL fold
#: also carries ``propagations`` (trail literals propagated) and
#: ``learned_db`` (live learned-clause count, a high-water gauge).
STATS = _obs.CounterGroup(
    "allsat",
    baseline=(
        "enumerations",
        "resumes",
        "cubes",
        "models",
        "components",
        "conflicts",
        "propagations",
        "learned",
        "learned_db",
        "restarts",
        "max_backjump",
        "parallel_enumerations",
        "parallel_components",
        "parallel_workers",
    ),
    max_keys=("max_backjump", "learned_db"),
)


def enabled() -> bool:
    """Whether the incremental enumerator is live (env ``REPRO_ALLSAT``).

    Read at call time, like the tier knobs of :mod:`repro.logic.shards`,
    so benchmark harnesses can A/B the blocking-clause loop in-process.
    """
    return os.environ.get("REPRO_ALLSAT", "1") != "0"


class Cube:
    """A partial projected model: fixed literals plus don't-care variables.

    ``lits`` are signed literals over the projection variables whose value
    is fixed (sorted by variable); ``free`` are projection variables whose
    value is arbitrary — the cube covers ``2^len(free)`` total models.
    """

    __slots__ = ("lits", "free")

    def __init__(self, lits: Tuple[int, ...], free: Tuple[int, ...]) -> None:
        self.lits = lits
        self.free = free

    def model_count(self) -> int:
        """Number of total projected models the cube covers."""
        return 1 << len(self.free)

    def iter_models(self) -> Iterator[Tuple[int, ...]]:
        """Expand to total projected models, free completions ascending.

        Completion ``c`` assigns bit ``j`` of ``c`` to ``free[j]``; each
        yielded model is the merged literal tuple sorted by variable —
        the same shape the blocking-clause loop yields.
        """
        free = self.free
        if not free:
            yield self.lits
            return
        lits = self.lits
        for completion in range(1 << len(free)):
            merged = list(lits)
            merged.extend(
                var if completion >> j & 1 else -var
                for j, var in enumerate(free)
            )
            merged.sort(key=abs)
            yield tuple(merged)

    def mask_pair(self, bit_of: Dict[int, int]) -> Tuple[int, Tuple[int, ...]]:
        """The cube as ``(base_mask, free_bit_masks)`` under a variable →
        alphabet-bit map — the input shape of the canonical expansion
        (:func:`repro.logic.sparse.expand_cubes`) and of
        :meth:`repro.logic.sparse.SparseModelSet.from_cubes`."""
        base = 0
        for lit in self.lits:
            if lit > 0:
                base |= 1 << bit_of[lit]
        return base, tuple(1 << bit_of[var] for var in self.free)

    def __repr__(self) -> str:
        return f"Cube(lits={self.lits!r}, free={self.free!r})"


def _dont_care(
    solver: Solver,
    lit: int,
    covered: Set[int],
    occurrences: Dict[int, List[int]],
) -> bool:
    """Whether flipping ``lit``'s variable (jointly with the already
    ``covered`` ones) keeps every clause satisfied under the current trail.

    ``lit`` is true on the trail; only clauses where it occurs positively
    can lose their support, and each needs another satisfying literal on a
    variable outside the covered set.  Fixed (assumption/level-0) and
    auxiliary literals qualify — the cube keeps them at their current
    values.
    """
    value = solver._value
    clauses = solver.clauses
    for clause_index in occurrences.get(lit, ()):
        clause = clauses[clause_index]
        for other in clause:
            if other != lit and value(other) == 1 and abs(other) not in covered:
                break
        else:
            return False
    return True


class _ComponentEnumerator:
    """Resumable cube stream over one CNF (sub-)problem.

    Drives a single :class:`Solver` through the projection-first search,
    emitting a (possibly generalized) cube per solver model and resuming
    chronologically — the per-component engine :func:`enumerate_cubes`
    multiplies into cross-products.
    """

    def __init__(
        self,
        instance: CnfInstance,
        projection: Sequence[int],
        variables: Optional[Set[int]] = None,
        generalize: bool = True,
    ) -> None:
        self.projection = list(projection)
        self.generalize = generalize
        self.solver = Solver(instance)
        self.solver.set_branch_priority(self.projection)
        if variables is not None:
            # Branch only inside the component: everything else is either
            # already decided or clause-free (covered as cube free bits).
            self.solver.set_branch_skip(
                var for var in range(1, instance.num_vars + 1)
                if var not in variables
            )
        self._proj_set = set(self.projection)
        # Snapshot before any solving: everything past this index is a
        # learned clause (or a tombstone after DB reduction).  Cube
        # generalization must hold every *input* clause satisfied; learned
        # clauses are implied by the input, so checking them would be
        # redundant — and, post-reduction, would trip over tombstones.
        self._input_clause_count = len(self.solver.clauses)
        self._occurrences: Optional[Dict[int, List[int]]] = None
        self._stats_seen = {
            "conflicts": 0, "learned": 0, "restarts": 0, "propagations": 0,
        }
        # Resumable-stream state machine (see next_cube):
        #   unstarted  — no solver call yet
        #   advancing  — a search was interrupted mid-flight (budget
        #                checkpoint raise); resume_search continues it
        #   yielded    — the last cube was handed out; advance via the
        #                stashed flip target next
        #   exhausted  — the stream is complete
        self._state = "unstarted"
        self._flip_target: Optional[int] = None

    def _occ(self) -> Dict[int, List[int]]:
        if self._occurrences is None:
            occurrences: Dict[int, List[int]] = {}
            for index in range(self._input_clause_count):
                for lit in self.solver.clauses[index]:
                    occurrences.setdefault(lit, []).append(index)
            self._occurrences = occurrences
        return self._occurrences

    def _sync_stats(self) -> None:
        """Fold the solver's CDCL counters into the module :data:`STATS`."""
        stats = self.solver.search_stats()
        seen = self._stats_seen
        for key in ("conflicts", "learned", "restarts", "propagations"):
            delta = stats[key] - seen[key]
            if delta:
                STATS.inc(key, delta)
                seen[key] = stats[key]
        STATS.max_update("max_backjump", stats["max_backjump"])
        STATS.max_update("learned_db", stats["learned_db"])

    def _generalized_cube(self) -> Tuple[Cube, Optional[int]]:
        """Build the cube for the model on the trail, plus its flip point.

        Generalize: walk decision levels deepest-first, growing the
        don't-care suffix until a decision resists (the flip point).
        """
        solver = self.solver
        proj_set = self._proj_set
        covered: Set[int] = set()
        flip_lit: Optional[int] = None
        if self.generalize:
            occurrences = self._occ()
            generalizing = True
            for segment in reversed(solver.decision_segments()):
                decision = segment[0]
                if abs(decision) not in proj_set:
                    # Auxiliary level: it holds no projection literal
                    # (projection-first branching), so popping it never
                    # changes the projected model — always covered.
                    continue
                if decision < 0:
                    # Second phase: both subtrees explored, pop — but
                    # its value pins the cube, so no shallower variable
                    # may be generalized past it (the shallower flip
                    # subtree would revisit this variable's two phases,
                    # which the cube holds fixed).
                    generalizing = False
                    continue
                # A first-phase projection decision joins the don't-care
                # set only while the whole deeper suffix is covered and
                # (a) every clause its literal satisfies has another
                # satisfying literal outside the set, and (b) its level
                # forced no other projection literal (flipping it would
                # release those forced values, which the cube fixes).
                if (
                    generalizing
                    and all(
                        abs(lit) not in proj_set for lit in segment[1:]
                    )
                    and _dont_care(solver, decision, covered, occurrences)
                ):
                    covered.add(decision)
                    continue
                flip_lit = decision
                break
        else:
            for decision in reversed(solver.decisions()):
                if decision > 0 and decision in proj_set:
                    flip_lit = decision
                    break
        value_of = solver.value_of
        lits = tuple(
            var if value_of(var) else -var
            for var in self.projection
            if var not in covered
        )
        return Cube(lits, tuple(sorted(covered))), flip_lit

    def next_cube(self) -> Optional[Cube]:
        """Advance the stream one cube; ``None`` when exhausted.

        The resumable entry point: if the previous call was interrupted
        by a budget checkpoint raise (deadline, cancellation) the solver
        search picks up exactly where it stopped, and a cube built but
        never handed out is delivered before any new solving — so an
        interrupted stream, resumed, is still duplicate-free and
        lossless.
        """
        solver = self.solver
        state = self._state
        if state == "exhausted":
            return None
        if state == "unstarted":
            self._state = "advancing"
            found = solver.solve()
        elif state == "yielded":
            if self._flip_target is None:
                # The last cube had no flip point: stream complete.
                self._sync_stats()
                self._state = "exhausted"
                return None
            target = self._flip_target
            self._state = "advancing"
            found = solver.next_model(flip=lambda lit: lit == target)
        else:  # "advancing": a checkpoint raise interrupted the search
            found = solver.resume_search()
        if not found:
            self._sync_stats()
            self._state = "exhausted"
            return None
        STATS.inc("resumes")
        self._sync_stats()
        cube, flip_lit = self._generalized_cube()
        self._flip_target = flip_lit
        self._state = "yielded"
        return cube

    def cubes(self) -> Iterator[Cube]:
        """Stream the projected cubes (each projected model covered once).

        A disposable generator view over :meth:`next_cube` — abandoning
        it and calling :meth:`cubes` again continues the same stream.
        """
        while True:
            cube = self.next_cube()
            if cube is None:
                return
            yield cube


def _split_components(
    residual: List[List[int]], projection_vars: Set[int]
) -> List[Tuple[List[List[int]], List[int]]]:
    """Partition residual clauses into variable-connected components.

    Union-find over the variables, linked through shared clauses; returns
    ``(clauses, projection_vars)`` per component, deterministically ordered
    by smallest member variable.  Components with no projection variable
    still come back (they must be checked satisfiable).
    """
    parent: Dict[int, int] = {}

    def find(var: int) -> int:
        root = var
        while parent[root] != root:
            root = parent[root]
        while parent[var] != root:
            parent[var], var = root, parent[var]
        return root

    def union(left: int, right: int) -> None:
        left, right = find(left), find(right)
        if left != right:
            if left > right:
                left, right = right, left
            parent[right] = left

    for clause in residual:
        first = abs(clause[0])
        parent.setdefault(first, first)
        for lit in clause[1:]:
            var = abs(lit)
            parent.setdefault(var, var)
            union(first, var)

    grouped_clauses: Dict[int, List[List[int]]] = {}
    for clause in residual:
        grouped_clauses.setdefault(find(abs(clause[0])), []).append(clause)
    grouped_projection: Dict[int, List[int]] = {}
    for var in sorted(projection_vars):
        if var in parent:
            grouped_projection.setdefault(find(var), []).append(var)
    return [
        (grouped_clauses[root], grouped_projection.get(root, []))
        for root in sorted(grouped_clauses)
    ]


def _merge_cubes(parts: Sequence[Cube]) -> Cube:
    """Combine per-component cubes (disjoint variables) into one."""
    lits: List[int] = []
    free: List[int] = []
    for part in parts:
        lits.extend(part.lits)
        free.extend(part.free)
    lits.sort(key=abs)
    free.sort()
    return Cube(tuple(lits), tuple(free))


def _component_worker(args: tuple) -> List[Tuple[tuple, tuple]]:
    """Top-level (picklable) worker: enumerate one component subproblem.

    ``prefix`` literals are added as unit clauses — a decision-prefix
    subtree of the component's search space; the prefix vars propagate at
    level 0 and come back fixed in every cube, so subtree cube lists from
    complementary prefixes union into exactly the component's stream.
    Returns plain ``(lits, free)`` tuples.  The STATS this subproblem
    bumps land in the worker's registry and ride back to the parent in
    the pool's telemetry envelope (:mod:`repro.runtime.pool`) — the old
    hand-rolled counter delta this function used to return is exactly
    what that envelope now carries for *every* fan-out.
    """
    num_vars, clauses, projection, variables, prefix, generalize = args
    with _obs.span(
        "sat.component", vars=len(variables), prefix=len(prefix)
    ) as comp_span:
        sub = CnfInstance(num_vars)
        sub.clauses = [list(clause) for clause in clauses]
        for lit in prefix:
            sub.clauses.append([lit])
        enumerator = _ComponentEnumerator(
            sub, projection, variables=set(variables), generalize=generalize
        )
        out = [(cube.lits, cube.free) for cube in enumerator.cubes()]
        comp_span.set("cubes", len(out))
    return out


def _parallel_component_cubes(
    components: List[Tuple[List[List[int]], List[int]]],
    num_vars: int,
    generalize: bool,
    workers: int,
) -> Optional[List[List[Cube]]]:
    """Fan the component cube streams over worker processes.

    Multiple components parallelize as-is; a *single* large component is
    cut into ``2^depth`` disjoint decision-prefix subtrees over its first
    (sorted) projection variables.  Returns the collected cube list per
    projection-bearing component — union-only combining, so the covered
    model set is identical for every worker count — or ``None`` when some
    component is unsatisfiable (a component is unsatisfiable iff *all* of
    its subtrees come back empty).

    The fan-out runs through :func:`repro.runtime.pool.map_with_recovery`:
    a crashed worker's jobs are re-run inline in the parent, and since the
    combine is a pure union the masks stay bit-identical for any crash
    pattern; executor shutdown always cancels pending futures, so no
    orphan worker survives an error or ``KeyboardInterrupt`` mid-map.
    """
    jobs: List[Tuple[int, tuple]] = []
    for comp_id, (clauses, projection) in enumerate(components):
        variables = sorted({abs(lit) for clause in clauses for lit in clause})
        prefixes: List[Tuple[int, ...]] = [()]
        if len(components) == 1 and len(projection) >= PARALLEL_SPLIT_MIN_VARS:
            depth = 0
            while (
                (1 << depth) < workers * PARALLEL_SPLIT_FACTOR
                and depth < len(projection) - 1
                and depth < PARALLEL_SPLIT_MAX_DEPTH
            ):
                depth += 1
            split_vars = sorted(projection)[:depth]
            prefixes = [
                tuple(
                    var if code >> position & 1 else -var
                    for position, var in enumerate(split_vars)
                )
                for code in range(1 << depth)
            ]
        for prefix in prefixes:
            jobs.append(
                (
                    comp_id,
                    (num_vars, clauses, projection, variables, prefix, generalize),
                )
            )
    pool_size = min(workers, len(jobs))
    outcomes = _pool.map_with_recovery(
        _component_worker,
        [args for _, args in jobs],
        workers=pool_size,
        label="allsat component fan-out",
    )
    STATS.inc("parallel_enumerations")
    STATS.inc("parallel_components", len(jobs))
    STATS["parallel_workers"] = pool_size
    per_component: List[List[Cube]] = [[] for _ in components]
    for (comp_id, _), cubes in zip(jobs, outcomes):
        per_component[comp_id].extend(Cube(lits, free) for lits, free in cubes)
    streams: List[List[Cube]] = []
    for (clauses, projection), cubes in zip(components, per_component):
        if not cubes:
            return None  # unsatisfiable component: no models at all
        if projection:
            streams.append(cubes)
    return streams


def _primed_split(
    instance: CnfInstance,
    proj_vars: Sequence[int],
    assumptions: Sequence[int],
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...], List[List[int]], Set[int]]]:
    """Prime level-0 units + assumptions and split the reduced CNF.

    Returns ``None`` when the instance conflicts under the assumptions
    (no models), else ``(fixed, free, residual, constrained)``: the
    projection literals already decided by propagation, the projection
    variables no residual clause mentions (free bits of every cube), the
    reduced unsatisfied clauses, and the set of variables they mention.
    """
    probe = Solver(instance)
    if not probe.prime(assumptions):
        return None
    # Split the CNF under the primed assignment: clauses already satisfied
    # are gone for good (their supporting literal sits at or below the
    # assumption level and never backtracks), falsified literals drop out.
    fixed: List[int] = []
    residual: List[List[int]] = []
    value = probe._value
    for clause in probe.clauses:
        reduced: List[int] = []
        satisfied = False
        for lit in clause:
            lit_value = value(lit)
            if lit_value == 1:
                satisfied = True
                break
            if lit_value == -1:
                reduced.append(lit)
        if not satisfied:
            residual.append(reduced)
    constrained: Set[int] = set()
    for clause in residual:
        for lit in clause:
            constrained.add(abs(lit))
    free: List[int] = []
    for var in proj_vars:
        assigned = probe.value_of(var)
        if assigned is not None:
            fixed.append(var if assigned else -var)
        elif var not in constrained:
            free.append(var)
    return tuple(fixed), tuple(free), residual, constrained


class CubeStream:
    """A resumable projected cube stream — the serial enumeration engine.

    Reifies :func:`enumerate_cubes`'s serial paths as an object whose
    entire progress (primed split, per-component solver state machines,
    collection buffers, the cross-product odometer, the produced-model
    counter) persists across interrupts: when a budget checkpoint raises
    (:class:`repro.runtime.EngineTimeout`, cancellation, model-budget
    exhaustion) mid-stream, calling :meth:`cubes` again *continues* the
    same stream — the interrupted solver search resumes in place, a cube
    charged but never handed out is delivered first, and the completed
    stream is exactly the uninterrupted one: duplicate-free and lossless.

    Every emitted cube passes one :func:`repro.runtime.checkpoint` and
    charges its covered models against the governing budget *before* it
    is handed out, so deadlines land within one cube and budget raises
    never lose the cube they interrupted.
    """

    def __init__(
        self,
        instance: CnfInstance,
        projection: Optional[Sequence[int]] = None,
        limit: Optional[int] = None,
        assumptions: Sequence[int] = (),
        generalize: Optional[bool] = None,
        split: Optional[bool] = None,
    ) -> None:
        self._instance = instance
        if projection is None:
            self._proj_vars = list(range(1, instance.num_vars + 1))
        else:
            self._proj_vars = sorted(set(projection))
        self._limit = limit
        self._assumptions = tuple(assumptions)
        self._generalize = CUBES if generalize is None else generalize
        self._split = COMPONENTS if split is None else split
        self._state = "new"  # new | live | done
        self._stopped = False
        self._pending: Optional[Cube] = None
        self._base: Optional[Cube] = None
        self._checkers: List[_ComponentEnumerator] = []
        self._checker_pos = 0
        self._enumerators: List[_ComponentEnumerator] = []
        self._emitted_base = False
        self._produced = 0
        self._collected: Optional[List[List[Cube]]] = None
        self._bucket_produced: List[int] = []
        self._collect_pos = 0
        self._indices: Optional[List[int]] = None

    @property
    def produced(self) -> int:
        """Models covered by the cubes handed out so far."""
        return self._produced

    def _prime(self) -> bool:
        """One-time setup; False when the instance has no models."""
        instance = self._instance
        if instance.has_empty_clause:
            return False
        STATS.inc("enumerations")
        primed = _primed_split(instance, self._proj_vars, self._assumptions)
        if primed is None:
            return False
        fixed_tuple, free_tuple, residual, constrained = primed
        self._base = Cube(fixed_tuple, free_tuple)
        if not residual:
            return True  # everything decided by propagation: base only
        proj_set = set(self._proj_vars)
        components = (
            _split_components(residual, proj_set)
            if self._split
            else [(residual, sorted(constrained & proj_set))]
        )
        if len(components) > 1:
            STATS.inc("components", len(components))
        for clauses, component_projection in components:
            component_vars = {abs(lit) for clause in clauses for lit in clause}
            sub = CnfInstance(instance.num_vars)
            sub.clauses = clauses
            enumerator = _ComponentEnumerator(
                sub,
                component_projection,
                variables=component_vars,
                generalize=self._generalize,
            )
            if component_projection:
                self._enumerators.append(enumerator)
            else:
                # No projected letter in sight: only satisfiability
                # matters — settled in _next before anything is yielded.
                self._checkers.append(enumerator)
        return True

    def _note(self, cube: Cube) -> Cube:
        STATS.inc("cubes")
        STATS.inc("models", cube.model_count())
        self._produced += cube.model_count()
        return cube

    def _deliver(self) -> Cube:
        """Checkpoint, charge and hand out the stashed cube.

        A raise here (deadline, cancellation, model budget) keeps the
        cube in ``_pending``; the resumed stream delivers it first.
        """
        cube = self._pending
        _runtime.checkpoint()
        _runtime.charge_models(cube.model_count())
        self._pending = None
        return cube

    def _next(self) -> Optional[Cube]:
        if self._pending is not None:
            return self._deliver()
        if self._stopped:
            return None
        # Projection-free components: one satisfiability check each,
        # before any cube is yielded.
        while self._checker_pos < len(self._checkers):
            if self._checkers[self._checker_pos].next_cube() is None:
                self._stopped = True
                return None  # unsatisfiable component: no models at all
            self._checker_pos += 1
        if not self._enumerators:
            if self._emitted_base:
                self._stopped = True
                return None
            self._emitted_base = True
            self._stopped = True
            self._pending = self._note(self._base)
            return self._deliver()
        if len(self._enumerators) == 1:
            # The common (connected-CNF) case streams: each cube costs
            # one solver resume, never a full collection pass.
            part = self._enumerators[0].next_cube()
            if part is None:
                self._stopped = True
                return None
            cube = self._note(_merge_cubes([self._base, part]))
            if self._limit is not None and self._produced >= self._limit:
                self._stopped = True
            self._pending = cube
            return self._deliver()
        # Multiple projection-bearing components: collect each stream
        # once, then cross-product through the odometer.
        if self._collected is None:
            self._collected = [[] for _ in self._enumerators]
            self._bucket_produced = [0] * len(self._enumerators)
        while self._collect_pos < len(self._enumerators):
            position = self._collect_pos
            enumerator = self._enumerators[position]
            bucket = self._collected[position]
            while (
                self._limit is None
                or self._bucket_produced[position] < self._limit
            ):
                part = enumerator.next_cube()
                if part is None:
                    break
                bucket.append(part)
                self._bucket_produced[position] += part.model_count()
            if not bucket:
                self._stopped = True
                return None  # unsatisfiable component
            self._collect_pos += 1
        if self._indices is None:
            self._indices = [0] * len(self._collected)
        parts = [self._base] + [
            bucket[i] for bucket, i in zip(self._collected, self._indices)
        ]
        cube = self._note(_merge_cubes(parts))
        # Advance the odometer (last component fastest) *before* the
        # delivery checkpoint, so an interrupted charge never replays
        # the same index vector on resume.
        position = len(self._collected) - 1
        while position >= 0:
            self._indices[position] += 1
            if self._indices[position] < len(self._collected[position]):
                break
            self._indices[position] = 0
            position -= 1
        if position < 0:
            self._stopped = True
        if self._limit is not None and self._produced >= self._limit:
            self._stopped = True
        self._pending = cube
        return self._deliver()

    def cubes(self) -> Iterator[Cube]:
        """Stream the cubes; re-callable — resumes after an interrupt."""
        if self._state == "done":
            return
        if self._state == "new":
            # Flip to "live" only after priming succeeds: a budget raise
            # inside the priming solve leaves the stream "new", and the
            # next call simply primes again (nothing was yielded yet).
            if not self._prime():
                self._state = "done"
                return
            self._state = "live"
        while True:
            cube = self._next()
            if cube is None:
                self._state = "done"
                return
            yield cube


def enumerate_cubes(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
    assumptions: Sequence[int] = (),
    generalize: Optional[bool] = None,
    split: Optional[bool] = None,
    parallel: Optional[bool] = None,
) -> Iterator[Cube]:
    """Yield cubes jointly covering every projected model exactly once.

    The incremental counterpart of the blocking-clause
    :func:`repro.sat.enumerate.enumerate_models`: same projection
    semantics (each *projected* model covered exactly once; without a
    projection, all variables), but models arrive grouped into
    :class:`Cube` partial assignments whose free variables the caller
    expands — or counts as ``2^k`` without expanding.

    ``limit`` bounds the number of *models* covered: the stream stops
    after the cube that reaches it (the final cube may overshoot; callers
    expanding models apply the exact cap).  ``assumptions`` constrain the
    search like :meth:`Solver.solve` assumptions do — the incremental-
    carrier path enumerates deltas under them.  ``generalize`` / ``split``
    / ``parallel`` override the live :data:`CUBES` / :data:`COMPONENTS` /
    :data:`PARALLEL` defaults; fan-out additionally requires an unlimited
    enumeration, more than one granted worker, and no governing deadline
    (worker processes cannot observe the parent's checkpoints — under a
    deadline or cancellable :class:`repro.runtime.Budget` the resumable
    serial engine serves instead), and changes only the cube partition —
    never the covered model set.

    Serial enumerations run on a :class:`CubeStream`, so a budget
    checkpoint raise mid-stream is resumable: hold on to the stream
    object (construct it directly) to continue after an interrupt.
    """
    if generalize is None:
        generalize = CUBES
    if split is None:
        split = COMPONENTS
    if parallel is None:
        parallel = PARALLEL
    if instance.has_empty_clause:
        return
    if projection is None:
        proj_vars = list(range(1, instance.num_vars + 1))
    else:
        proj_vars = sorted(set(projection))

    workers = 1
    if parallel and limit is None and _runtime.allows_fanout():
        from ..logic import shards as _shards

        workers = _shards.parallel_workers(len(proj_vars))
    if workers > 1:
        yield from _enumerate_parallel(
            instance, proj_vars, assumptions, generalize, split, workers
        )
        return

    stream = CubeStream(
        instance,
        projection=proj_vars,
        limit=limit,
        assumptions=assumptions,
        generalize=generalize,
        split=split,
    )
    yield from stream.cubes()


def _enumerate_parallel(
    instance: CnfInstance,
    proj_vars: List[int],
    assumptions: Sequence[int],
    generalize: bool,
    split: bool,
    workers: int,
) -> Iterator[Cube]:
    """The process fan-out path of :func:`enumerate_cubes` (unlimited
    enumerations only): collect per-component cube lists from the worker
    pool, then merge/odometer exactly like the serial engine."""
    STATS.inc("enumerations")
    primed = _primed_split(instance, proj_vars, assumptions)
    if primed is None:
        return
    fixed_tuple, free_tuple, residual, constrained = primed

    def emitted(cube: Cube) -> Cube:
        STATS.inc("cubes")
        STATS.inc("models", cube.model_count())
        _runtime.checkpoint()
        _runtime.charge_models(cube.model_count())
        return cube

    if not residual:
        # Everything decided by propagation: one cube covers it all.
        yield emitted(Cube(fixed_tuple, free_tuple))
        return

    proj_set = set(proj_vars)
    components = (
        _split_components(residual, proj_set)
        if split
        else [(residual, sorted(constrained & proj_set))]
    )
    if len(components) > 1:
        STATS.inc("components", len(components))

    base = Cube(fixed_tuple, free_tuple)
    streams = _parallel_component_cubes(
        components, instance.num_vars, generalize, workers
    )
    if streams is None:
        return  # unsatisfiable component
    if not streams:
        yield emitted(base)
        return
    if len(streams) == 1:
        for cube in streams[0]:
            yield emitted(_merge_cubes([base, cube]))
        return
    indices = [0] * len(streams)
    while True:
        parts = [base] + [stream[i] for stream, i in zip(streams, indices)]
        yield emitted(_merge_cubes(parts))
        # Odometer over the component streams, last component fastest.
        position = len(streams) - 1
        while position >= 0:
            indices[position] += 1
            if indices[position] < len(streams[position]):
                break
            indices[position] = 0
            position -= 1
        if position < 0:
            return


def enumerate_models(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
    assumptions: Sequence[int] = (),
) -> Iterator[Tuple[int, ...]]:
    """Projected total models via the incremental enumerator.

    Same contract as the blocking-clause
    :func:`repro.sat.enumerate.enumerate_models` — each yielded value a
    tuple of signed literals over the (sorted) projection variables, each
    projected model exactly once, at most ``limit`` of them — produced by
    expanding :func:`enumerate_cubes` deterministically.
    """
    produced = 0
    for cube in enumerate_cubes(instance, projection, limit, assumptions):
        for model in cube.iter_models():
            yield model
            produced += 1
            if limit is not None and produced >= limit:
                return


def count_models(
    instance: CnfInstance,
    projection: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
    assumptions: Sequence[int] = (),
) -> int:
    """Count projected models on the cubes — ``sum(2^k)``, no expansion.

    This is what makes the dispatch probe of
    :func:`repro.sat.interface.model_count_bound` cheap at large
    alphabets: a DNF-shaped KB counts in ``O(#cubes)`` solver resumes and
    never materializes a single per-model object.  A non-positive
    ``limit`` is 0 immediately (the cap semantics, uniform across tiers).
    """
    if limit is not None and limit <= 0:
        return 0
    total = 0
    for cube in enumerate_cubes(instance, projection, limit, assumptions):
        total += cube.model_count()
        if limit is not None and total >= limit:
            return limit
    return total


def cube_masks(
    cubes: Iterable[Cube], bit_of: Dict[int, int]
) -> Iterator[int]:
    """Expand cubes straight into packed model masks.

    ``bit_of`` maps solver variables to alphabet bit positions.  This is
    the direct-to-mask emission path of :func:`repro.sat.bit_models`: no
    per-model tuples, dicts, frozensets or Interpretation objects — one
    int per covered model, free completions ascending.  Delegates to the
    one canonical expansion, :func:`repro.logic.sparse.expand_cubes`.
    """
    from ..logic.sparse import expand_cubes

    return expand_cubes(cube.mask_pair(bit_of) for cube in cubes)
