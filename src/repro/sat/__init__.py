"""SAT substrate: DPLL solver, model enumeration, formula-level interface."""

from .dimacs import read_dimacs, write_dimacs
from .enumerate import count_models as count_cnf_models
from .enumerate import enumerate_models
from .interface import (
    bit_models,
    count_models,
    entails,
    equivalent,
    is_satisfiable,
    is_valid,
    model_count_bound,
    models,
    query_equivalent,
    satisfies,
)
from .solver import CnfInstance, Solver

__all__ = [
    "CnfInstance",
    "Solver",
    "bit_models",
    "count_cnf_models",
    "count_models",
    "entails",
    "enumerate_models",
    "equivalent",
    "is_satisfiable",
    "is_valid",
    "model_count_bound",
    "models",
    "query_equivalent",
    "read_dimacs",
    "satisfies",
    "write_dimacs",
]
