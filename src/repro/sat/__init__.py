"""SAT substrate: DPLL solver, incremental AllSAT enumeration, formula
interface."""

from . import allsat
from .allsat import enumerate_cubes
from .dimacs import read_dimacs, write_dimacs
from .enumerate import count_models as count_cnf_models
from .enumerate import enumerate_models, enumerate_models_blocking
from .interface import (
    bit_models,
    compilation_tier,
    count_models,
    entails,
    equivalent,
    incremental_bit_models,
    is_satisfiable,
    is_valid,
    model_count_bound,
    models,
    query_equivalent,
    satisfies,
)
from .solver import CnfInstance, Solver

__all__ = [
    "CnfInstance",
    "Solver",
    "allsat",
    "bit_models",
    "compilation_tier",
    "count_cnf_models",
    "count_models",
    "entails",
    "enumerate_cubes",
    "enumerate_models",
    "enumerate_models_blocking",
    "equivalent",
    "incremental_bit_models",
    "is_satisfiable",
    "is_valid",
    "model_count_bound",
    "models",
    "query_equivalent",
    "read_dimacs",
    "satisfies",
    "write_dimacs",
]
