"""The retained frozenset reference engine for the model-based operators.

This module preserves, verbatim in spirit, the pre-bitmask semantics
pipeline: interpretations are ``frozenset[str]``, model enumeration calls
:meth:`Formula.evaluate` once per interpretation, ``min⊆`` is the all-pairs
scan, and each operator's selection rule manipulates frozensets.  It exists
for two reasons:

* **equivalence testing** — the hypothesis suite asserts that the bitmask
  engine (:mod:`repro.logic.bitmodels` + :mod:`repro.revision.model_based`)
  returns *identical* model sets on random ``(T, P)`` pairs;
* **benchmarking** — ``benchmarks/bench_revision_perf.py`` times this
  engine against the bitmask engine to document the speedup.

Do not "optimise" this module: its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..logic.formula import Formula, FormulaLike, as_formula
from ..logic.interpretation import Interpretation
from ..logic.theory import Theory, TheoryLike

ModelSet = FrozenSet[Interpretation]

REFERENCE_OPERATOR_NAMES: Tuple[str, ...] = (
    "winslett",
    "borgida",
    "forbus",
    "satoh",
    "dalal",
    "weber",
)


def reference_models(formula: Formula, alphabet: Sequence[str]) -> ModelSet:
    """Model enumeration by per-interpretation evaluation (the old engine)."""
    names = sorted(set(alphabet))
    count = len(names)
    found: Set[Interpretation] = set()
    for mask in range(1 << count):
        model = frozenset(names[i] for i in range(count) if mask >> i & 1)
        if formula.evaluate(model):
            found.add(model)
    return frozenset(found)


def _min_subset(sets: Iterable[FrozenSet[str]]) -> List[FrozenSet[str]]:
    """The original all-pairs ``min⊆`` scan."""
    unique = list(dict.fromkeys(sets))
    return [
        candidate
        for candidate in unique
        if not any(other < candidate for other in unique)
    ]


def _mu(model: Interpretation, p_models: Sequence[Interpretation]) -> List[FrozenSet[str]]:
    return _min_subset([model ^ n for n in p_models])


def _k_pointwise(model: Interpretation, p_models: Sequence[Interpretation]) -> int:
    sizes = [len(model ^ n) for n in p_models]
    if not sizes:
        raise ValueError("P has no models")
    return min(sizes)


def _delta(t_models: ModelSet, p_models: Sequence[Interpretation]) -> List[FrozenSet[str]]:
    union: List[FrozenSet[str]] = []
    for model in t_models:
        union.extend(_mu(model, p_models))
    return _min_subset(union)


def _select_winslett(t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    p_list = list(p_models)
    selected: Set[Interpretation] = set()
    for model in t_models:
        minimal = set(map(frozenset, _mu(model, p_list)))
        for candidate in p_list:
            if model ^ candidate in minimal:
                selected.add(candidate)
    return frozenset(selected)


def _select_borgida(t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    both = t_models & p_models
    if both:
        return both
    return _select_winslett(t_models, p_models)


def _select_forbus(t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    p_list = list(p_models)
    selected: Set[Interpretation] = set()
    for model in t_models:
        threshold = _k_pointwise(model, p_list)
        for candidate in p_list:
            if len(model ^ candidate) == threshold:
                selected.add(candidate)
    return frozenset(selected)


def _select_satoh(t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    minimal = set(map(frozenset, _delta(t_models, list(p_models))))
    selected: Set[Interpretation] = set()
    for candidate in p_models:
        for model in t_models:
            if candidate ^ model in minimal:
                selected.add(candidate)
                break
    return frozenset(selected)


def _select_dalal(t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    p_list = list(p_models)
    threshold = min(
        min(len(candidate ^ model) for candidate in p_list) for model in t_models
    )
    selected: Set[Interpretation] = set()
    for candidate in p_list:
        for model in t_models:
            if len(candidate ^ model) == threshold:
                selected.add(candidate)
                break
    return frozenset(selected)


def _select_weber(t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    allowed: Set[str] = set()
    for diff in _delta(t_models, list(p_models)):
        allowed |= diff
    selected: Set[Interpretation] = set()
    for candidate in p_models:
        for model in t_models:
            if candidate ^ model <= allowed:
                selected.add(candidate)
                break
    return frozenset(selected)


_SELECTORS = {
    "winslett": _select_winslett,
    "borgida": _select_borgida,
    "forbus": _select_forbus,
    "satoh": _select_satoh,
    "dalal": _select_dalal,
    "weber": _select_weber,
}


def reference_select(name: str, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
    """Apply operator ``name``'s selection rule, frozenset semantics.

    Shares the engine's degenerate-case conventions: no models of ``P``
    gives the empty result; no models of ``T`` gives ``P``.
    """
    if name not in _SELECTORS:
        raise KeyError(f"unknown model-based operator {name!r}")
    if not p_models:
        return frozenset()
    if not t_models:
        return frozenset(p_models)
    return _SELECTORS[name](frozenset(t_models), frozenset(p_models))


def reference_revise(
    theory: TheoryLike, new_formula: FormulaLike, name: str
) -> Tuple[Tuple[str, ...], ModelSet]:
    """``(alphabet, model set)`` of ``T * P`` via the frozenset pipeline.

    Everything — enumeration, distances, selection — goes through the
    retained frozenset code paths, making this the ground truth the bitmask
    engine is verified against.
    """
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    alphabet = tuple(sorted(theory.variables() | formula.variables()))
    t_models = reference_models(theory.conjunction(), alphabet)
    p_models = reference_models(formula, alphabet)
    return alphabet, reference_select(name, t_models, p_models)
