"""Model-based revision/update operators (Section 2.2.2).

Six operators, all obeying "irrelevance of syntax": they see only the model
sets of ``T`` and ``P``.

Pointwise (update-style — proximity judged per model of ``T``):

* :class:`WinslettOperator` — inclusion-minimal differences per model;
* :class:`BorgidaOperator`  — Winslett when ``T ∧ P`` inconsistent, else
  simply ``T ∧ P``;
* :class:`ForbusOperator`   — cardinality-minimal differences per model.

Global (revision-style — proximity judged against all models of ``T``):

* :class:`SatohOperator` — inclusion-minimal differences overall;
* :class:`DalalOperator` — cardinality-minimal differences overall;
* :class:`WeberOperator` — differences confined to ``Omega``, the union of
  all inclusion-minimal differences.

Every ``revise`` computes the ground-truth model set by enumeration on the
bitmask engine (:mod:`repro.logic.bitmodels`).  Below the truth-table
cutoff the selection rules run *bit-parallel*: a model set is one big-int,
``{M △ N : N |= P}`` is an XOR-translation of that integer, ``min⊆`` is a
subset-sum closure, and Hamming balls grow by single-bit flips — so the
per-model work is a handful of big-int operations instead of a Python loop
over models of ``P``.  Above the cutoff the same rules run on packed masks
(XOR + popcount per pair).  The retained frozenset semantics lives in
:mod:`repro.revision.reference` and the hypothesis suite asserts both
engines agree; the containment relations among the six results (paper
Fig. 2) are asserted by ``tests/test_revision_containment.py``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Set, Tuple

from ..logic.bitmodels import (
    _TABLE_MAX_LETTERS,
    BitAlphabet,
    BitModelSet,
    iter_set_bits,
    min_hamming_distance_tables,
    minimal_elements_table,
    xor_translate_table,
)
from ..logic.formula import FormulaLike, as_formula
from ..logic.interpretation import Interpretation
from ..logic.theory import Theory, TheoryLike
from .base import RevisionOperator, RevisionResult
from .distances import (
    delta_masks,
    k_global_masks,
    k_pointwise_masks,
    mu_masks,
    omega_mask,
)

ModelSet = FrozenSet[Interpretation]


class ModelBasedOperator(RevisionOperator):
    """Shared driver: enumerate models bit-parallel, delegate the rule."""

    syntax_sensitive = False

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        alphabet = BitAlphabet(self._alphabet(theory, formula))
        t_bits = self._bit_models_of(theory.conjunction(), alphabet)
        p_bits = self._bit_models_of(formula, alphabet)
        return RevisionResult(
            self.name, alphabet.letters, self._select_bits(t_bits, p_bits)
        )

    def revise_result(
        self, previous: RevisionResult, new_formula: FormulaLike
    ) -> RevisionResult:
        formula = as_formula(new_formula)
        alphabet = BitAlphabet(set(previous.alphabet) | formula.variables())
        t_bits = self._extend_bits(previous.bit_model_set, alphabet)
        p_bits = self._bit_models_of(formula, alphabet)
        return RevisionResult(
            self.name, alphabet.letters, self._select_bits(t_bits, p_bits)
        )

    def _select_bits(self, t_bits: BitModelSet, p_bits: BitModelSet) -> BitModelSet:
        """Apply the operator's selection rule (degenerate cases shared)."""
        if not p_bits.masks:
            return p_bits.with_masks(())
        if not t_bits.masks:
            return p_bits
        if len(p_bits.alphabet) <= _TABLE_MAX_LETTERS:
            return p_bits.with_masks(self._select_tables(t_bits, p_bits))
        return p_bits.with_masks(self._select_masks(t_bits.masks, p_bits.masks))

    # -- selection rules, two encodings each --------------------------------

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        """Bit-parallel selection on big-int truth tables (small alphabets)."""
        raise NotImplementedError

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        """Mask-at-a-time selection (any alphabet size)."""
        raise NotImplementedError

    # Kept for API compatibility with pre-bitmask callers/tests.
    def _select(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        """Frozenset boundary around :meth:`_select_bits`."""
        letters: Set[str] = set()
        for model in t_models:
            letters |= model
        for model in p_models:
            letters |= model
        alphabet = BitAlphabet(letters)
        selected = self._select_bits(
            BitModelSet.from_interpretations(alphabet, t_models),
            BitModelSet.from_interpretations(alphabet, p_models),
        )
        return selected.to_frozensets()


class WinslettOperator(ModelBasedOperator):
    """Winslett's Possible Models Approach (update).

    ``M(T ◇ P) = { N |= P : ∃M |= T, M △ N ∈ mu(M, P) }``.

    Per model ``M`` of ``T``, the bit-parallel route XOR-translates the
    whole ``P`` table by ``M`` (giving the table of differences), extracts
    its inclusion-minimal elements with the subset-sum closure, and
    translates back — ``N = M △ (M △ N)`` makes the selected models a
    translation of the minimal-difference table.
    """

    name = "winslett"

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        alphabet = t_bits.alphabet
        p_table = p_bits.table()
        selected = 0
        for model in t_bits.masks:
            diffs = xor_translate_table(p_table, model, alphabet)
            minimal = minimal_elements_table(diffs, alphabet)
            selected |= xor_translate_table(minimal, model, alphabet)
        return iter_set_bits(selected)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        p_list = list(p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            selected.update(model ^ diff for diff in mu_masks(model, p_list))
        return selected


class BorgidaOperator(ModelBasedOperator):
    """Borgida's operator: ``T ∧ P`` when consistent, else Winslett."""

    name = "borgida"

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        both = t_bits.masks & p_bits.masks
        if both:
            return both
        return WinslettOperator()._select_tables(t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        both = t_masks & p_masks
        if both:
            return both
        return WinslettOperator()._select_masks(t_masks, p_masks)


class ForbusOperator(ModelBasedOperator):
    """Forbus' operator: per-model cardinality minimisation.

    ``M(T ◇ P) = { N |= P : ∃M |= T, |M △ N| = k_{M,P} }``.

    Bit-parallel: the difference table intersected with the cached
    popcount-``k`` layer tables finds the first non-empty distance ring
    without touching individual models of ``P``.
    """

    name = "forbus"

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        alphabet = t_bits.alphabet
        p_table = p_bits.table()
        layers = alphabet.popcount_layers()
        selected = 0
        for model in t_bits.masks:
            diffs = xor_translate_table(p_table, model, alphabet)
            for layer in layers:
                ring = diffs & layer
                if ring:
                    selected |= xor_translate_table(ring, model, alphabet)
                    break
        return iter_set_bits(selected)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        p_list = list(p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            threshold = k_pointwise_masks(model, p_list)
            selected.update(
                candidate
                for candidate in p_list
                if (model ^ candidate).bit_count() == threshold
            )
        return selected


def _delta_table(t_bits: BitModelSet, p_bits: BitModelSet) -> int:
    """``delta(T, P)`` as a truth table: minimal elements of all differences."""
    alphabet = t_bits.alphabet
    p_table = p_bits.table()
    diffs = 0
    for model in t_bits.masks:
        diffs |= xor_translate_table(p_table, model, alphabet)
    return minimal_elements_table(diffs, alphabet)


class SatohOperator(ModelBasedOperator):
    """Satoh's operator: global inclusion-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ∈ delta(T, P) }``.
    """

    name = "satoh"

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        alphabet = t_bits.alphabet
        delta_tab = _delta_table(t_bits, p_bits)
        reachable = 0
        for model in t_bits.masks:
            reachable |= xor_translate_table(delta_tab, model, alphabet)
        return iter_set_bits(reachable & p_bits.table())

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        minimal = delta_masks(t_masks, p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            for diff in minimal:
                candidate = model ^ diff
                if candidate in p_masks:
                    selected.add(candidate)
        return selected


class DalalOperator(ModelBasedOperator):
    """Dalal's operator: global cardinality-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, |N △ M| = k_{T,P} }``.

    Bit-parallel: grow the Hamming ball around the whole ``T`` table one
    ring at a time; the first intersection with the ``P`` table is exactly
    the selected model set.
    """

    name = "dalal"

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        p_table = p_bits.table()
        _, ball = min_hamming_distance_tables(
            t_bits.table(), p_table, t_bits.alphabet
        )
        return iter_set_bits(ball & p_table)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        threshold = k_global_masks(t_masks, p_masks)
        t_list = list(t_masks)
        return {
            candidate
            for candidate in p_masks
            if any(
                (candidate ^ model).bit_count() == threshold for model in t_list
            )
        }


class WeberOperator(ModelBasedOperator):
    """Weber's operator: differences confined to ``Omega = ∪ delta(T,P)``.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ⊆ Omega }``.

    Bit-parallel: closing the ``T`` table under single-bit flips of the
    ``Omega`` letters yields every interpretation within an ``Omega``-
    confined difference of ``T`` (flips commute, so one pass per letter
    suffices); intersecting with the ``P`` table finishes the selection.
    """

    name = "weber"

    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        alphabet = t_bits.alphabet
        delta_tab = _delta_table(t_bits, p_bits)
        allowed = 0
        for diff in iter_set_bits(delta_tab):
            allowed |= diff
        reachable = t_bits.table()
        while allowed:
            low = allowed & -allowed
            reachable |= xor_translate_table(reachable, low, alphabet)
            allowed ^= low
        return iter_set_bits(reachable & p_bits.table())

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        allowed = omega_mask(t_masks, p_masks)
        t_list = list(t_masks)
        return {
            candidate
            for candidate in p_masks
            if any((candidate ^ model) & ~allowed == 0 for model in t_list)
        }
