"""Model-based revision/update operators (Section 2.2.2).

Six operators, all obeying "irrelevance of syntax": they see only the model
sets of ``T`` and ``P``.

Pointwise (update-style — proximity judged per model of ``T``):

* :class:`WinslettOperator` — inclusion-minimal differences per model;
* :class:`BorgidaOperator`  — Winslett when ``T ∧ P`` inconsistent, else
  simply ``T ∧ P``;
* :class:`ForbusOperator`   — cardinality-minimal differences per model.

Global (revision-style — proximity judged against all models of ``T``):

* :class:`SatohOperator` — inclusion-minimal differences overall;
* :class:`DalalOperator` — cardinality-minimal differences overall;
* :class:`WeberOperator` — differences confined to ``Omega``, the union of
  all inclusion-minimal differences.

Every ``revise`` computes the ground-truth model set by enumeration; the
containment relations among the six results (paper Fig. 2) are asserted by
``tests/test_revision_containment.py``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Set, Tuple

from ..logic.formula import FormulaLike, as_formula
from ..logic.interpretation import Interpretation
from ..logic.theory import Theory, TheoryLike
from .base import RevisionOperator, RevisionResult
from .distances import delta, k_global, k_pointwise, mu, omega

ModelSet = FrozenSet[Interpretation]


class ModelBasedOperator(RevisionOperator):
    """Shared driver: enumerate models, delegate the selection rule."""

    syntax_sensitive = False

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        alphabet = self._alphabet(theory, formula)
        t_models = self._models_of(theory.conjunction(), alphabet)
        p_models = self._models_of(formula, alphabet)
        selected = self._select(t_models, p_models)
        return RevisionResult(self.name, alphabet, selected)

    def revise_result(
        self, previous: RevisionResult, new_formula: FormulaLike
    ) -> RevisionResult:
        formula = as_formula(new_formula)
        alphabet = tuple(sorted(set(previous.alphabet) | formula.variables()))
        t_models = self._extend_models(previous.model_set, previous.alphabet, alphabet)
        p_models = self._models_of(formula, alphabet)
        selected = self._select(t_models, p_models)
        return RevisionResult(self.name, alphabet, selected)

    def _select(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        """Apply the operator's selection rule (degenerate cases shared)."""
        if not p_models:
            return frozenset()
        if not t_models:
            return p_models
        return self._select_nondegenerate(t_models, p_models)

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        raise NotImplementedError


class WinslettOperator(ModelBasedOperator):
    """Winslett's Possible Models Approach (update).

    ``M(T ◇ P) = { N |= P : ∃M |= T, M △ N ∈ mu(M, P) }``.
    """

    name = "winslett"

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        p_list = list(p_models)
        selected: Set[Interpretation] = set()
        for model in t_models:
            minimal = set(map(frozenset, mu(model, p_list)))
            for candidate in p_list:
                if model ^ candidate in minimal:
                    selected.add(candidate)
        return frozenset(selected)


class BorgidaOperator(ModelBasedOperator):
    """Borgida's operator: ``T ∧ P`` when consistent, else Winslett."""

    name = "borgida"

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        both = t_models & p_models
        if both:
            return both
        return WinslettOperator()._select_nondegenerate(t_models, p_models)


class ForbusOperator(ModelBasedOperator):
    """Forbus' operator: per-model cardinality minimisation.

    ``M(T ◇ P) = { N |= P : ∃M |= T, |M △ N| = k_{M,P} }``.
    """

    name = "forbus"

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        p_list = list(p_models)
        selected: Set[Interpretation] = set()
        for model in t_models:
            threshold = k_pointwise(model, p_list)
            for candidate in p_list:
                if len(model ^ candidate) == threshold:
                    selected.add(candidate)
        return frozenset(selected)


class SatohOperator(ModelBasedOperator):
    """Satoh's operator: global inclusion-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ∈ delta(T, P) }``.
    """

    name = "satoh"

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        minimal = set(map(frozenset, delta(t_models, p_models)))
        selected: Set[Interpretation] = set()
        for candidate in p_models:
            for model in t_models:
                if candidate ^ model in minimal:
                    selected.add(candidate)
                    break
        return frozenset(selected)


class DalalOperator(ModelBasedOperator):
    """Dalal's operator: global cardinality-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, |N △ M| = k_{T,P} }``.
    """

    name = "dalal"

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        threshold = k_global(t_models, p_models)
        selected: Set[Interpretation] = set()
        for candidate in p_models:
            for model in t_models:
                if len(candidate ^ model) == threshold:
                    selected.add(candidate)
                    break
        return frozenset(selected)


class WeberOperator(ModelBasedOperator):
    """Weber's operator: differences confined to ``Omega = ∪ delta(T,P)``.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ⊆ Omega }``.
    """

    name = "weber"

    def _select_nondegenerate(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        allowed = omega(t_models, p_models)
        selected: Set[Interpretation] = set()
        for candidate in p_models:
            for model in t_models:
                if candidate ^ model <= allowed:
                    selected.add(candidate)
                    break
        return frozenset(selected)
