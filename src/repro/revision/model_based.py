"""Model-based revision/update operators (Section 2.2.2).

Six operators, all obeying "irrelevance of syntax": they see only the model
sets of ``T`` and ``P``.

Pointwise (update-style — proximity judged per model of ``T``):

* :class:`WinslettOperator` — inclusion-minimal differences per model;
* :class:`BorgidaOperator`  — Winslett when ``T ∧ P`` inconsistent, else
  simply ``T ∧ P``;
* :class:`ForbusOperator`   — cardinality-minimal differences per model.

Global (revision-style — proximity judged against all models of ``T``):

* :class:`SatohOperator` — inclusion-minimal differences overall;
* :class:`DalalOperator` — cardinality-minimal differences overall;
* :class:`WeberOperator` — differences confined to ``Omega``, the union of
  all inclusion-minimal differences.

Every ``revise`` computes the ground-truth model set by enumeration on the
bitmask engine (:mod:`repro.logic.bitmodels`); past the bitplane cutoffs
the enumeration itself is the incremental AllSAT subsystem of
:mod:`repro.sat.allsat` — resume-don't-restart chronological search whose
cubes land directly in the sparse tier's mask carrier, so the
enumeration phase of a large-alphabet revision is ``O(#cubes)`` solver
resumes instead of the old quadratic blocking-clause loop.  Each
selection rule is written *once*, against a small table-algebra protocol (:class:`_TableOps`
for Level-2 big-int tables, :class:`_ShardOps` for the Level-3 sharded
tables of :mod:`repro.logic.shards`, :class:`_SparseOps` for the Level-4
sorted-mask carriers of :mod:`repro.logic.sparse`): a model set is one
table, ``{M △ N : N |= P}`` is an XOR-translation of that table, ``min⊆``
is a subset-sum closure (an antichain sweep on the sparse carrier), and
Dalal's/Weber's global proximity go through the protocol's
``min_distance_select`` / ``confined_select`` entries — Hamming-ball
growth and the Ω-closure on the bitplane tiers, blocked XOR/popcount pair
sweeps on the sparse tier, which never materialises a ball.  The
per-T-model work of the pointwise operators (and the translate-union
behind ``delta``/Satoh) goes through the batched entry points —
``pointwise_minimal`` / ``pointwise_ring`` / ``translate_union`` — which
the sharded tier services with the multi-model kernels and the
``REPRO_PARALLEL`` fan-out of :func:`repro.logic.shards.pointwise_select`,
and the sparse tier with the density-proportional pair kernels of
:func:`repro.logic.sparse.pointwise_select` (same env knob, threads on
numpy, processes on pure-int).

The tier is picked per call by :func:`repro.logic.shards.tier`, fed the
model counts of the sets at hand: big-int tables up to
``_TABLE_MAX_LETTERS`` letters, sharded tables up to
``shards.SHARD_MAX_LETTERS``, sparse carriers past the shard cutoff while
the counts fit ``shards.SPARSE_MAX_MODELS`` (all read live), and
packed-mask loops (XOR + popcount per pair) beyond that.  The pick is a
preference, not a commitment: when a tier fails mid-rule — a sparse
intermediate outgrows its budget (:class:`repro.logic.sparse.SparseSpill`)
or a bitplane compile overflows memory (``MemoryError``, including
:class:`repro.runtime.MemoryBudgetExceeded` from an active budget) — the
driver retries one tier down the degradation chain documented on
:func:`repro.logic.shards.tier`, ending on the always-feasible mask
loops; the result is bit-identical on every rung, and each hop is
counted by :func:`repro.runtime.record_demotion`.  Every
:class:`RevisionResult` records the tier that actually served it in
``engine_tier``.  The retained frozenset semantics lives in
:mod:`repro.revision.reference` and the hypothesis suite asserts all
engines agree; the containment relations among the six results (paper
Fig. 2) are asserted by ``tests/test_revision_containment.py``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro import obs as _obs
from repro import runtime as _runtime

from ..logic import shards as _shards
from ..logic import sparse as _sparse
from ..logic.sparse import SparseModelSet, SparseSpill
from ..logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    iter_set_bits,
    min_hamming_distance_tables,
    minimal_elements_table,
    xor_translate_table,
)
from ..logic.formula import FormulaLike, as_formula
from ..logic.interpretation import Interpretation
from ..logic.shards import ShardedTable
from ..logic.theory import Theory, TheoryLike
from .base import RevisionOperator, RevisionResult
from .distances import (
    delta_masks,
    k_global_masks,
    k_pointwise_masks,
    mu_masks,
    omega_mask,
)

ModelSet = FrozenSet[Interpretation]


# ---------------------------------------------------------------------------
# Table algebra protocol — one selection rule, two table tiers
# ---------------------------------------------------------------------------


class _DenseSelectMixin:
    """Dalal's and Weber's global selections on the bitplane tiers.

    Generic over the table protocol (``min_hamming`` / ``translate`` /
    ``& | |=``), shared by the big-int and sharded adapters; the sparse
    adapter replaces both with pair sweeps that never materialise a
    Hamming ball or a ``2^|Ω|`` closure.
    """

    def min_distance_select(self, t_table, p_table):
        """``(k, selected)``: minimum Hamming distance between the tables
        and the members of ``p_table`` attaining it (Dalal's rule)."""
        k, ball = self.min_hamming(t_table, p_table)
        return k, ball & p_table

    def confined_select(self, t_table, p_table, allowed: int):
        """Members of ``p_table`` within an ``allowed``-confined difference
        of ``t_table`` (Weber's rule): close ``T`` under single-bit flips
        of the allowed letters (flips commute, one pass per letter), then
        intersect."""
        reachable = t_table
        while allowed:
            low = allowed & -allowed
            reachable |= self.translate(reachable, low)
            allowed ^= low
        return reachable & p_table

    def reachable_select(self, t_table, p_table, delta_tab):
        """Members of ``p_table`` at a ``delta``-difference from ``t_table``
        (Satoh's rule): translate ``T`` by every delta member — an
        antichain that is tiny on dense workloads — and intersect."""
        reachable = self.translate_union(t_table, self.table_masks(delta_tab))
        return reachable & p_table


class _TableOps(_DenseSelectMixin):
    """Level-2 adapter: tables are ``2^n``-bit Python ints."""

    __slots__ = ("alphabet",)

    def __init__(self, alphabet: BitAlphabet) -> None:
        self.alphabet = alphabet

    def table(self, bits: BitModelSet) -> int:
        return bits.table()

    def wrap(self, table: int) -> BitModelSet:
        return BitModelSet.from_table(self.alphabet, table)

    def zero(self) -> int:
        return 0

    def translate(self, table: int, mask: int) -> int:
        return xor_translate_table(table, mask, self.alphabet)

    def minimal(self, table: int) -> int:
        return minimal_elements_table(table, self.alphabet)

    def first_ring(self, table: int) -> Tuple[int, int]:
        for k, layer in enumerate(self.alphabet.popcount_layers()):
            ring = table & layer
            if ring:
                return k, ring
        raise ValueError("first_ring of an empty table")

    def min_hamming(self, left: int, right: int) -> Tuple[int, int]:
        return min_hamming_distance_tables(left, right, self.alphabet)

    def bits_of(self, table: int) -> Iterator[int]:
        return iter_set_bits(table)

    def model_masks(self, bits: BitModelSet):
        """A model set's masks in the form the tier's loops want."""
        return bits.iter_masks()

    def table_masks(self, table: int):
        """A raw table's set positions, same contract as :meth:`model_masks`."""
        return iter_set_bits(table)

    def translate_union(self, table: int, masks: Iterable[int]) -> int:
        """OR of the XOR-translates of ``table`` by every mask."""
        union = self.zero()
        for mask in masks:
            union |= self.translate(table, mask)
        return union

    def pointwise_minimal(self, t_bits: BitModelSet, p_bits: BitModelSet) -> int:
        """Winslett's rule: per T-model minimal differences, united."""
        p_table = self.table(p_bits)
        selected = self.zero()
        for model in t_bits.iter_masks():
            diffs = self.translate(p_table, model)
            selected |= self.translate(self.minimal(diffs), model)
        return selected

    def pointwise_ring(self, t_bits: BitModelSet, p_bits: BitModelSet) -> int:
        """Forbus' rule: per T-model first popcount ring, united."""
        p_table = self.table(p_bits)
        selected = self.zero()
        for model in t_bits.iter_masks():
            diffs = self.translate(p_table, model)
            _, ring = self.first_ring(diffs)
            selected |= self.translate(ring, model)
        return selected


class _ShardOps(_DenseSelectMixin):
    """Level-3 adapter: tables are :class:`ShardedTable` bitplanes."""

    __slots__ = ("alphabet",)

    def __init__(self, alphabet: BitAlphabet) -> None:
        self.alphabet = alphabet

    def table(self, bits: BitModelSet) -> ShardedTable:
        return bits.sharded()

    def wrap(self, table: ShardedTable) -> BitModelSet:
        return BitModelSet.from_sharded(self.alphabet, table)

    def zero(self) -> ShardedTable:
        return ShardedTable.zeros(self.alphabet)

    def translate(self, table: ShardedTable, mask: int) -> ShardedTable:
        return table.xor_translate(mask)

    def minimal(self, table: ShardedTable) -> ShardedTable:
        return table.minimal_elements()

    def first_ring(self, table: ShardedTable) -> Tuple[int, ShardedTable]:
        return table.first_ring()

    def min_hamming(
        self, left: ShardedTable, right: ShardedTable
    ) -> Tuple[int, ShardedTable]:
        return left.min_hamming(right)

    def bits_of(self, table: ShardedTable) -> Iterator[int]:
        return table.iter_set_bits()

    def translate_union(
        self, table: ShardedTable, masks: Iterable[int]
    ) -> ShardedTable:
        """Batched union of translates (:func:`repro.logic.shards.translate_union`)."""
        return _shards.translate_union(table, masks)

    def model_masks(self, bits: BitModelSet):
        """A model set's masks in bulk form for the batched kernels —
        straight off the numpy bitplane when one exists, so a dense ``T``
        never takes the per-bit Python walk of ``iter_masks``."""
        if bits._masks is not None:
            return list(bits._masks)
        return _shards.table_mask_array(self.table(bits))

    def table_masks(self, table: ShardedTable):
        """A raw table's set positions in the same bulk form."""
        return _shards.table_mask_array(table)

    def pointwise_minimal(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> ShardedTable:
        """Winslett's rule via the batched multi-model kernels."""
        return _shards.pointwise_select(
            "minimal", self.table(p_bits), self.model_masks(t_bits)
        )

    def pointwise_ring(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> ShardedTable:
        """Forbus' rule via the batched multi-model kernels."""
        return _shards.pointwise_select(
            "ring", self.table(p_bits), self.model_masks(t_bits)
        )


class _SparseOps:
    """Level-4 adapter: tables are :class:`SparseModelSet` mask carriers.

    Every entry is density-proportional; the union-shaped ones
    (``translate_union``, hence ``delta``/Satoh) raise
    :class:`SparseSpill` past the live budget, which the operator driver
    turns into a rerun on the mask tier.
    """

    __slots__ = ("alphabet",)

    def __init__(self, alphabet: BitAlphabet) -> None:
        self.alphabet = alphabet

    def table(self, bits: BitModelSet) -> SparseModelSet:
        return bits.sparse()

    def wrap(self, table: SparseModelSet) -> BitModelSet:
        return BitModelSet.from_sparse(self.alphabet, table)

    def zero(self) -> SparseModelSet:
        return SparseModelSet.empty(self.alphabet)

    def translate(self, table: SparseModelSet, mask: int) -> SparseModelSet:
        return table.translate(mask)

    def minimal(self, table: SparseModelSet) -> SparseModelSet:
        return table.minimal_elements()

    def first_ring(self, table: SparseModelSet) -> Tuple[int, SparseModelSet]:
        return table.first_ring()

    def bits_of(self, table: SparseModelSet) -> Iterator[int]:
        return table.iter_masks()

    def model_masks(self, bits: BitModelSet):
        """A model set's masks in bulk form — the sparse carrier itself
        (it iterates ascending and the kernels read its columns)."""
        return bits.sparse()

    def table_masks(self, table: SparseModelSet):
        return table

    def translate_union(
        self, table: SparseModelSet, masks
    ) -> SparseModelSet:
        """Budget-guarded union of translates
        (:func:`repro.logic.sparse.translate_union`)."""
        return _sparse.translate_union(table, masks)

    def pointwise_minimal(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> SparseModelSet:
        """Winslett's rule via the density-proportional pair kernels."""
        return _sparse.pointwise_select(
            "minimal", self.table(p_bits), self.model_masks(t_bits)
        )

    def pointwise_ring(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> SparseModelSet:
        """Forbus' rule via the density-proportional pair kernels."""
        return _sparse.pointwise_select(
            "ring", self.table(p_bits), self.model_masks(t_bits)
        )

    def min_distance_select(
        self, t_table: SparseModelSet, p_table: SparseModelSet
    ) -> Tuple[int, SparseModelSet]:
        """Dalal's rule as a blocked pair sweep — no Hamming ball."""
        return _sparse.min_distance_select(t_table, p_table)

    def confined_select(
        self, t_table: SparseModelSet, p_table: SparseModelSet, allowed: int
    ) -> SparseModelSet:
        """Weber's rule as a blocked pair sweep — no ``2^|Ω|`` closure."""
        return _sparse.confined_select(t_table, p_table, allowed)

    def reachable_select(
        self,
        t_table: SparseModelSet,
        p_table: SparseModelSet,
        delta_tab: SparseModelSet,
    ) -> SparseModelSet:
        """Satoh's rule as a membership pair sweep — the reachable set
        (``|T| * |delta|`` masks) is never materialised."""
        return _sparse.reachable_select(t_table, p_table, delta_tab)


#: Adapter class -> the tier label reported on results (see
#: :meth:`ModelBasedOperator._select_bits_tiered` and
#: :func:`_tier_attempts`).
_OPS_TIERS = {_TableOps: "table", _ShardOps: "sharded", _SparseOps: "sparse"}


#: Failures that demote a selection one tier down instead of crashing:
#: a sparse intermediate past its budget, or a bitplane allocation the
#: host (or an active :class:`repro.runtime.Budget`) refused.  Note
#: ``repro.runtime.MemoryBudgetExceeded`` *is a* ``MemoryError``.
_DEMOTABLE = (SparseSpill, MemoryError)


def _ops_for(alphabet: BitAlphabet, model_bound: Optional[int] = None):
    """The table adapter for the alphabet's tier (None for the mask tier).

    ``model_bound`` — an upper bound on the model counts at hand — is what
    makes the dispatch density-aware: past the shard cutoff, bounded sets
    land on :class:`_SparseOps` instead of the mask loops.
    """
    return _ops_for_level(alphabet, _shards.tier(len(alphabet), model_bound))


def _ops_for_level(alphabet: BitAlphabet, level: str):
    if level == "table":
        return _TableOps(alphabet)
    if level == "sharded":
        return _ShardOps(alphabet)
    if level == "sparse":
        return _SparseOps(alphabet)
    return None


def _tier_attempts(
    alphabet: BitAlphabet, model_bound: Optional[int]
) -> List[str]:
    """The degradation chain for this alphabet/density, preferred first.

    Realises the chain documented on :func:`repro.logic.shards.tier`:
    the preferred tier, then — should it raise one of
    :data:`_DEMOTABLE` — each successively cheaper tier, ending on the
    always-feasible ``"masks"`` loops.  A spilled sparse attempt retries
    on the densest *bound-free* tier first (a spill says nothing about
    bitplane feasibility); a sharded compile OOM retries on sparse when
    the density bound fits its budget.
    """
    first = _shards.tier(len(alphabet), model_bound)
    attempts = [first]
    if first == "sparse":
        dense = _shards.tier(len(alphabet))  # no bound: never sparse
        if dense != "masks":
            attempts.append(dense)
    elif first in ("table", "sharded"):
        sparse_ok = (
            _shards.SPARSE_TIER
            and model_bound is not None
            and 0 <= model_bound <= _shards.SPARSE_MAX_MODELS
        )
        if first == "sharded" and sparse_ok:
            attempts.append("sparse")
    if attempts[-1] != "masks":
        attempts.append("masks")
    return attempts


def _delta_tab(ops, t_bits: BitModelSet, p_bits: BitModelSet):
    """``delta(T, P)`` as a table: minimal elements of all differences.

    ``{M △ N : M |= T, N |= P}`` is symmetric in the two roles, so the
    union of translates loops over whichever model set is smaller — for a
    dense theory revised by a narrow ``P`` (or vice versa) this changes the
    loop count by orders of magnitude.
    """
    if t_bits.count() <= p_bits.count():
        fixed, moved = p_bits, t_bits
    else:
        fixed, moved = t_bits, p_bits
    diffs = ops.translate_union(ops.table(fixed), ops.model_masks(moved))
    return ops.minimal(diffs)


def delta_bits(t_bits: BitModelSet, p_bits: BitModelSet) -> List[int]:
    """``delta(T, P)`` as a sorted list of difference masks, tier-dispatched.

    Public entry point for the compact constructions (formula (7) needs the
    set itself); both model sets must be non-empty and share an alphabet.
    Density-aware: past the shard cutoff, bounded-density sets run the
    union-of-translates on the sparse pair kernels, falling back to the
    mask loops when the difference union outgrows the sparse budget.
    """
    if t_bits.alphabet != p_bits.alphabet:
        raise ValueError("model sets range over different alphabets")
    if not t_bits or not p_bits:
        raise ValueError("delta of an empty model set")
    with _obs.span(
        "delta", letters=len(t_bits.alphabet.letters)
    ) as delta_span:
        return _delta_bits_impl(t_bits, p_bits, delta_span)


def _delta_bits_impl(
    t_bits: BitModelSet, p_bits: BitModelSet, delta_span
) -> List[int]:
    attempts = _tier_attempts(
        t_bits.alphabet, max(t_bits.count(), p_bits.count())
    )
    for position, level in enumerate(attempts):
        if position:
            _runtime.record_demotion(attempts[position - 1], level)
        ops = _ops_for_level(t_bits.alphabet, level)
        if ops is None:
            break
        try:
            delta_span.set("tier", level)
            return sorted(ops.bits_of(_delta_tab(ops, t_bits, p_bits)))
        except _DEMOTABLE:
            if position + 1 == len(attempts):
                raise
    delta_span.set("tier", "masks")
    return sorted(delta_masks(t_bits.masks, p_bits.masks))


class ModelBasedOperator(RevisionOperator):
    """Shared driver: enumerate models bit-parallel, delegate the rule."""

    syntax_sensitive = False

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        alphabet = BitAlphabet.coerce(self._alphabet(theory, formula))
        with _obs.span(
            "revise", op=self.name, letters=len(alphabet.letters)
        ) as revise_span:
            t_bits = self._bit_models_of(theory.conjunction(), alphabet)
            p_bits = self._bit_models_of(formula, alphabet)
            result = self.revise_sets(t_bits, p_bits)
            revise_span.set("tier", result.engine_tier)
            return result

    def revise_sets(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> RevisionResult:
        """Apply the operator to already-compiled model sets.

        This is the batched entry point (:func:`repro.revision.batch.
        revise_many` compiles each distinct theory/formula once and feeds
        the cached sets here); both sets must share an alphabet.
        """
        if t_bits.alphabet != p_bits.alphabet:
            raise ValueError("model sets range over different alphabets")
        selected, level = self._select_bits_tiered(t_bits, p_bits)
        result = RevisionResult(self.name, p_bits.alphabet.letters, selected)
        result.engine_tier = level
        return result

    def revise_result(
        self, previous: RevisionResult, new_formula: FormulaLike
    ) -> RevisionResult:
        formula = as_formula(new_formula)
        alphabet = BitAlphabet.coerce(set(previous.alphabet) | formula.variables())
        t_bits = self._extend_bits(previous.bit_model_set, alphabet)
        p_bits = self._bit_models_of(formula, alphabet)
        return self.revise_sets(t_bits, p_bits)

    def _select_bits(self, t_bits: BitModelSet, p_bits: BitModelSet) -> BitModelSet:
        """Apply the operator's selection rule (degenerate cases shared)."""
        return self._select_bits_tiered(t_bits, p_bits)[0]

    def _select_bits_tiered(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Tuple[BitModelSet, str]:
        """Selection plus the tier that actually served it.

        The tier label is what :class:`RevisionResult.engine_tier` and the
        batch layer's per-pair reporting surface.  A demoted selection —
        the preferred tier raised one of :data:`_DEMOTABLE` and a rung of
        :func:`_tier_attempts` served instead — is labelled
        ``"sparse-spill"`` when the preferred tier was sparse (the
        historical name; the intermediate outgrew the budget) and
        ``"<preferred>-demoted-<served>"`` otherwise, e.g.
        ``"sharded-demoted-sparse"`` for a compile OOM absorbed by the
        sparse carrier.  The selected set is bit-identical on every rung;
        each hop is counted by :func:`repro.runtime.record_demotion`.

        Under ``REPRO_TRACE`` the whole dispatch runs in a ``select``
        span whose ``tier`` attribute is the served tier's label — the
        trace-side twin of ``engine_tier``.
        """
        with _obs.span(
            "select", op=self.name, letters=len(p_bits.alphabet.letters)
        ) as select_span:
            selected, label = self._select_bits_tiered_impl(t_bits, p_bits)
            select_span.set("tier", label)
            return selected, label

    def _select_bits_tiered_impl(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Tuple[BitModelSet, str]:
        if not p_bits:
            return p_bits.with_masks(()), "degenerate"
        if not t_bits:
            return p_bits, "degenerate"
        attempts = _tier_attempts(
            p_bits.alphabet, max(t_bits.count(), p_bits.count())
        )
        first = attempts[0]
        for position, level in enumerate(attempts):
            if position:
                _runtime.record_demotion(attempts[position - 1], level)
                label = (
                    "sparse-spill" if first == "sparse"
                    else f"{first}-demoted-{level}"
                )
            else:
                label = level
            ops = _ops_for_level(p_bits.alphabet, level)
            if ops is None:
                selected = p_bits.with_masks(
                    self._select_masks(t_bits.masks, p_bits.masks)
                )
                return selected, label
            try:
                return ops.wrap(self._rule(ops, t_bits, p_bits)), label
            except _DEMOTABLE:
                if position + 1 == len(attempts):
                    raise
        raise AssertionError("tier attempts exhausted without a mask rung")

    # -- selection rules -----------------------------------------------------

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        """Bit-parallel selection on either table tier (returns a table)."""
        raise NotImplementedError

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        """Mask-at-a-time selection (any alphabet size)."""
        raise NotImplementedError

    # Kept for API compatibility with pre-sharding callers/tests: the
    # selection rule on big-int tables, returning the selected masks.
    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        ops = _TableOps(p_bits.alphabet)
        return ops.bits_of(self._rule(ops, t_bits, p_bits))

    # Kept for API compatibility with pre-bitmask callers/tests.
    def _select(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        """Frozenset boundary around :meth:`_select_bits`."""
        letters: Set[str] = set()
        for model in t_models:
            letters |= model
        for model in p_models:
            letters |= model
        alphabet = BitAlphabet.coerce(letters)
        selected = self._select_bits(
            BitModelSet.from_interpretations(alphabet, t_models),
            BitModelSet.from_interpretations(alphabet, p_models),
        )
        return selected.to_frozensets()


class WinslettOperator(ModelBasedOperator):
    """Winslett's Possible Models Approach (update).

    ``M(T ◇ P) = { N |= P : ∃M |= T, M △ N ∈ mu(M, P) }``.

    Per model ``M`` of ``T``: XOR-translate the whole ``P`` table by ``M``
    (giving the table of differences), extract its inclusion-minimal
    elements with the subset-sum closure, and translate back —
    ``N = M △ (M △ N)`` makes the selected models a translation of the
    minimal-difference table.  The protocol's ``pointwise_minimal`` runs
    that rule for whole blocks of T-models per sweep on the sharded tier
    (mask kernels when ``P`` is sparse, broadcast bitplane blocks under
    the ``REPRO_PARALLEL`` fan-out otherwise).
    """

    name = "winslett"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        return ops.pointwise_minimal(t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        p_list = list(p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            selected.update(model ^ diff for diff in mu_masks(model, p_list))
        return selected


class BorgidaOperator(ModelBasedOperator):
    """Borgida's operator: ``T ∧ P`` when consistent, else Winslett."""

    name = "borgida"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        both = ops.table(t_bits) & ops.table(p_bits)
        if both:
            return both
        return WinslettOperator()._rule(ops, t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        both = t_masks & p_masks
        if both:
            return both
        return WinslettOperator()._select_masks(t_masks, p_masks)


class ForbusOperator(ModelBasedOperator):
    """Forbus' operator: per-model cardinality minimisation.

    ``M(T ◇ P) = { N |= P : ∃M |= T, |M △ N| = k_{M,P} }``.

    Bit-parallel: the smallest non-empty popcount ring of the difference
    table (cached layer tables on the big-int tier, chunk-index popcount
    splitting on the sharded tier) finds the first distance ring without
    touching individual models of ``P``; ``pointwise_ring`` batches the
    per-T-model rings into multi-model sweeps on the sharded tier.
    """

    name = "forbus"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        return ops.pointwise_ring(t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        p_list = list(p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            threshold = k_pointwise_masks(model, p_list)
            selected.update(
                candidate
                for candidate in p_list
                if (model ^ candidate).bit_count() == threshold
            )
        return selected


class SatohOperator(ModelBasedOperator):
    """Satoh's operator: global inclusion-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ∈ delta(T, P) }``.

    On the bitplane tiers the reachable set is assembled by translating
    the whole ``T`` table by each member of ``delta`` — an antichain that
    is tiny on dense workloads — so the loop count no longer scales with
    the model count of ``T``.  On the sparse tier ``delta`` can be huge
    (random bounded-density sets are near-antichains) and the reachable
    union is exactly the density explosion the tier must avoid, so
    ``reachable_select`` runs the rule as ``|T| * |P|`` membership probes
    into the delta set instead.
    """

    name = "satoh"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        delta_tab = _delta_tab(ops, t_bits, p_bits)
        return ops.reachable_select(
            ops.table(t_bits), ops.table(p_bits), delta_tab
        )

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        minimal = delta_masks(t_masks, p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            for diff in minimal:
                candidate = model ^ diff
                if candidate in p_masks:
                    selected.add(candidate)
        return selected


class DalalOperator(ModelBasedOperator):
    """Dalal's operator: global cardinality-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, |N △ M| = k_{T,P} }``.

    On the bitplane tiers: grow the Hamming ball around the whole ``T``
    table one ring at a time; the first intersection with the ``P`` table
    is exactly the selected model set.  On the sparse tier the same
    selection is a blocked XOR/popcount pair sweep that never materialises
    a ball.  Either way ``min_distance_select`` does it — no per-model
    Python loop on any tier.
    """

    name = "dalal"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        p_table = ops.table(p_bits)
        _, selected = ops.min_distance_select(ops.table(t_bits), p_table)
        return selected

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        threshold = k_global_masks(t_masks, p_masks)
        t_list = list(t_masks)
        return {
            candidate
            for candidate in p_masks
            if any(
                (candidate ^ model).bit_count() == threshold for model in t_list
            )
        }


class WeberOperator(ModelBasedOperator):
    """Weber's operator: differences confined to ``Omega = ∪ delta(T,P)``.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ⊆ Omega }``.

    On the bitplane tiers: closing the ``T`` table under single-bit flips
    of the ``Omega`` letters yields every interpretation within an
    ``Omega``-confined difference of ``T`` (flips commute, so one pass per
    letter suffices); intersecting with the ``P`` table finishes the
    selection.  On the sparse tier ``confined_select`` runs the same rule
    as a pair sweep — the ``2^|Omega|`` closure would be exactly the
    density explosion the tier exists to avoid.
    """

    name = "weber"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        delta_tab = _delta_tab(ops, t_bits, p_bits)
        allowed = 0
        for diff in ops.bits_of(delta_tab):
            allowed |= diff
        return ops.confined_select(
            ops.table(t_bits), ops.table(p_bits), allowed
        )

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        allowed = omega_mask(t_masks, p_masks)
        t_list = list(t_masks)
        return {
            candidate
            for candidate in p_masks
            if any((candidate ^ model) & ~allowed == 0 for model in t_list)
        }
