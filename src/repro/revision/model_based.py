"""Model-based revision/update operators (Section 2.2.2).

Six operators, all obeying "irrelevance of syntax": they see only the model
sets of ``T`` and ``P``.

Pointwise (update-style — proximity judged per model of ``T``):

* :class:`WinslettOperator` — inclusion-minimal differences per model;
* :class:`BorgidaOperator`  — Winslett when ``T ∧ P`` inconsistent, else
  simply ``T ∧ P``;
* :class:`ForbusOperator`   — cardinality-minimal differences per model.

Global (revision-style — proximity judged against all models of ``T``):

* :class:`SatohOperator` — inclusion-minimal differences overall;
* :class:`DalalOperator` — cardinality-minimal differences overall;
* :class:`WeberOperator` — differences confined to ``Omega``, the union of
  all inclusion-minimal differences.

Every ``revise`` computes the ground-truth model set by enumeration on the
bitmask engine (:mod:`repro.logic.bitmodels`).  Each selection rule is
written *once*, against a small table-algebra protocol (:class:`_TableOps`
for Level-2 big-int tables, :class:`_ShardOps` for the Level-3 sharded
tables of :mod:`repro.logic.shards`): a model set is one table,
``{M △ N : N |= P}`` is an XOR-translation of that table, ``min⊆`` is a
subset-sum closure, and Hamming balls grow by single-bit flips.  The
per-T-model work of the pointwise operators (and the translate-union
behind ``delta``/Satoh) goes through the protocol's batched entry points
— ``pointwise_minimal`` / ``pointwise_ring`` / ``translate_union`` — which
the sharded tier services with the multi-model kernels and the
``REPRO_PARALLEL`` fan-out of :func:`repro.logic.shards.pointwise_select`
instead of one full bitplane sweep per model.  The tier is picked per
call by :func:`repro.logic.shards.tier` — big-int tables up to
``_TABLE_MAX_LETTERS`` letters, sharded tables up to
``shards.SHARD_MAX_LETTERS`` (both read live), and packed-mask loops
(XOR + popcount per pair) beyond that.  The retained frozenset semantics
lives in :mod:`repro.revision.reference` and the hypothesis suite asserts
all engines agree; the containment relations among the six results (paper
Fig. 2) are asserted by ``tests/test_revision_containment.py``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..logic import shards as _shards
from ..logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    iter_set_bits,
    min_hamming_distance_tables,
    minimal_elements_table,
    xor_translate_table,
)
from ..logic.formula import FormulaLike, as_formula
from ..logic.interpretation import Interpretation
from ..logic.shards import ShardedTable
from ..logic.theory import Theory, TheoryLike
from .base import RevisionOperator, RevisionResult
from .distances import (
    delta_masks,
    k_global_masks,
    k_pointwise_masks,
    mu_masks,
    omega_mask,
)

ModelSet = FrozenSet[Interpretation]


# ---------------------------------------------------------------------------
# Table algebra protocol — one selection rule, two table tiers
# ---------------------------------------------------------------------------


class _TableOps:
    """Level-2 adapter: tables are ``2^n``-bit Python ints."""

    __slots__ = ("alphabet",)

    def __init__(self, alphabet: BitAlphabet) -> None:
        self.alphabet = alphabet

    def table(self, bits: BitModelSet) -> int:
        return bits.table()

    def wrap(self, table: int) -> BitModelSet:
        return BitModelSet.from_table(self.alphabet, table)

    def zero(self) -> int:
        return 0

    def translate(self, table: int, mask: int) -> int:
        return xor_translate_table(table, mask, self.alphabet)

    def minimal(self, table: int) -> int:
        return minimal_elements_table(table, self.alphabet)

    def first_ring(self, table: int) -> Tuple[int, int]:
        for k, layer in enumerate(self.alphabet.popcount_layers()):
            ring = table & layer
            if ring:
                return k, ring
        raise ValueError("first_ring of an empty table")

    def min_hamming(self, left: int, right: int) -> Tuple[int, int]:
        return min_hamming_distance_tables(left, right, self.alphabet)

    def bits_of(self, table: int) -> Iterator[int]:
        return iter_set_bits(table)

    def model_masks(self, bits: BitModelSet):
        """A model set's masks in the form the tier's loops want."""
        return bits.iter_masks()

    def table_masks(self, table: int):
        """A raw table's set positions, same contract as :meth:`model_masks`."""
        return iter_set_bits(table)

    def translate_union(self, table: int, masks: Iterable[int]) -> int:
        """OR of the XOR-translates of ``table`` by every mask."""
        union = self.zero()
        for mask in masks:
            union |= self.translate(table, mask)
        return union

    def pointwise_minimal(self, t_bits: BitModelSet, p_bits: BitModelSet) -> int:
        """Winslett's rule: per T-model minimal differences, united."""
        p_table = self.table(p_bits)
        selected = self.zero()
        for model in t_bits.iter_masks():
            diffs = self.translate(p_table, model)
            selected |= self.translate(self.minimal(diffs), model)
        return selected

    def pointwise_ring(self, t_bits: BitModelSet, p_bits: BitModelSet) -> int:
        """Forbus' rule: per T-model first popcount ring, united."""
        p_table = self.table(p_bits)
        selected = self.zero()
        for model in t_bits.iter_masks():
            diffs = self.translate(p_table, model)
            _, ring = self.first_ring(diffs)
            selected |= self.translate(ring, model)
        return selected


class _ShardOps:
    """Level-3 adapter: tables are :class:`ShardedTable` bitplanes."""

    __slots__ = ("alphabet",)

    def __init__(self, alphabet: BitAlphabet) -> None:
        self.alphabet = alphabet

    def table(self, bits: BitModelSet) -> ShardedTable:
        return bits.sharded()

    def wrap(self, table: ShardedTable) -> BitModelSet:
        return BitModelSet.from_sharded(self.alphabet, table)

    def zero(self) -> ShardedTable:
        return ShardedTable.zeros(self.alphabet)

    def translate(self, table: ShardedTable, mask: int) -> ShardedTable:
        return table.xor_translate(mask)

    def minimal(self, table: ShardedTable) -> ShardedTable:
        return table.minimal_elements()

    def first_ring(self, table: ShardedTable) -> Tuple[int, ShardedTable]:
        return table.first_ring()

    def min_hamming(
        self, left: ShardedTable, right: ShardedTable
    ) -> Tuple[int, ShardedTable]:
        return left.min_hamming(right)

    def bits_of(self, table: ShardedTable) -> Iterator[int]:
        return table.iter_set_bits()

    def translate_union(
        self, table: ShardedTable, masks: Iterable[int]
    ) -> ShardedTable:
        """Batched union of translates (:func:`repro.logic.shards.translate_union`)."""
        return _shards.translate_union(table, masks)

    def model_masks(self, bits: BitModelSet):
        """A model set's masks in bulk form for the batched kernels —
        straight off the numpy bitplane when one exists, so a dense ``T``
        never takes the per-bit Python walk of ``iter_masks``."""
        if bits._masks is not None:
            return list(bits._masks)
        return _shards.table_mask_array(self.table(bits))

    def table_masks(self, table: ShardedTable):
        """A raw table's set positions in the same bulk form."""
        return _shards.table_mask_array(table)

    def pointwise_minimal(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> ShardedTable:
        """Winslett's rule via the batched multi-model kernels."""
        return _shards.pointwise_select(
            "minimal", self.table(p_bits), self.model_masks(t_bits)
        )

    def pointwise_ring(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> ShardedTable:
        """Forbus' rule via the batched multi-model kernels."""
        return _shards.pointwise_select(
            "ring", self.table(p_bits), self.model_masks(t_bits)
        )


def _ops_for(alphabet: BitAlphabet):
    """The table adapter for the alphabet's tier (None for the mask tier)."""
    level = _shards.tier(len(alphabet))
    if level == "table":
        return _TableOps(alphabet)
    if level == "sharded":
        return _ShardOps(alphabet)
    return None


def _delta_tab(ops, t_bits: BitModelSet, p_bits: BitModelSet):
    """``delta(T, P)`` as a table: minimal elements of all differences.

    ``{M △ N : M |= T, N |= P}`` is symmetric in the two roles, so the
    union of translates loops over whichever model set is smaller — for a
    dense theory revised by a narrow ``P`` (or vice versa) this changes the
    loop count by orders of magnitude.
    """
    if t_bits.count() <= p_bits.count():
        fixed, moved = p_bits, t_bits
    else:
        fixed, moved = t_bits, p_bits
    diffs = ops.translate_union(ops.table(fixed), ops.model_masks(moved))
    return ops.minimal(diffs)


def delta_bits(t_bits: BitModelSet, p_bits: BitModelSet) -> List[int]:
    """``delta(T, P)`` as a sorted list of difference masks, tier-dispatched.

    Public entry point for the compact constructions (formula (7) needs the
    set itself); both model sets must be non-empty and share an alphabet.
    """
    if t_bits.alphabet != p_bits.alphabet:
        raise ValueError("model sets range over different alphabets")
    if not t_bits or not p_bits:
        raise ValueError("delta of an empty model set")
    ops = _ops_for(t_bits.alphabet)
    if ops is None:
        return sorted(delta_masks(t_bits.masks, p_bits.masks))
    return sorted(ops.bits_of(_delta_tab(ops, t_bits, p_bits)))


class ModelBasedOperator(RevisionOperator):
    """Shared driver: enumerate models bit-parallel, delegate the rule."""

    syntax_sensitive = False

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        alphabet = BitAlphabet.coerce(self._alphabet(theory, formula))
        t_bits = self._bit_models_of(theory.conjunction(), alphabet)
        p_bits = self._bit_models_of(formula, alphabet)
        return self.revise_sets(t_bits, p_bits)

    def revise_sets(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> RevisionResult:
        """Apply the operator to already-compiled model sets.

        This is the batched entry point (:func:`repro.revision.batch.
        revise_many` compiles each distinct theory/formula once and feeds
        the cached sets here); both sets must share an alphabet.
        """
        if t_bits.alphabet != p_bits.alphabet:
            raise ValueError("model sets range over different alphabets")
        return RevisionResult(
            self.name,
            p_bits.alphabet.letters,
            self._select_bits(t_bits, p_bits),
        )

    def revise_result(
        self, previous: RevisionResult, new_formula: FormulaLike
    ) -> RevisionResult:
        formula = as_formula(new_formula)
        alphabet = BitAlphabet.coerce(set(previous.alphabet) | formula.variables())
        t_bits = self._extend_bits(previous.bit_model_set, alphabet)
        p_bits = self._bit_models_of(formula, alphabet)
        return self.revise_sets(t_bits, p_bits)

    def _select_bits(self, t_bits: BitModelSet, p_bits: BitModelSet) -> BitModelSet:
        """Apply the operator's selection rule (degenerate cases shared)."""
        if not p_bits:
            return p_bits.with_masks(())
        if not t_bits:
            return p_bits
        ops = _ops_for(p_bits.alphabet)
        if ops is None:
            return p_bits.with_masks(self._select_masks(t_bits.masks, p_bits.masks))
        return ops.wrap(self._rule(ops, t_bits, p_bits))

    # -- selection rules -----------------------------------------------------

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        """Bit-parallel selection on either table tier (returns a table)."""
        raise NotImplementedError

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        """Mask-at-a-time selection (any alphabet size)."""
        raise NotImplementedError

    # Kept for API compatibility with pre-sharding callers/tests: the
    # selection rule on big-int tables, returning the selected masks.
    def _select_tables(
        self, t_bits: BitModelSet, p_bits: BitModelSet
    ) -> Iterable[int]:
        ops = _TableOps(p_bits.alphabet)
        return ops.bits_of(self._rule(ops, t_bits, p_bits))

    # Kept for API compatibility with pre-bitmask callers/tests.
    def _select(self, t_models: ModelSet, p_models: ModelSet) -> ModelSet:
        """Frozenset boundary around :meth:`_select_bits`."""
        letters: Set[str] = set()
        for model in t_models:
            letters |= model
        for model in p_models:
            letters |= model
        alphabet = BitAlphabet.coerce(letters)
        selected = self._select_bits(
            BitModelSet.from_interpretations(alphabet, t_models),
            BitModelSet.from_interpretations(alphabet, p_models),
        )
        return selected.to_frozensets()


class WinslettOperator(ModelBasedOperator):
    """Winslett's Possible Models Approach (update).

    ``M(T ◇ P) = { N |= P : ∃M |= T, M △ N ∈ mu(M, P) }``.

    Per model ``M`` of ``T``: XOR-translate the whole ``P`` table by ``M``
    (giving the table of differences), extract its inclusion-minimal
    elements with the subset-sum closure, and translate back —
    ``N = M △ (M △ N)`` makes the selected models a translation of the
    minimal-difference table.  The protocol's ``pointwise_minimal`` runs
    that rule for whole blocks of T-models per sweep on the sharded tier
    (mask kernels when ``P`` is sparse, broadcast bitplane blocks under
    the ``REPRO_PARALLEL`` fan-out otherwise).
    """

    name = "winslett"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        return ops.pointwise_minimal(t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        p_list = list(p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            selected.update(model ^ diff for diff in mu_masks(model, p_list))
        return selected


class BorgidaOperator(ModelBasedOperator):
    """Borgida's operator: ``T ∧ P`` when consistent, else Winslett."""

    name = "borgida"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        both = ops.table(t_bits) & ops.table(p_bits)
        if both:
            return both
        return WinslettOperator()._rule(ops, t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        both = t_masks & p_masks
        if both:
            return both
        return WinslettOperator()._select_masks(t_masks, p_masks)


class ForbusOperator(ModelBasedOperator):
    """Forbus' operator: per-model cardinality minimisation.

    ``M(T ◇ P) = { N |= P : ∃M |= T, |M △ N| = k_{M,P} }``.

    Bit-parallel: the smallest non-empty popcount ring of the difference
    table (cached layer tables on the big-int tier, chunk-index popcount
    splitting on the sharded tier) finds the first distance ring without
    touching individual models of ``P``; ``pointwise_ring`` batches the
    per-T-model rings into multi-model sweeps on the sharded tier.
    """

    name = "forbus"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        return ops.pointwise_ring(t_bits, p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        p_list = list(p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            threshold = k_pointwise_masks(model, p_list)
            selected.update(
                candidate
                for candidate in p_list
                if (model ^ candidate).bit_count() == threshold
            )
        return selected


class SatohOperator(ModelBasedOperator):
    """Satoh's operator: global inclusion-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ∈ delta(T, P) }``.

    The reachable set is assembled by translating the whole ``T`` table by
    each member of ``delta`` — an antichain that is tiny in practice — so
    the loop count no longer scales with the model count of ``T``.
    """

    name = "satoh"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        delta_tab = _delta_tab(ops, t_bits, p_bits)
        reachable = ops.translate_union(
            ops.table(t_bits), ops.table_masks(delta_tab)
        )
        return reachable & ops.table(p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        minimal = delta_masks(t_masks, p_masks)
        selected: Set[int] = set()
        for model in t_masks:
            for diff in minimal:
                candidate = model ^ diff
                if candidate in p_masks:
                    selected.add(candidate)
        return selected


class DalalOperator(ModelBasedOperator):
    """Dalal's operator: global cardinality-minimal differences.

    ``M(T * P) = { N |= P : ∃M |= T, |N △ M| = k_{T,P} }``.

    Bit-parallel: grow the Hamming ball around the whole ``T`` table one
    ring at a time; the first intersection with the ``P`` table is exactly
    the selected model set.  No per-model loop on either tier.
    """

    name = "dalal"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        p_table = ops.table(p_bits)
        _, ball = ops.min_hamming(ops.table(t_bits), p_table)
        return ball & p_table

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        threshold = k_global_masks(t_masks, p_masks)
        t_list = list(t_masks)
        return {
            candidate
            for candidate in p_masks
            if any(
                (candidate ^ model).bit_count() == threshold for model in t_list
            )
        }


class WeberOperator(ModelBasedOperator):
    """Weber's operator: differences confined to ``Omega = ∪ delta(T,P)``.

    ``M(T * P) = { N |= P : ∃M |= T, N △ M ⊆ Omega }``.

    Bit-parallel: closing the ``T`` table under single-bit flips of the
    ``Omega`` letters yields every interpretation within an ``Omega``-
    confined difference of ``T`` (flips commute, so one pass per letter
    suffices); intersecting with the ``P`` table finishes the selection.
    """

    name = "weber"

    def _rule(self, ops, t_bits: BitModelSet, p_bits: BitModelSet):
        delta_tab = _delta_tab(ops, t_bits, p_bits)
        allowed = 0
        for diff in ops.bits_of(delta_tab):
            allowed |= diff
        reachable = ops.table(t_bits)
        while allowed:
            low = allowed & -allowed
            reachable |= ops.translate(reachable, low)
            allowed ^= low
        return reachable & ops.table(p_bits)

    def _select_masks(
        self, t_masks: FrozenSet[int], p_masks: FrozenSet[int]
    ) -> Iterable[int]:
        allowed = omega_mask(t_masks, p_masks)
        t_list = list(t_masks)
        return {
            candidate
            for candidate in p_masks
            if any((candidate ^ model) & ~allowed == 0 for model in t_list)
        }
