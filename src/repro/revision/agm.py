"""AGM companions: expansion, contraction, and counterfactual queries.

The paper frames belief revision inside the Alchourrón–Gärdenfors–Makinson
theory (reference [1]) and builds GFUV on Ginsberg's counterfactuals
(reference [15]).  This module provides the standard derived operations on
top of any revision operator:

* **expansion** ``T + P``: plain conjunction (no consistency maintenance);
* **contraction** ``T ÷ P`` via the *Harper identity*:
  ``M(T ÷ P) = M(T) ∪ M(T * ¬P)`` — stop believing ``P`` while keeping as
  much of ``T`` as the underlying revision preserves;
* the *Levi identity* ``T * P = (T ÷ ¬P) + P`` — holds when the underlying
  operator is an AGM revision (Dalal's is the classic example; asserted in
  the tests);
* **counterfactuals** ``T > P ⇒ Q`` ("if P were true, would Q hold?"):
  ``T * P |= Q``, with the operator chosen per Ginsberg (GFUV) or any other.
"""

from __future__ import annotations

from typing import FrozenSet

from ..logic.formula import FormulaLike, as_formula, lnot
from ..logic.theory import Theory, TheoryLike
from ..sat import models as sat_models
from .base import RevisionResult
from .registry import get_operator


def expand(theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
    """AGM expansion ``T + P``: conjunction, possibly inconsistent."""
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    alphabet = sorted(theory.variables() | formula.variables())
    t_models = frozenset(sat_models(theory.conjunction(), alphabet))
    p_models = frozenset(sat_models(formula, alphabet))
    return RevisionResult("expansion", alphabet, t_models & p_models)


def contract(
    theory: TheoryLike, formula: FormulaLike, operator: str = "dalal"
) -> RevisionResult:
    """AGM contraction ``T ÷ P`` by the Harper identity.

    ``M(T ÷ P) = M(T) ∪ M(T * ¬P)``: the contracted base keeps every old
    possibility and adds the closest ``¬P`` worlds, so ``P`` is no longer
    believed but everything independent of ``P`` survives.
    """
    theory = Theory.coerce(theory)
    formula = as_formula(formula)
    revised = get_operator(operator).revise(theory, lnot(formula))
    alphabet = tuple(sorted(set(revised.alphabet) | theory.variables()))
    op = get_operator(operator)
    t_models = op._extend_models(
        frozenset(sat_models(theory.conjunction(), sorted(theory.variables()))),
        sorted(theory.variables()),
        alphabet,
    )
    revised_models = op._extend_models(revised.model_set, revised.alphabet, alphabet)
    return RevisionResult(f"contract[{operator}]", alphabet, t_models | revised_models)


def counterfactual(
    theory: TheoryLike,
    antecedent: FormulaLike,
    consequent: FormulaLike,
    operator: str = "gfuv",
) -> bool:
    """Evaluate the counterfactual "if ``antecedent`` then ``consequent``".

    Ginsberg's semantics (the paper's reference [15]): the conditional holds
    iff ``T * antecedent |= consequent``.  Default operator is GFUV —
    Ginsberg's own — but any registered operator may be used.
    """
    result = get_operator(operator).revise(theory, antecedent)
    return result.entails(as_formula(consequent))
