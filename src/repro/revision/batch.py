"""Batched revision: many ``(T, P)`` pairs through one compilation cache.

The serving story for a revision engine is not one revision — it is a high
rate of revise/query cycles against a comparatively small population of
knowledge bases (the view-revision framing of arXiv:1301.5154 and
arXiv:1411.2499: the same KB revised by a stream of updates, or the same
update applied across many KBs).  Issued one `revise` at a time, every call
re-compiles both truth tables and rebuilds the alphabet memos from scratch;
issued as a batch, each distinct ``(formula, alphabet)`` compiles exactly
once.

:func:`revise_many` is that batch unit — and the unit a serving layer
shards over workers: the cache is plain per-batch state with no global
coordination, so splitting a workload into batches splits the compilation
work with it.

Guarantees:

* results are *exactly* those of calling ``operator.revise(T, P)`` per
  pair, in order (the hypothesis suite asserts this for all six
  model-based operators);
* each distinct theory/formula is compiled once per alphabet (model-set
  compilation is keyed on the formula's structural hash and the alphabet's
  letters), and a repeated ``(T, P)`` pair returns its memoised
  :class:`RevisionResult` without re-running the selection rule — revision
  is a pure function of the pair, so hot serving keys cost one dict probe;
* formula-based (syntax-sensitive) operators are supported too — they
  bypass the model-set cache and run the plain per-pair path;
* a batch may run *several* operators over the same pairs (pass a sequence
  of names): all of them share one compiled table of each ``T``, and
  :meth:`BatchCache.warm` compiles a KB's carrier ahead of the batch —
  on whichever of the four engine tiers the density-aware dispatch picks,
  including the sparse model-mask carrier past the shard cutoff — the
  keyed warm path of the incremental revision service;
* the cache reports which engine tier served each pair
  (:attr:`BatchCache.tier_counts`, fed by ``RevisionResult.engine_tier``),
  so a serving layer can observe tier choice per batch and pre-pay it
  with :meth:`BatchCache.warm`.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs as _obs
from repro import runtime as _runtime
from repro import store as _store
from repro.obs import metrics as _metrics

from ..logic import shards as _shards
from ..logic import sparse as _sparse
from ..logic.bitmodels import BitAlphabet, BitModelSet
from ..logic.sparse import SparseSpill
from ..logic.formula import And, Formula, FormulaLike, as_formula
from ..logic.theory import Theory, TheoryLike
from ..sat import bit_models as sat_bit_models
from ..sat import compilation_tier as sat_compilation_tier
from ..sat import incremental_bit_models as sat_incremental_bit_models
from .base import RevisionResult
from .model_based import ModelBasedOperator
from .registry import get_operator

#: Incremental carrier on/off (env ``REPRO_INCREMENTAL_CARRIER=0`` at
#: import; retarget the module attribute for in-process A/B): when a
#: batch re-enumerates a *different* formula over an alphabet past the
#: bitplane cutoffs, seed it from the previous carrier instead of
#: enumerating from scratch (see :meth:`BatchCache.bit_models`).
INCREMENTAL_CARRIER = os.environ.get("REPRO_INCREMENTAL_CARRIER", "1") != "0"

#: How many recent carriers the per-(alphabet, role) LRU keeps as seed
#: candidates for the incremental path (``REPRO_CARRIER_LRU``; 1 restores
#: the PR 5 latest-only behaviour exactly).
CARRIER_LRU_SIZE = max(1, int(os.environ.get("REPRO_CARRIER_LRU", "4")))


def _carrier_signature(formula: Formula) -> frozenset:
    """Cheap relatedness fingerprint: the set of top-level conjuncts.

    A drifting update stream typically edits one conjunct of a big
    conjunction per request; two formulas sharing most conjuncts have a
    small delta ``new ∧ ¬old``, which is exactly what makes an
    incremental-carrier seed cheap.  Non-conjunctions fingerprint as a
    singleton, so any exact resubmission still scores 1.0.
    """
    if isinstance(formula, And):
        return frozenset(formula.operands)
    return frozenset((formula,))


def _relatedness(left: frozenset, right: frozenset) -> float:
    """Jaccard similarity of two carrier signatures (0.0 when disjoint)."""
    union = len(left | right)
    if union == 0:
        return 1.0
    return len(left & right) / union


class BatchCache:
    """Per-batch model-set cache keyed by ``(formula, alphabet letters)``.

    One cache instance is the sharing scope: hand the same cache to several
    :func:`revise_many` calls to extend the sharing across them (e.g. a
    server draining a queue batch by batch), or let ``revise_many`` create
    a fresh one per call for strict isolation.
    """

    __slots__ = (
        "_model_sets",
        "_results",
        "_chains",
        "_carrier_lru",
        "hits",
        "misses",
        "incremental",
        "carrier_lru_hits",
        "carrier_lru_related",
        "tier_counts",
    )

    def __init__(self) -> None:
        self._model_sets: Dict[Tuple[Formula, Tuple[str, ...]], BitModelSet] = {}
        self._results: Dict[Tuple[str, Formula, Formula], RevisionResult] = {}
        #: Iterated-revision memo: ``(op, T, (P1, ..., Pk))`` → the result
        #: of the whole left-associative chain prefix.  The service's
        #: revise-then-query streams resubmit a KB with a *growing* update
        #: chain; :meth:`revise_chain` resumes from the longest memoised
        #: prefix instead of replaying the chain from scratch.
        self._chains: Dict[
            Tuple[str, Formula, Tuple[Formula, ...]], RevisionResult
        ] = {}
        #: Per (alphabet, role), an LRU (most recent last) of the last
        #: :data:`CARRIER_LRU_SIZE` formulas that went through SAT
        #: enumeration, with their model sets and relatedness signatures —
        #: the seed candidates of the incremental-carrier path.  Keyed by
        #: role ("theory" / "update") so a drifting update stream seeds
        #: from a previous *update*, never from the KB.
        self._carrier_lru: Dict[
            Tuple[Tuple[str, ...], Optional[str]],
            List[Tuple[Formula, BitModelSet, frozenset]],
        ] = {}
        self.hits = 0
        self.misses = 0
        #: How many compiles the incremental-carrier path served (re-check
        #: of a previous carrier + delta enumeration under assumptions,
        #: see :func:`repro.sat.incremental_bit_models`).
        self.incremental = 0
        #: How many incremental seeds the carrier LRU supplied at all, and
        #: how many of those the relatedness test steered to an *older*
        #: entry than the most recent one (the cases a latest-only cache
        #: would have seeded worse or not at all).
        self.carrier_lru_hits = 0
        self.carrier_lru_related = 0
        #: Which engine tier served each pair of the batch — a Counter over
        #: the ``RevisionResult.engine_tier`` labels (``"table"`` /
        #: ``"sharded"`` / ``"sparse"`` / ``"masks"`` / ``"sparse-spill"``
        #: / ``"degenerate"``), plus ``"memoised"`` for result-cache hits,
        #: ``"formula-based"`` for syntax-sensitive operators, and the
        #: ``"carrier-lru-seed"`` / ``"carrier-lru-related"`` marks the
        #: incremental-carrier LRU leaves per seeded compile.  The
        #: serving layer's observability hook: it says, per batch, how
        #: much traffic ran density-proportionally vs on bitplanes vs on
        #: the SAT mask loops.  A :class:`repro.obs.MirrorCounter`: still
        #: a per-instance ``Counter``, but every bump also lands on
        #: ``batch.tier.<label>`` in the metrics registry, so ``repro
        #: stats`` aggregates tier choice across caches.
        self.tier_counts: Counter = _metrics.MirrorCounter("batch.tier")

    def bit_models(
        self,
        formula: Formula,
        alphabet: BitAlphabet,
        role: Optional[str] = None,
    ) -> BitModelSet:
        """The model set of ``formula`` over ``alphabet``, compiled once.

        Past the bitplane cutoffs — where compilation means SAT
        enumeration — a miss is served *incrementally* when this cache has
        already enumerated formulas in the same ``role`` ("theory" /
        "update") over the same alphabet: an LRU of the last
        :data:`CARRIER_LRU_SIZE` carriers is probed with a cheap
        relatedness test (Jaccard over top-level conjuncts), the closest
        carrier is re-checked against the new formula, and only the delta
        (``new ∧ ¬old``) is enumerated, under assumptions
        (:func:`repro.sat.incremental_bit_models`).  For the serving shape
        the ROADMAP names — one KB, interleaved streams of revising
        formulas that each drift a little per request — each ``P`` compile
        then costs a vectorised re-check plus a handful of solver resumes
        instead of a full enumeration, even when unrelated requests landed
        in between.  Ties and zero-overlap probes fall back to the most
        recent carrier (the PR 5 behaviour; ``REPRO_CARRIER_LRU=1`` pins
        the cache to exactly that).  Results are exactly those of a fresh
        compile; ``REPRO_INCREMENTAL_CARRIER=0`` disables the path.
        """
        key = (formula, alphabet.letters)
        cached = self._model_sets.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        with _obs.span(
            "batch.compile",
            role=role or "?",
            letters=len(alphabet.letters),
        ) as compile_span:
            bits, source = self._compile_miss(formula, alphabet, role)
            compile_span.set("source", source)
        self._model_sets[key] = bits
        return bits

    def _compile_miss(
        self,
        formula: Formula,
        alphabet: BitAlphabet,
        role: Optional[str],
    ) -> Tuple[BitModelSet, str]:
        """Serve one model-set miss; returns ``(bits, source)`` where
        ``source`` names the path that paid for it (``store`` /
        ``incremental`` / ``fresh``)."""
        source = "fresh"
        bits = None
        enumerated = len(alphabet) > _shards.SHARD_MAX_LETTERS
        seed_key = (alphabet.letters, role)
        signature = None
        store = _store.active()
        if store is not None:
            tier_label = sat_compilation_tier(formula, alphabet.letters)
            if tier_label in ("sat", "sharded"):
                # Second-level cache: a restarted process probes disk
                # before paying SAT enumeration or a bitplane compile.
                # The big-int table tier recompiles faster than a read
                # and is never probed.
                bits = self._store_probe(store, formula, alphabet,
                                         tier_label)
                if bits is not None:
                    source = "store"
        if bits is None and enumerated and INCREMENTAL_CARRIER:
            lru = self._carrier_lru.get(seed_key)
            if lru:
                signature = _carrier_signature(formula)
                # Most recent last: on a tie the later (more recent) entry
                # wins, so a zero-overlap probe degrades to latest-only.
                best_index = max(
                    range(len(lru)),
                    key=lambda i: (_relatedness(signature, lru[i][2]), i),
                )
                seed_formula, seed_bits, _ = lru[best_index]
                bits = sat_incremental_bit_models(
                    formula, alphabet, seed_formula, seed_bits
                )
                source = "incremental"
                self.incremental += 1
                self.carrier_lru_hits += 1
                self.tier_counts["carrier-lru-seed"] += 1
                if best_index != len(lru) - 1:
                    self.carrier_lru_related += 1
                    self.tier_counts["carrier-lru-related"] += 1
        if bits is None:
            bits = sat_bit_models(formula, alphabet)
        if enumerated:
            if signature is None:
                signature = _carrier_signature(formula)
            lru = self._carrier_lru.setdefault(seed_key, [])
            lru[:] = [entry for entry in lru if entry[0] != formula]
            lru.append((formula, bits, signature))
            if len(lru) > CARRIER_LRU_SIZE:
                del lru[0]
        return bits, source

    def _store_probe(
        self,
        store: "_store.ArtifactStore",
        formula: Formula,
        alphabet: BitAlphabet,
        tier_label: str,
    ) -> Optional[BitModelSet]:
        """Load ``formula``'s carrier from the artifact store, or None.

        A hit returns the wrapped model set (bit-identical to a fresh
        compile: the store checksums every payload before handing it
        over, and any mismatch was quarantined and reads as a miss
        here).  The SAT tier probes the enumerated *sparse* carrier, the
        sharded tier its bitplane; counters land in
        :attr:`tier_counts` as ``store-hit`` / ``store-miss`` /
        ``store-corrupt``.
        """
        kind = "sparse" if tier_label == "sat" else "sharded"
        key = _store.artifact_key(kind, formula, alphabet.letters)
        with _obs.span("store.probe", kind=kind) as probe_span:
            corrupt_before = store.stats["corrupt"]
            if kind == "sparse":
                carrier = store.get_sparse(key, alphabet)
                if (
                    carrier is not None
                    and carrier.count() > _sparse.max_models()
                ):
                    # A valid artifact from a run with a larger sparse
                    # budget: not corrupt, just not loadable under the
                    # live knob — leave it on disk and recompile.
                    carrier = None
            else:
                carrier = store.get_sharded(key, alphabet)
            corrupt = store.stats["corrupt"] - corrupt_before
            if corrupt:
                self.tier_counts["store-corrupt"] += corrupt
                probe_span.set("corrupt", corrupt)
            probe_span.set("hit", carrier is not None)
            if carrier is None:
                self.tier_counts["store-miss"] += 1
                return None
            self.tier_counts["store-hit"] += 1
            if kind == "sparse":
                return BitModelSet.from_sparse(alphabet, carrier)
            return BitModelSet.from_sharded(alphabet, carrier)

    def _store_persist(
        self,
        formula: Formula,
        alphabet: BitAlphabet,
        kind: str,
        carrier,
    ) -> None:
        """Publish a freshly forced carrier to the active store, if any.

        Failures are counted, never raised — the in-memory carrier the
        caller just compiled is already correct, and persistence must
        not break it.
        """
        store = _store.active()
        if store is None:
            return
        key = _store.artifact_key(kind, formula, alphabet.letters)
        with _obs.span("store.publish", kind=kind) as publish_span:
            evictions_before = store.stats["evictions"]
            if kind == "sparse":
                published = store.put_sparse(key, carrier)
            else:
                published = store.put_sharded(key, carrier)
            self.tier_counts[
                "store-put" if published else "store-put-failed"
            ] += 1
            publish_span.set("published", published)
            evicted = store.stats["evictions"] - evictions_before
            if evicted:
                self.tier_counts["store-evict"] += evicted
                publish_span.set("evicted", evicted)

    def reset_counters(self) -> None:
        """Zero every observability counter, keeping the compiled state.

        Tests and the bench measure counter deltas across phases of one
        cache's life; this resets the meters without dropping the model
        sets, carrier LRU or memoised results.

        Also zeroes the registry's ``batch.tier.*`` view — including any
        deltas merged back from pool workers, which live only in the
        registry (a parent-side ``tier_counts.clear()`` alone cannot see
        them) — so a reset really does start the meters from zero.
        """
        self.hits = 0
        self.misses = 0
        self.incremental = 0
        self.carrier_lru_hits = 0
        self.carrier_lru_related = 0
        self.tier_counts.clear()
        _metrics.REGISTRY.reset_prefix("batch.tier")

    def warm(
        self,
        theory: TheoryLike,
        alphabet: "Optional[BitAlphabet | Iterable[str]]" = None,
    ) -> BitModelSet:
        """Precompile a KB's model set (and its engine-tier table) ahead of
        a batch — the keyed warm path of the incremental revision service
        the ROADMAP names.

        A serving layer that knows which knowledge bases its queue will hit
        calls ``warm`` once per KB (per alphabet) before draining: the
        theory's carrier compiles now, on whichever of the four tiers
        :func:`repro.logic.shards.tier` picks for the alphabet *and
        density* (big-int table, sharded bitplane, or the sparse mask
        carrier past the shard cutoff), and every operator in the batch
        then reuses that one compiled carrier instead of recompiling per
        pair.  Returns the cached :class:`BitModelSet`; a later
        :func:`revise_many` over the same cache scores a hit for it.
        """
        theory = Theory.coerce(theory)
        t_formula = theory.conjunction()
        if alphabet is None:
            bit_alphabet = BitAlphabet.coerce(t_formula.variables())
        else:
            bit_alphabet = BitAlphabet.coerce(alphabet)
        with _obs.span(
            "batch.warm", letters=len(bit_alphabet.letters)
        ) as warm_span:
            return self._warm_impl(t_formula, bit_alphabet, warm_span)

    def _warm_impl(
        self,
        t_formula: Formula,
        bit_alphabet: BitAlphabet,
        warm_span,
    ) -> BitModelSet:
        bits = self.bit_models(t_formula, bit_alphabet, role="theory")
        # Force the tier encoding now: the point of warming is that the
        # carrier is ready before the serving loop needs it.  The model
        # count is exact at this point (the set just compiled), so the
        # density-aware dispatch is too: past the shard cutoff a
        # bounded-density KB precompiles its sparse carrier here and the
        # batch's selections start density-proportional on request one.
        # Tier forcing is an optimisation, never a commitment: if the
        # preferred encoding overflows its budget here (sparse spill or a
        # memory cap), leave the carrier lazy — the selection path will
        # demote down the chain of :func:`repro.logic.shards.tier` at
        # revise time — and record the miss so the serving layer sees it.
        level = _shards.tier(len(bit_alphabet), bits.count())
        persist = None
        try:
            if level == "sparse":
                persist = ("sparse", bits.sparse())
            elif level == "sharded":
                persist = ("sharded", bits.sharded())
            elif level == "table":
                bits.table()
        except (SparseSpill, MemoryError):
            self.tier_counts[f"warm-{level}-deferred"] += 1
            warm_span.set("deferred", level)
        warm_span.set("tier", level)
        if persist is not None:
            # Warming is also the store's write path: the carrier this
            # process just paid for survives the process (the table tier
            # recompiles faster than a disk read and is not persisted).
            self._store_persist(t_formula, bit_alphabet, *persist)
        return bits

    def revise_chain(
        self,
        theory: TheoryLike,
        updates: Sequence[FormulaLike],
        operator: str = "dalal",
    ) -> RevisionResult:
        """Iterated cached revision ``T * P1 * ... * Pm`` (left-associative).

        The request unit of the revision service: a KB plus its update
        chain.  Chain *prefixes* are memoised per ``(operator, T)`` — a
        stream that keeps appending updates to the same KB resumes from
        the longest already-computed prefix and pays only for the new
        suffix, and a crashed worker's retry replays the whole chain to a
        bit-identical result (revision is a pure function of the chain).
        The first step runs through the compile-shared :func:`revise_many`
        path (so it probes the artifact store and the carrier LRU exactly
        like a batch pair); later steps thread the model set through
        ``operator.revise_result``.  Formula-based operators fall through
        to ``operator.iterate`` uncached.
        """
        op = get_operator(operator)
        theory = Theory.coerce(theory)
        formulas = [as_formula(update) for update in updates]
        t_formula = theory.conjunction()
        if not isinstance(op, ModelBasedOperator):
            self.tier_counts["formula-based"] += 1
            return op.iterate(theory, formulas)
        if not formulas:
            return op.iterate(theory, ())
        with _obs.span(
            "batch.revise_chain", op=op.name, steps=len(formulas)
        ) as chain_span:
            result = None
            start = 0
            for length in range(len(formulas), 0, -1):
                key = (op.name, t_formula, tuple(formulas[:length]))
                cached = self._chains.get(key)
                if cached is not None:
                    self.hits += 1
                    self.tier_counts["chain-memoised"] += 1
                    result = cached
                    start = length
                    break
            chain_span.set("resumed_at", start)
            if result is None:
                result = _revise_one(op, theory, t_formula, formulas[0], self)
                self._chains[(op.name, t_formula, (formulas[0],))] = result
                start = 1
            for step in range(start, len(formulas)):
                _runtime.checkpoint()
                result = op.revise_result(result, formulas[step])
                self.tier_counts[result.engine_tier or "unknown"] += 1
                self._chains[
                    (op.name, t_formula, tuple(formulas[:step + 1]))
                ] = result
            return result

    def result(self, operator: str, t_formula: Formula, formula: Formula):
        """A previously computed revision of this exact pair, if any.

        Revision is a pure function of ``(operator, T, P)``, so a serving
        loop draining a queue with hot keys — the same KB hit by the same
        update — can return the memoised :class:`RevisionResult` outright.
        This is the seed of the incremental revision service the ROADMAP
        names (cf. the view-revision workloads of arXiv:1301.5154).
        """
        return self._results.get((operator, t_formula, formula))

    def store_result(
        self,
        operator: str,
        t_formula: Formula,
        formula: Formula,
        result: RevisionResult,
    ) -> None:
        self._results[(operator, t_formula, formula)] = result


def _revise_one(
    op, theory: Theory, t_formula: Formula, formula: Formula, cache: BatchCache
):
    """One cached revision: memoised result, else compile-once + select.

    ``theory`` arrives coerced and ``t_formula`` is its (already built)
    conjunction — multi-operator batches probe the result cache once per
    operator without rebuilding either.  Checkpoints once per pair, so a
    deadline or cancellation lands between revisions and the results
    already appended stay valid.
    """
    _runtime.checkpoint()
    with _obs.span("revise", op=op.name) as revise_span:
        if not isinstance(op, ModelBasedOperator):
            cache.tier_counts["formula-based"] += 1
            revise_span.set("tier", "formula-based")
            return op.revise(theory, formula)
        cached = cache.result(op.name, t_formula, formula)
        if cached is not None:
            cache.hits += 1
            cache.tier_counts["memoised"] += 1
            revise_span.set("tier", cached.engine_tier or "memoised")
            revise_span.set("memoised", True)
            return cached
        alphabet = BitAlphabet.coerce(
            t_formula.variables() | formula.variables()
        )
        revise_span.set("letters", len(alphabet.letters))
        t_bits = cache.bit_models(t_formula, alphabet, role="theory")
        p_bits = cache.bit_models(formula, alphabet, role="update")
        result = op.revise_sets(t_bits, p_bits)
        cache.tier_counts[result.engine_tier or "unknown"] += 1
        revise_span.set("tier", result.engine_tier or "unknown")
        cache.store_result(op.name, t_formula, formula, result)
        return result


def revise_many(
    pairs: Iterable[Tuple[TheoryLike, FormulaLike]],
    operator: "Union[str, Sequence[str]]" = "dalal",
    cache: Optional[BatchCache] = None,
):
    """Revise every ``(T, P)`` pair under the named operator(s), sharing work.

    Equivalent to ``[get_operator(operator).revise(t, p) for t, p in
    pairs]`` but with model-set compilation shared across the batch: each
    theory's table is compiled once per alphabet, repeated revising
    formulas are compiled once, and interned alphabets share their
    truth-table memos.  Pass an explicit ``cache`` to share compilations
    across successive batches (and :meth:`BatchCache.warm` the hot KBs
    before draining).

    ``operator`` may also be a *sequence* of operator names: each pair is
    then revised under every operator — against one compiled table of
    ``T`` per alphabet, shared across all of them, where separate
    single-operator calls would recompile — and the return value is a list
    of per-pair result lists in operator order.
    """
    if not isinstance(operator, str):
        ops = [get_operator(name) for name in operator]
        if cache is None:
            cache = BatchCache()
        nested: List[List[RevisionResult]] = []
        with _obs.span(
            "batch.revise_many", ops=len(ops)
        ) as batch_span:
            for theory, formula in pairs:
                theory = Theory.coerce(theory)
                formula = as_formula(formula)
                t_formula = theory.conjunction()
                nested.append(
                    [_revise_one(op, theory, t_formula, formula, cache)
                     for op in ops]
                )
            batch_span.set("pairs", len(nested))
        return nested
    op = get_operator(operator)
    if not isinstance(op, ModelBasedOperator):
        return [op.revise(theory, formula) for theory, formula in pairs]
    if cache is None:
        cache = BatchCache()
    results: List[RevisionResult] = []
    with _obs.span("batch.revise_many", ops=1) as batch_span:
        for theory, formula in pairs:
            theory = Theory.coerce(theory)
            formula = as_formula(formula)
            results.append(
                _revise_one(op, theory, theory.conjunction(), formula, cache)
            )
        batch_span.set("pairs", len(results))
    return results
