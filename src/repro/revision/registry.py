"""Operator registry and the top-level :func:`revise` convenience function."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..logic.formula import FormulaLike
from ..logic.theory import TheoryLike
from .base import RevisionOperator, RevisionResult
from .formula_based import GfuvOperator, NebelOperator, WidtioOperator
from .model_based import (
    BorgidaOperator,
    DalalOperator,
    ForbusOperator,
    SatohOperator,
    WeberOperator,
    WinslettOperator,
)

#: All operators of the paper, keyed by name.
OPERATORS: Dict[str, RevisionOperator] = {
    op.name: op
    for op in (
        GfuvOperator(),
        NebelOperator(),
        WidtioOperator(),
        WinslettOperator(),
        BorgidaOperator(),
        ForbusOperator(),
        SatohOperator(),
        DalalOperator(),
        WeberOperator(),
    )
}

#: The six model-based operators (Fig. 2 of the paper relates exactly these).
MODEL_BASED_NAMES = ("winslett", "borgida", "forbus", "satoh", "dalal", "weber")

#: The formula-based (syntax-sensitive) operators.
FORMULA_BASED_NAMES = ("gfuv", "nebel", "widtio")


def get_operator(name: str) -> RevisionOperator:
    """Look up an operator by name (case-insensitive)."""
    try:
        return OPERATORS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(OPERATORS))
        raise ValueError(f"unknown operator {name!r}; known: {known}") from None


def revise(
    theory: TheoryLike, new_formula: FormulaLike, operator: str = "dalal"
) -> RevisionResult:
    """Revise ``theory`` with ``new_formula`` under the named operator."""
    return get_operator(operator).revise(theory, new_formula)


def revise_iterated(
    theory: TheoryLike,
    new_formulas: Sequence[FormulaLike],
    operator: str = "dalal",
) -> RevisionResult:
    """``T * P1 * ... * Pm`` under the named operator."""
    return get_operator(operator).iterate(theory, new_formulas)
