"""The proximity measures underlying the model-based operators (Section 2.2.2).

Pointwise measures (used by Winslett, Borgida, Forbus):

* ``mu(M, P) = min⊆ { M △ N | N ∈ M(P) }``
* ``k_{M,P}`` — minimum cardinality over ``mu(M, P)``

Global measures (used by Satoh, Dalal, Weber):

* ``delta(T, P) = min⊆ ∪_{M ∈ M(T)} mu(M, P)``
* ``k_{T,P}``  — minimum cardinality over ``delta(T, P)``
* ``Omega = ∪ delta(T, P)`` — every letter occurring in some minimal
  difference

Each measure exists in two forms: the frozenset form over explicit
interpretations (the paper's notation, kept as the public API) and the
``*_masks`` form over packed integers, where ``M △ N`` is ``m ^ n`` and
``|M △ N|`` is a popcount — the representation the bitmask engine
(:mod:`repro.logic.bitmodels`) and the model-based operators actually run
on.  The compact constructions in :mod:`repro.compact` additionally provide
SAT-based routes to ``k_{T,P}`` and ``Omega`` that avoid full enumeration.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from ..logic.bitmodels import min_subset_masks
from ..logic.interpretation import Interpretation, min_subset

ModelSet = FrozenSet[Interpretation]


# ---------------------------------------------------------------------------
# Frozenset forms (the paper's notation)
# ---------------------------------------------------------------------------


def mu(model: Interpretation, p_models: Iterable[Interpretation]) -> List[FrozenSet[str]]:
    """``mu(M, P)``: inclusion-minimal symmetric differences from ``M`` to
    models of ``P``."""
    differences = [model ^ n for n in p_models]
    return min_subset(differences)


def k_pointwise(model: Interpretation, p_models: Iterable[Interpretation]) -> int:
    """``k_{M,P}``: the minimum cardinality of ``M △ N`` over ``N |= P``.

    Streams the models and short-circuits on distance 0 (``M`` itself a
    model of ``P``): nothing can be closer.
    """
    best: Optional[int] = None
    for n in p_models:
        distance = len(model ^ n)
        if distance == 0:
            return 0
        if best is None or distance < best:
            best = distance
    if best is None:
        raise ValueError("P has no models")
    return best


def delta(t_models: Iterable[Interpretation], p_models: Iterable[Interpretation]) -> List[FrozenSet[str]]:
    """``delta(T, P)``: global inclusion-minimal differences."""
    p_list = list(p_models)
    union: List[FrozenSet[str]] = []
    for model in t_models:
        union.extend(mu(model, p_list))
    return min_subset(union)


def k_global(t_models: Iterable[Interpretation], p_models: Iterable[Interpretation]) -> int:
    """``k_{T,P}``: minimum Hamming distance between models of T and of P."""
    p_list = list(p_models)
    best: int | None = None
    for model in t_models:
        candidate = k_pointwise(model, p_list)
        if best is None or candidate < best:
            best = candidate
            if best == 0:
                break
    if best is None:
        raise ValueError("T has no models")
    return best


def omega(t_models: Iterable[Interpretation], p_models: Iterable[Interpretation]) -> FrozenSet[str]:
    """``Omega = ∪ delta(T,P)`` — Weber's set of letters to forget."""
    letters: Set[str] = set()
    for diff in delta(t_models, p_models):
        letters |= diff
    return frozenset(letters)


# ---------------------------------------------------------------------------
# Mask forms (interpretations packed into ints; the engine's hot path)
# ---------------------------------------------------------------------------


def mu_masks(model: int, p_masks: Iterable[int]) -> List[int]:
    """``mu(M, P)`` over masks: ``M △ N`` is one XOR per model of ``P``."""
    return min_subset_masks(model ^ n for n in p_masks)


def k_pointwise_masks(model: int, p_masks: Iterable[int]) -> int:
    """``k_{M,P}`` over masks (popcount of XOR, short-circuit at 0)."""
    best: Optional[int] = None
    for n in p_masks:
        distance = (model ^ n).bit_count()
        if distance == 0:
            return 0
        if best is None or distance < best:
            best = distance
    if best is None:
        raise ValueError("P has no models")
    return best


def delta_masks(t_masks: Iterable[int], p_masks: Iterable[int]) -> List[int]:
    """``delta(T, P)`` over masks."""
    p_list = list(p_masks)
    union: List[int] = []
    for model in t_masks:
        union.extend(mu_masks(model, p_list))
    return min_subset_masks(union)


def k_global_masks(t_masks: Iterable[int], p_masks: Iterable[int]) -> int:
    """``k_{T,P}`` over masks."""
    p_list = list(p_masks)
    best: Optional[int] = None
    for model in t_masks:
        candidate = k_pointwise_masks(model, p_list)
        if best is None or candidate < best:
            best = candidate
            if best == 0:
                break
    if best is None:
        raise ValueError("T has no models")
    return best


def omega_mask(t_masks: Iterable[int], p_masks: Iterable[int]) -> int:
    """``Omega`` over masks: OR of the global minimal differences."""
    letters = 0
    for diff in delta_masks(t_masks, p_masks):
        letters |= diff
    return letters
