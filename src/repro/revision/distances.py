"""The proximity measures underlying the model-based operators (Section 2.2.2).

Pointwise measures (used by Winslett, Borgida, Forbus):

* ``mu(M, P) = min⊆ { M △ N | N ∈ M(P) }``
* ``k_{M,P}`` — minimum cardinality over ``mu(M, P)``

Global measures (used by Satoh, Dalal, Weber):

* ``delta(T, P) = min⊆ ∪_{M ∈ M(T)} mu(M, P)``
* ``k_{T,P}``  — minimum cardinality over ``delta(T, P)``
* ``Omega = ∪ delta(T, P)`` — every letter occurring in some minimal
  difference

All functions work on explicit model sets; the compact constructions in
:mod:`repro.compact` additionally provide SAT-based routes to ``k_{T,P}``
and ``Omega`` that avoid full enumeration.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set

from ..logic.interpretation import Interpretation, min_subset

ModelSet = FrozenSet[Interpretation]


def mu(model: Interpretation, p_models: Iterable[Interpretation]) -> List[FrozenSet[str]]:
    """``mu(M, P)``: inclusion-minimal symmetric differences from ``M`` to
    models of ``P``."""
    differences = [model ^ n for n in p_models]
    return min_subset(differences)


def k_pointwise(model: Interpretation, p_models: Iterable[Interpretation]) -> int:
    """``k_{M,P}``: the minimum cardinality of ``M △ N`` over ``N |= P``."""
    sizes = [len(model ^ n) for n in p_models]
    if not sizes:
        raise ValueError("P has no models")
    return min(sizes)


def delta(t_models: Iterable[Interpretation], p_models: Iterable[Interpretation]) -> List[FrozenSet[str]]:
    """``delta(T, P)``: global inclusion-minimal differences."""
    p_list = list(p_models)
    union: List[FrozenSet[str]] = []
    for model in t_models:
        union.extend(mu(model, p_list))
    return min_subset(union)


def k_global(t_models: Iterable[Interpretation], p_models: Iterable[Interpretation]) -> int:
    """``k_{T,P}``: minimum Hamming distance between models of T and of P."""
    p_list = list(p_models)
    best: int | None = None
    for model in t_models:
        candidate = k_pointwise(model, p_list)
        if best is None or candidate < best:
            best = candidate
            if best == 0:
                break
    if best is None:
        raise ValueError("T has no models")
    return best


def omega(t_models: Iterable[Interpretation], p_models: Iterable[Interpretation]) -> FrozenSet[str]:
    """``Omega = ∪ delta(T,P)`` — Weber's set of letters to forget."""
    letters: Set[str] = set()
    for diff in delta(t_models, p_models):
        letters |= diff
    return frozenset(letters)
