"""Formula-based revision operators (Section 2.2.1).

These operators work on the *syntactic presentation* of the knowledge base:
the theory ``T`` is a set of formulas and revision retracts a minimal set of
its members.  The central object is

``W(T, P) = max⊆ { T' ⊆ T : T' ∪ {P} consistent }``

(the "possible worlds" of Ginsberg).  Three operators are built on it:

* :class:`GfuvOperator` — Ginsberg / Fagin–Ullman–Vardi: keep *all* maximal
  subsets; consequence = truth in every ``T' ∪ {P}``; as a formula,
  ``(∨_{T' ∈ W} ∧T') ∧ P``;
* :class:`WidtioOperator` — When In Doubt Throw It Out: keep only
  ``(∩ W(T,P)) ∪ {P}`` (always linear-size — the one unconditionally
  compactable operator in the paper);
* :class:`NebelOperator` — prioritized base revision: ``T`` is partitioned
  into priority classes revised lexicographically.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..logic.bitmodels import _TABLE_MAX_LETTERS, BitAlphabet, truth_table
from ..logic.formula import Formula, FormulaLike, as_formula, big_or, land
from ..logic.theory import Theory, TheoryLike
from ..sat import is_satisfiable
from .base import RevisionOperator, RevisionResult


def possible_worlds(theory: TheoryLike, new_formula: FormulaLike) -> List[Theory]:
    """``W(T, P)``: the maximal subsets of ``T`` consistent with ``P``.

    Enumerates sub-theories largest-first, keeping a candidate iff it is
    consistent with ``P`` and not contained in an already-kept world.
    Exponential in ``|T|`` in the worst case — which is Nebel's and
    Winslett's observation about this semantics, and the benchmarks measure
    exactly this count.

    Below the truth-table cutoff each member formula compiles once to its
    big-int truth table and every consistency probe is an AND of tables
    (non-zero iff satisfiable) instead of a Tseitin translation plus a DPLL
    call per sub-theory.
    """
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    letters = theory.variables() | formula.variables()
    tables: Optional[dict] = None
    p_table = 0
    if len(letters) <= _TABLE_MAX_LETTERS:
        alphabet = BitAlphabet(letters)
        p_table = truth_table(formula, alphabet)
        if not p_table:
            return []
        tables = {
            member: truth_table(member, alphabet) for member in theory.formulas()
        }
    elif not is_satisfiable(formula):
        # No subset is consistent with P; W is empty.
        return []
    worlds: List[Theory] = []
    for candidate in theory.subsets():
        if any(set(candidate.formulas()) <= set(world.formulas()) for world in worlds):
            continue
        if tables is not None:
            joint = p_table
            for member in candidate.formulas():
                joint &= tables[member]
                if not joint:
                    break
            consistent = bool(joint)
        else:
            consistent = is_satisfiable(land(candidate.conjunction(), formula))
        if consistent:
            worlds.append(candidate)
    return worlds


class GfuvOperator(RevisionOperator):
    """Ginsberg–Fagin–Ullman–Vardi revision.

    ``T *GFUV P = { T' ∪ {P} : T' ∈ W(T,P) }`` with consequence defined as
    truth in each possible world; logically this is
    ``(∨_{T' ∈ W(T,P)} ∧T') ∧ P``.
    """

    name = "gfuv"
    syntax_sensitive = True

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        alphabet = self._alphabet(theory, formula)
        symbolic = self.revised_formula(theory, formula)
        return RevisionResult(
            self.name, alphabet, self._bit_models_of(symbolic, alphabet)
        )

    def revised_formula(self, theory: TheoryLike, new_formula: FormulaLike) -> Formula:
        """The explicit disjunction-of-worlds representation.

        Its size is what explodes in Nebel's and Winslett's examples: one
        disjunct per possible world.
        """
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        worlds = possible_worlds(theory, formula)
        return land(big_or(world.conjunction() for world in worlds), formula)


class WidtioOperator(RevisionOperator):
    """WIDTIO: ``T *Wid P = (∩ W(T,P)) ∪ {P}``.

    The intersection keeps only formulas present in *every* maximal
    consistent subset, so ``|T *Wid P| <= |T| + |P|`` — the operator is
    trivially logically-compactable (first row of Tables 3 and 4).
    """

    name = "widtio"
    syntax_sensitive = True

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        alphabet = self._alphabet(theory, formula)
        revised = self.revised_theory(theory, formula)
        return RevisionResult(
            self.name,
            alphabet,
            self._bit_models_of(revised.conjunction(), alphabet),
        )

    def revised_theory(self, theory: TheoryLike, new_formula: FormulaLike) -> Theory:
        """The revised *theory* (a set of formulas, of linear size)."""
        theory = Theory.coerce(theory)
        formula = as_formula(new_formula)
        worlds = possible_worlds(theory, formula)
        if not worlds:
            return Theory([formula])
        kept: Set[Formula] = set(worlds[0].formulas())
        for world in worlds[1:]:
            kept &= set(world.formulas())
        ordered = [member for member in theory if member in kept]
        return Theory(ordered + [formula])

    def revise_result(self, previous, new_formula):  # type: ignore[override]
        raise NotImplementedError(
            "iterate WIDTIO through revised_theory(), which preserves the "
            "syntactic form the operator needs"
        )

    def iterate(
        self, theory: TheoryLike, new_formulas: Sequence[FormulaLike]
    ) -> RevisionResult:
        """Iterated WIDTIO: thread the revised *theory* through the sequence."""
        theory = Theory.coerce(theory)
        current = theory
        alphabet: Set[str] = set(theory.variables())
        for formula in new_formulas:
            formula = as_formula(formula)
            alphabet |= formula.variables()
            current = self.revised_theory(current, formula)
        names = tuple(sorted(alphabet))
        return RevisionResult(
            self.name, names, self._bit_models_of(current.conjunction(), names)
        )


class NebelOperator(RevisionOperator):
    """Nebel's prioritized base revision.

    ``T`` comes stratified into priority classes ``T_1 > T_2 > ... > T_r``;
    the possible worlds are built greedily: first the maximal subsets of
    ``T_1`` consistent with ``P``, each extended by maximal subsets of
    ``T_2``, and so on.  With a single class this reduces to GFUV (asserted
    in the tests).

    ``revise`` accepts either a plain theory (treated as one class) or a
    sequence of theories via :meth:`revise_prioritized`.
    """

    name = "nebel"
    syntax_sensitive = True

    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        return self.revise_prioritized([Theory.coerce(theory)], new_formula)

    def revise_prioritized(
        self, classes: Sequence[TheoryLike], new_formula: FormulaLike
    ) -> RevisionResult:
        """Revise a prioritized base (classes listed highest priority first)."""
        class_list = [Theory.coerce(c) for c in classes]
        formula = as_formula(new_formula)
        alphabet_set: Set[str] = set(formula.variables())
        for cls in class_list:
            alphabet_set |= cls.variables()
        alphabet = tuple(sorted(alphabet_set))
        worlds = self.prioritized_worlds(class_list, formula)
        symbolic = land(big_or(world.conjunction() for world in worlds), formula)
        return RevisionResult(
            self.name, alphabet, self._bit_models_of(symbolic, alphabet)
        )

    @staticmethod
    def prioritized_worlds(
        classes: Sequence[Theory], formula: Formula
    ) -> List[Theory]:
        """All priority-respecting maximal consistent sub-bases."""
        if not is_satisfiable(formula):
            return []
        partial: List[Theory] = [Theory([])]
        for cls in classes:
            extended: List[Theory] = []
            for base in partial:
                context = land(base.conjunction(), formula)
                # Maximal subsets of this class consistent with base + P.
                local: List[Theory] = []
                for candidate in cls.subsets():
                    if any(
                        set(candidate.formulas()) <= set(kept.formulas())
                        for kept in local
                    ):
                        continue
                    if is_satisfiable(land(context, candidate.conjunction())):
                        local.append(candidate)
                extended.extend(base.union(choice) for choice in local)
            partial = extended
        return partial
