"""Belief revision operators — the paper's primary objects of study."""

from .agm import contract, counterfactual, expand
from .base import RevisionOperator, RevisionResult
from .distances import delta, k_global, k_pointwise, mu, omega
from .formula_based import (
    GfuvOperator,
    NebelOperator,
    WidtioOperator,
    possible_worlds,
)
from .model_based import (
    BorgidaOperator,
    DalalOperator,
    ForbusOperator,
    ModelBasedOperator,
    SatohOperator,
    WeberOperator,
    WinslettOperator,
)
from .registry import (
    FORMULA_BASED_NAMES,
    MODEL_BASED_NAMES,
    OPERATORS,
    get_operator,
    revise,
    revise_iterated,
)

__all__ = [
    "BorgidaOperator",
    "DalalOperator",
    "FORMULA_BASED_NAMES",
    "ForbusOperator",
    "GfuvOperator",
    "MODEL_BASED_NAMES",
    "ModelBasedOperator",
    "NebelOperator",
    "OPERATORS",
    "RevisionOperator",
    "RevisionResult",
    "SatohOperator",
    "WeberOperator",
    "WidtioOperator",
    "WinslettOperator",
    "contract",
    "counterfactual",
    "delta",
    "expand",
    "get_operator",
    "k_global",
    "k_pointwise",
    "mu",
    "omega",
    "possible_worlds",
    "revise",
    "revise_iterated",
]
