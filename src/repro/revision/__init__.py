"""Belief revision operators — the paper's primary objects of study."""

from .agm import contract, counterfactual, expand
from .base import RevisionOperator, RevisionResult
from .batch import BatchCache, revise_many
from .distances import (
    delta,
    delta_masks,
    k_global,
    k_global_masks,
    k_pointwise,
    k_pointwise_masks,
    mu,
    mu_masks,
    omega,
    omega_mask,
)
from .formula_based import (
    GfuvOperator,
    NebelOperator,
    WidtioOperator,
    possible_worlds,
)
from .model_based import (
    BorgidaOperator,
    DalalOperator,
    ForbusOperator,
    ModelBasedOperator,
    SatohOperator,
    WeberOperator,
    WinslettOperator,
    delta_bits,
)
from .reference import (
    REFERENCE_OPERATOR_NAMES,
    reference_models,
    reference_revise,
    reference_select,
)
from .registry import (
    FORMULA_BASED_NAMES,
    MODEL_BASED_NAMES,
    OPERATORS,
    get_operator,
    revise,
    revise_iterated,
)

__all__ = [
    "BatchCache",
    "BorgidaOperator",
    "DalalOperator",
    "FORMULA_BASED_NAMES",
    "ForbusOperator",
    "GfuvOperator",
    "MODEL_BASED_NAMES",
    "ModelBasedOperator",
    "NebelOperator",
    "OPERATORS",
    "REFERENCE_OPERATOR_NAMES",
    "RevisionOperator",
    "RevisionResult",
    "SatohOperator",
    "WeberOperator",
    "WidtioOperator",
    "WinslettOperator",
    "contract",
    "counterfactual",
    "delta",
    "delta_bits",
    "delta_masks",
    "expand",
    "get_operator",
    "k_global",
    "k_global_masks",
    "k_pointwise",
    "k_pointwise_masks",
    "mu",
    "mu_masks",
    "omega",
    "omega_mask",
    "possible_worlds",
    "reference_models",
    "reference_revise",
    "reference_select",
    "revise",
    "revise_iterated",
    "revise_many",
]
