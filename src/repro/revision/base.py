"""Common infrastructure for revision operators.

Every operator produces a :class:`RevisionResult`: the *ground-truth* model
set of ``T * P`` over the alphabet ``V(T) ∪ V(P)``, computed directly from
the operator's definition by model enumeration.  This is deliberately the
exponential-but-exact semantics: the compact constructions of
:mod:`repro.compact` are verified *against* it, and the benchmark harness
measures the gap between the two — which is precisely the paper's subject.

Internally the result is backed by the bitmask engine
(:mod:`repro.logic.bitmodels`): models are stored as packed ints, and the
frozenset-of-frozensets :attr:`RevisionResult.model_set` view is
materialised lazily at the API boundary, so existing consumers see the
paper's representation while the operators stay allocation-free.

Conventions for the degenerate cases the paper sets aside (Section 2.2.2
assumes both ``T`` and ``P`` satisfiable "as far as compactness is
concerned"):

* ``P`` unsatisfiable  →  the result is unsatisfiable (no models);
* ``T`` unsatisfiable  →  the result is ``P`` (the standard Eiter–Gottlob
  convention: with nothing to preserve, adopt the new information).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..logic import shards as _shards
from ..logic import sparse as _sparse
from ..logic.bitmodels import (
    BitAlphabet,
    BitModelSet,
    truth_table,
)
from ..logic.sparse import SparseSpill
from ..logic.shards import ShardedTable
from ..logic.formula import Formula, FormulaLike, as_formula, big_or, cube
from ..logic.interpretation import Interpretation
from ..logic.theory import Theory, TheoryLike
from ..sat import bit_models as sat_bit_models
from ..sat import models as sat_models


class RevisionResult:
    """The semantics of one revision: a model set over an explicit alphabet.

    Attributes:
        operator_name: name of the operator that produced this result.
        alphabet: the letters the models range over (``V(T) ∪ V(P)`` for a
            single revision).
        model_set: frozenset of interpretations (each a frozenset of
            letters) — a lazily materialised view of the bitmask-backed
            model set, see :attr:`bit_model_set`.
        engine_tier: which engine tier actually served the selection
            (``"table"`` / ``"sharded"`` / ``"sparse"`` / ``"masks"``,
            ``"sparse-spill"`` for a budget spill rerun on the densest
            tier still available, ``"degenerate"`` when a trivial case
            short-circuited) — set by the model-based operators, ``None``
            elsewhere.  This is the observability hook the batch/serving
            layer aggregates.
    """

    def __init__(
        self,
        operator_name: str,
        alphabet: Iterable[str],
        model_set: Union[BitModelSet, Iterable[Interpretation]],
    ) -> None:
        self.operator_name = operator_name
        self.engine_tier: Optional[str] = None
        self.alphabet: Tuple[str, ...] = tuple(sorted(set(alphabet)))
        if isinstance(model_set, BitModelSet):
            if model_set.alphabet.letters != self.alphabet:
                model_set = BitModelSet.from_interpretations(
                    self.alphabet, model_set.to_frozensets()
                )
            self._bits = model_set
        else:
            bit_alphabet = BitAlphabet.coerce(self.alphabet)
            try:
                self._bits = BitModelSet.from_interpretations(
                    bit_alphabet, model_set
                )
            except ValueError as error:
                raise ValueError(
                    f"model uses letters outside {self.alphabet}: {error}"
                ) from None
        self._alphabet_set: FrozenSet[str] = frozenset(self.alphabet)
        self._model_set: Optional[FrozenSet[Interpretation]] = None

    # -- representations -------------------------------------------------------

    @property
    def bit_model_set(self) -> BitModelSet:
        """The engine-level view: models as packed ints."""
        return self._bits

    @property
    def model_set(self) -> FrozenSet[Interpretation]:
        """The paper's view: frozenset of frozensets (lazily materialised)."""
        if self._model_set is None:
            self._model_set = self._bits.to_frozensets()
        return self._model_set

    # -- queries ---------------------------------------------------------------

    def is_consistent(self) -> bool:
        """Whether ``T * P`` has any model."""
        return bool(self._bits)

    def model_count(self) -> int:
        """Number of models — a table popcount, so sharded-tier results
        never have to materialise their mask sets to be sized."""
        return self._bits.count()

    def satisfies(self, model: Iterable[str]) -> bool:
        """Model checking ``M |= T * P`` (M given over the result alphabet)."""
        restricted = frozenset(model) & self._alphabet_set
        return self._bits.alphabet.mask_of(restricted) in self._bits

    def entails(self, query: FormulaLike) -> bool:
        """Entailment ``T * P |= Q`` for a query over the result alphabet.

        Vacuously true when the result is inconsistent, as in the paper.
        On both table tiers the query compiles to a table column and
        entailment is a single containment test of the model table; at
        mask-tier alphabets the query is evaluated on the *sparse carrier*
        — one vectorised pass per formula node over the model rows
        (:func:`repro.logic.sparse.evaluate_formula`) — so a 40-letter
        result answers queries without ever materialising per-model
        frozensets.  Only results too dense for the sparse budget fall
        back to per-model evaluation.
        """
        formula = as_formula(query)
        extra = formula.variables() - self._alphabet_set
        if extra:
            raise ValueError(
                f"query letters {sorted(extra)} outside result alphabet"
            )
        level = _shards.tier(len(self.alphabet))
        if level == "table":
            models_table = self._bits.table()
            query_table = truth_table(formula, self._bits.alphabet)
            return models_table & query_table == models_table
        if level == "sharded":
            models_table = self._bits.sharded()
            query_table = ShardedTable.from_formula(formula, self._bits.alphabet)
            return not (models_table & ~query_table).any()
        if self._bits.count() > _shards.SPARSE_MAX_MODELS:
            # Denser than the sparse budget: building the carrier would
            # sort the whole mask set per query only to spill — go
            # straight to per-model evaluation.
            return all(formula.evaluate(model) for model in self.model_set)
        try:
            carrier = self._bits.sparse()
        except SparseSpill:  # pragma: no cover - budget shrank mid-query
            return all(formula.evaluate(model) for model in self.model_set)
        values = _sparse.evaluate_formula(formula, carrier)
        return all(values) if isinstance(values, list) else bool(values.all())

    def formula(self) -> Formula:
        """The *explicit* propositional representation: one cube per model.

        This is the "completely naive storage organisation" Winslett speaks
        of — the benchmarks measure its size against the compact ones.
        """
        return big_or(
            cube(model, self.alphabet) for model in sorted(self.model_set, key=sorted)
        )

    def restricted_to(self, alphabet: Iterable[str]) -> FrozenSet[Interpretation]:
        """Model set projected onto a sub-alphabet."""
        keep = frozenset(alphabet)
        return frozenset(model & keep for model in self.model_set)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RevisionResult):
            return NotImplemented
        # BitModelSet equality is laziness-aware (tables compare as ints
        # when the mask frozensets were never materialised) — important
        # for sharded-tier results with millions of models.
        return self.alphabet == other.alphabet and self._bits == other._bits

    def __repr__(self) -> str:
        shown = ", ".join(
            "{" + ", ".join(sorted(m)) + "}" for m in sorted(self.model_set, key=sorted)
        )
        return f"RevisionResult[{self.operator_name}]({shown})"


class RevisionOperator(ABC):
    """Abstract base for the paper's revision/update operators."""

    #: short lower-case identifier (e.g. ``"dalal"``).
    name: str = "abstract"
    #: whether the operator is sensitive to the syntactic form of ``T``.
    syntax_sensitive: bool = False

    @abstractmethod
    def revise(self, theory: TheoryLike, new_formula: FormulaLike) -> RevisionResult:
        """Compute the ground-truth semantics of ``T * P``."""

    def iterate(
        self, theory: TheoryLike, new_formulas: Sequence[FormulaLike]
    ) -> RevisionResult:
        """``T * P1 * ... * Pm`` (left-associative, as in Section 2.2.3).

        Model-based operators override :meth:`_revise_models` and this driver
        threads the model set through the sequence, extending the alphabet
        when later formulas introduce new letters (an old model then splits
        over the unconstrained new letters, exactly as logical equivalence
        over the enlarged alphabet dictates).
        """
        theory = Theory.coerce(theory)
        if not new_formulas:
            alphabet = sorted(theory.variables())
            return RevisionResult(
                self.name,
                alphabet,
                self._bit_models_of(theory.conjunction(), alphabet),
            )
        result = self.revise(theory, new_formulas[0])
        for formula in new_formulas[1:]:
            result = self.revise_result(result, formula)
        return result

    def revise_result(
        self, previous: RevisionResult, new_formula: FormulaLike
    ) -> RevisionResult:
        """Revise an already-revised knowledge base once more.

        Default: unsupported (formula-based operators produce *sets of
        theories* whose further revision the paper does not define; their
        Table 4 entries follow from the single-revision results).
        """
        raise NotImplementedError(
            f"operator {self.name!r} does not support iterated revision"
        )

    # -- shared helpers -----------------------------------------------------------

    @staticmethod
    def _alphabet(theory: Theory, new_formula: Formula) -> Tuple[str, ...]:
        return tuple(sorted(theory.variables() | new_formula.variables()))

    @staticmethod
    def _models_of(formula: Formula, alphabet: Sequence[str]) -> FrozenSet[Interpretation]:
        return frozenset(sat_models(formula, alphabet))

    @staticmethod
    def _bit_models_of(
        formula: Formula, alphabet: "BitAlphabet | Sequence[str]"
    ) -> BitModelSet:
        """Engine-level model enumeration (bit-parallel under the cutoff)."""
        return sat_bit_models(formula, alphabet)

    @staticmethod
    def _extend_bits(bits: BitModelSet, new_alphabet: "BitAlphabet | Sequence[str]") -> BitModelSet:
        """Lift a bitmask model set to a larger alphabet."""
        return bits.extend_to(BitAlphabet.coerce(new_alphabet))

    @staticmethod
    def _extend_models(
        model_set: FrozenSet[Interpretation],
        old_alphabet: Sequence[str],
        new_alphabet: Sequence[str],
    ) -> FrozenSet[Interpretation]:
        """Lift a model set to a larger alphabet (new letters unconstrained)."""
        if set(new_alphabet) == set(old_alphabet):
            return frozenset(model_set)
        bits = BitModelSet.from_interpretations(old_alphabet, model_set)
        return bits.extend_to(BitAlphabet(new_alphabet)).to_frozensets()
