"""Non-uniform complexity machinery: executable advice-taking machines."""

from .advice import DalalAdviceMachine, decide_sat_by_gfuv_reduction

__all__ = ["DalalAdviceMachine", "decide_sat_by_gfuv_reduction"]
