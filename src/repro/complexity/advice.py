"""Advice-taking machines (Theorems 2.2, 2.3, 7.1–7.3), made executable.

The non-compactability proofs all follow one schema: *if* a compact
representation ``T'_n`` of ``T_n * P_n`` existed, an advice-taking Turing
machine with advice ``A(n) = T'_n`` would decide 3-SAT_n — collapsing the
polynomial hierarchy.  The machines themselves are perfectly concrete; this
module runs them in the two directions that are actually executable:

* :class:`DalalAdviceMachine` — Dalal *is* query-compactable (Theorem 3.4),
  so the advice exists: the offline phase compiles
  ``A(n) = T[X/Y] ∧ P ∧ EXA(k,X,Y,W)`` for the Theorem 3.6 family, and the
  online phase decides any ``pi`` of size ``n`` by one entailment query
  against the advice.  It also demonstrates, on the same advice, why query
  equivalence is *not* enough for the Theorem 2.3 machine: direct model
  checking ``C_pi |= A(n)`` gives wrong answers, because the advice has
  auxiliary letters (this is precisely the Dalal row of Table 3:
  query-YES / logical-NO).

* :func:`decide_sat_by_gfuv_reduction` — the Theorem 3.1 reduction run
  forwards: decide ``pi`` through ``T_n *GFUV P_n |= Q_pi`` (the oracle the
  hypothetical machine would consult).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..compact.dalal import dalal_compact
from ..compact.representation import CompactRepresentation
from ..logic.formula import Formula, cube, lnot
from ..hardness.dalal_weber_family import DalalWeberFamily, build as build_dw
from ..hardness.gfuv_family import GfuvFamily, decide_sat_via_revision
from ..revision.registry import revise
from ..threesat.instances import Clause3


class DalalAdviceMachine:
    """Theorem 2.2-style machine with *real* advice for Dalal's operator.

    Offline (`__init__`): build the Theorem 3.6 family member for size ``n``
    and compile the polynomial-size advice ``A(n)`` by Theorem 3.4.

    Online (:meth:`decide`): given an instance ``pi`` of the family's clause
    universe, compute ``C_pi`` in polynomial time and answer one entailment
    query: ``pi`` is satisfiable iff the advice does *not* entail
    ``¬cube(C_pi)`` (i.e. iff ``C_pi`` remains a possible model).
    """

    def __init__(self, n: int, universe: Optional[Sequence[Clause3]] = None) -> None:
        self.family: DalalWeberFamily = build_dw(n, universe)
        self.advice: CompactRepresentation = dalal_compact(
            self.family.t_formula, self.family.p_formula
        )

    def advice_size(self) -> int:
        """``|A(n)|`` — polynomial in ``n`` (the compactability claim)."""
        return self.advice.size()

    def decide(self, pi: Iterable[Clause3]) -> bool:
        """Decide satisfiability of ``pi`` via one query to the advice."""
        c_pi = self.family.c_pi(pi)
        exclusion = lnot(cube(c_pi, self.family.alphabet))
        return not self.advice.entails(exclusion)

    def model_check_against_advice(self, pi: Iterable[Clause3]) -> bool:
        """Direct model checking ``C_pi |= A(n)`` — deliberately *unsound*.

        The advice is only query-equivalent: it constrains auxiliary letters
        (``Y``, ``W``) that ``C_pi`` leaves false, so this check can disagree
        with ``C_pi |= T_n *D P_n``.  Exposed to demonstrate the
        query-vs-logical gap of Theorem 3.6.
        """
        c_pi = self.family.c_pi(pi)
        return self.advice.formula.evaluate(c_pi)

    def model_check_semantics(self, pi: Iterable[Clause3]) -> bool:
        """Ground truth ``C_pi |= T_n *D P_n`` (exponential-time oracle)."""
        result = revise(self.family.t_formula, self.family.p_formula, "dalal")
        return result.satisfies(self.family.c_pi(pi))


def decide_sat_by_gfuv_reduction(family: GfuvFamily, pi: Iterable[Clause3]) -> bool:
    """Theorem 3.1 run forwards: ``pi`` satisfiable iff
    ``T_n *GFUV P_n |= Q_pi``.

    This is the oracle call of the hypothetical Theorem 2.2 machine; no
    compact advice can exist for GFUV unless NP ⊆ coNP/poly, so the oracle
    here is the exact (exponential) engine.
    """
    return decide_sat_via_revision(family, pi)
