"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

Section 7 of the paper generalises the non-compactability results from
propositional formulas to *any* data structure admitting a polynomial-time
model-checking algorithm (Definition 7.1 / Theorem 7.1).  ROBDDs are the
canonical such structure: model checking walks one path (linear time), and
equivalence is pointer equality.  This module is a complete from-scratch
implementation — hash-consed nodes, the ``apply`` algorithm, restriction,
model counting and enumeration — used by :mod:`repro.compact.datastructure`
to represent revised knowledge bases and by the E12 ablation benchmark to
measure *data-structure* sizes on the reduction families.

Nodes are integers into a shared table per :class:`Bdd` manager;
``0`` and ``1`` are the terminals.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..logic.formula import (
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    Xor,
)

#: Terminal node ids.
FALSE_NODE = 0
TRUE_NODE = 1


class Bdd:
    """An ROBDD manager over a fixed variable order."""

    def __init__(self, order: Sequence[str]) -> None:
        if len(set(order)) != len(order):
            raise ValueError("variable order must not repeat letters")
        self.order: Tuple[str, ...] = tuple(order)
        self._level: Dict[str, int] = {name: i for i, name in enumerate(self.order)}
        # node id -> (level, low, high); terminals live at pseudo-level inf.
        self._nodes: List[Tuple[int, int, int]] = [
            (len(self.order), FALSE_NODE, FALSE_NODE),  # 0: FALSE
            (len(self.order), TRUE_NODE, TRUE_NODE),  # 1: TRUE
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}

    # -- node primitives -----------------------------------------------------

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low  # reduction rule 1: redundant test
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing  # reduction rule 2: shared subgraph
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single letter."""
        level = self._level.get(name)
        if level is None:
            raise ValueError(f"letter {name!r} not in the manager's order")
        return self._make(level, FALSE_NODE, TRUE_NODE)

    def level_of(self, node: int) -> int:
        return self._nodes[node][0]

    def cofactors(self, node: int) -> Tuple[int, int]:
        """``(low, high)`` children of an internal node."""
        _, low, high = self._nodes[node]
        return low, high

    def node_count(self, node: int) -> int:
        """Number of reachable nodes (the standard BDD size measure)."""
        seen = {FALSE_NODE, TRUE_NODE}
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return len(seen)

    # -- boolean operations ----------------------------------------------------

    def apply_not(self, node: int) -> int:
        return self._apply("not", node, node)

    def apply_and(self, left: int, right: int) -> int:
        return self._apply("and", left, right)

    def apply_or(self, left: int, right: int) -> int:
        return self._apply("or", left, right)

    def apply_xor(self, left: int, right: int) -> int:
        return self._apply("xor", left, right)

    def _terminal(self, op: str, left: int, right: int) -> Optional[int]:
        if op == "not":
            if left == TRUE_NODE:
                return FALSE_NODE
            if left == FALSE_NODE:
                return TRUE_NODE
            return None
        if op == "and":
            if left == FALSE_NODE or right == FALSE_NODE:
                return FALSE_NODE
            if left == TRUE_NODE:
                return right
            if right == TRUE_NODE:
                return left
            if left == right:
                return left
            return None
        if op == "or":
            if left == TRUE_NODE or right == TRUE_NODE:
                return TRUE_NODE
            if left == FALSE_NODE:
                return right
            if right == FALSE_NODE:
                return left
            if left == right:
                return left
            return None
        if op == "xor":
            if left == right:
                return FALSE_NODE
            if left == FALSE_NODE:
                return right
            if right == FALSE_NODE:
                return left
            return None
        raise ValueError(f"unknown operation {op!r}")

    def _apply(self, op: str, left: int, right: int) -> int:
        terminal = self._terminal(op, left, right)
        if terminal is not None:
            return terminal
        key = (op, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        l_level, l_low, l_high = self._nodes[left]
        r_level, r_low, r_high = self._nodes[right]
        level = min(l_level, r_level)
        if op == "not":
            low = self._apply("not", l_low, l_low)
            high = self._apply("not", l_high, l_high)
            result = self._make(l_level, low, high)
        else:
            left_low, left_high = (
                (l_low, l_high) if l_level == level else (left, left)
            )
            right_low, right_high = (
                (r_low, r_high) if r_level == level else (right, right)
            )
            low = self._apply(op, left_low, right_low)
            high = self._apply(op, left_high, right_high)
            result = self._make(level, low, high)
        self._apply_cache[key] = result
        return result

    # -- formula conversion -------------------------------------------------------

    def from_formula(self, formula: Formula) -> int:
        """Compile a formula to an ROBDD node (letters must be in order)."""
        if isinstance(formula, Top):
            return TRUE_NODE
        if isinstance(formula, Bottom):
            return FALSE_NODE
        if isinstance(formula, Var):
            return self.var(formula.name)
        if isinstance(formula, Not):
            return self.apply_not(self.from_formula(formula.operand))
        if isinstance(formula, And):
            result = TRUE_NODE
            for child in formula.operands:
                result = self.apply_and(result, self.from_formula(child))
            return result
        if isinstance(formula, Or):
            result = FALSE_NODE
            for child in formula.operands:
                result = self.apply_or(result, self.from_formula(child))
            return result
        if isinstance(formula, Implies):
            return self.apply_or(
                self.apply_not(self.from_formula(formula.antecedent)),
                self.from_formula(formula.consequent),
            )
        if isinstance(formula, Iff):
            return self.apply_not(
                self.apply_xor(
                    self.from_formula(formula.left), self.from_formula(formula.right)
                )
            )
        if isinstance(formula, Xor):
            return self.apply_xor(
                self.from_formula(formula.left), self.from_formula(formula.right)
            )
        raise TypeError(f"unknown formula node {formula!r}")

    # -- semantics ---------------------------------------------------------------

    def evaluate(self, node: int, model: FrozenSet[str] | set) -> bool:
        """Model checking — one root-to-terminal walk (the poly-time ``ASK``
        of Definition 7.1)."""
        current = node
        while current not in (FALSE_NODE, TRUE_NODE):
            level, low, high = self._nodes[current]
            current = high if self.order[level] in model else low
        return current == TRUE_NODE

    def count_models(self, node: int) -> int:
        """Number of satisfying assignments over the full order.

        Standard weighted count: a skipped level doubles the count, so the
        contribution of child ``c`` of a node at level ``l`` is
        ``count(c) * 2^(level(c) - l - 1)``.
        """
        cache: Dict[int, int] = {}

        def walk(current: int) -> int:
            if current == FALSE_NODE:
                return 0
            if current == TRUE_NODE:
                return 1
            if current in cache:
                return cache[current]
            level, low, high = self._nodes[current]
            low_models = walk(low) << (self.level_of(low) - level - 1)
            high_models = walk(high) << (self.level_of(high) - level - 1)
            result = low_models + high_models
            cache[current] = result
            return result

        return walk(node) << self.level_of(node)

    def models(self, node: int) -> Iterator[FrozenSet[str]]:
        """Enumerate all satisfying assignments over the full order."""

        def walk(current: int, from_level: int, chosen: List[str]) -> Iterator[FrozenSet[str]]:
            level = self.level_of(current)
            free = self.order[from_level:level]
            if current == FALSE_NODE:
                return
            if current == TRUE_NODE:
                for mask in range(1 << len(free)):
                    extra = [free[i] for i in range(len(free)) if mask >> i & 1]
                    yield frozenset(chosen + extra)
                return
            _, low, high = self._nodes[current]
            for mask in range(1 << len(free)):
                extra = [free[i] for i in range(len(free)) if mask >> i & 1]
                yield from walk(low, level + 1, chosen + extra)
                yield from walk(high, level + 1, chosen + extra + [self.order[level]])

        yield from walk(node, 0, [])

    def restrict(self, node: int, name: str, value: bool) -> int:
        """Cofactor: fix one letter to a constant."""
        target = self._level.get(name)
        if target is None:
            raise ValueError(f"letter {name!r} not in the manager's order")
        cache: Dict[int, int] = {}

        def walk(current: int) -> int:
            level = self.level_of(current)
            if level > target:
                return current
            if current in cache:
                return cache[current]
            _, low, high = self._nodes[current]
            if level == target:
                result = high if value else low
            else:
                result = self._make(level, walk(low), walk(high))
            cache[current] = result
            return result

        return walk(node)
