"""Reduced ordered binary decision diagrams (the Section 7 data structure)."""

from .robdd import FALSE_NODE, TRUE_NODE, Bdd

__all__ = ["Bdd", "FALSE_NODE", "TRUE_NODE"]
