"""Command-line interface: ``python -m repro``.

Subcommands:

* ``revise``  — revise a theory with one or more formulas, print the models
  (and optionally the compiled representation's size);
* ``ask``     — decide ``T * P1 * ... * Pm |= Q``;
* ``compile`` — print the compact representation of the revision;
* ``operators`` — list the available operators and their Table 3/4 rows;
* ``store`` — inspect and maintain a persistent artifact store
  (``verify`` / ``ls`` / ``gc``);
* ``serve`` — run the resilient revision service over a JSONL request
  stream (stdin or a file): one request object per line in, one
  response object per line out, supervision/retry/shed counters to
  stderr on exit;
* ``stats`` — dump the in-process metrics registry (text / JSON /
  Prometheus exposition), optionally after running another subcommand;
* ``trace`` — render a ``REPRO_TRACE`` JSONL span trace as a tree.

Examples::

    python -m repro revise -o dalal "g | b" "~g"
    python -m repro ask -o winslett "g | b" "~g" --query b
    python -m repro compile -o weber "a & b & c" "~a | ~b"
    python -m repro store ls --dir /var/cache/repro
    echo '{"kind":"revise","kb":"k","theory":"g | b","updates":["~g"],"query":"b"}' \\
        | python -m repro serve --workers 2
    REPRO_STORE=/var/cache/repro python -m repro store verify
    python -m repro stats --format prom -- revise -o dalal "g | b" "~g"
    REPRO_TRACE=/tmp/t.jsonl python -m repro revise "g | b" "~g" && \\
        python -m repro trace show /tmp/t.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from .compact.representation import CompactRepresentation
from .kb.knowledge_base import _COMPILERS, KnowledgeBase
from .logic.parser import ParseError, parse
from .revision.registry import FORMULA_BASED_NAMES, MODEL_BASED_NAMES, OPERATORS

#: Table 3/4 one-line summaries per operator (general / bounded, single /
#: iterated), used by the ``operators`` subcommand.
_SUMMARY = {
    "gfuv": "not compactable in any case (Thms 3.1, 4.1)",
    "nebel": "not compactable in any case (GFUV generalisation)",
    "widtio": "always logically compactable (size <= |T| + |P|)",
    "winslett": "bounded |P|: logical (5) / iterated query (16)",
    "borgida": "bounded |P|: logical (Cor 4.4) / iterated query",
    "forbus": "bounded |P|: logical (6) / iterated query (14)",
    "satoh": "bounded |P|: logical (7) / iterated query (13, corrected)",
    "dalal": "query-compactable, single (Thm 3.4) and iterated (Thm 5.1)",
    "weber": "query-compactable, single (Thm 3.5) and iterated (form. 10)",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Belief revision with size-aware compilation "
        "(Cadoli-Donini-Liberatore-Schaerf, PODS'95).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("theory", help="initial knowledge base (formula text)")
        p.add_argument("updates", nargs="+", help="revision formulas, in order")
        p.add_argument(
            "-o",
            "--operator",
            default="dalal",
            choices=sorted(OPERATORS),
            help="revision operator (default: dalal)",
        )

    p_revise = sub.add_parser("revise", help="revise and print the models")
    add_common(p_revise)
    p_revise.add_argument(
        "--show-size",
        action="store_true",
        help="also print the compiled representation's size when available",
    )

    p_ask = sub.add_parser("ask", help="decide T * P1 * ... * Pm |= Q")
    add_common(p_ask)
    p_ask.add_argument("--query", required=True, help="query formula")
    p_ask.add_argument(
        "--via",
        default="auto",
        choices=["auto", "compiled", "semantics"],
        help="decision route (default: auto)",
    )

    p_compile = sub.add_parser(
        "compile", help="print the compact representation of the revision"
    )
    add_common(p_compile)

    sub.add_parser("operators", help="list operators and compactability rows")

    p_store = sub.add_parser(
        "store", help="inspect/maintain a persistent artifact store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def add_store_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dir",
            dest="store_dir",
            default=None,
            help="store directory (default: the REPRO_STORE env var)",
        )

    p_verify = store_sub.add_parser(
        "verify", help="checksum every artifact; quarantine the bad ones"
    )
    add_store_dir(p_verify)

    p_ls = store_sub.add_parser(
        "ls", help="list artifacts: key, kind, size, age, hits"
    )
    add_store_dir(p_ls)

    p_gc = store_sub.add_parser(
        "gc", help="evict least-recently-hit artifacts down to the budget"
    )
    add_store_dir(p_gc)
    p_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget to drop to (default: REPRO_STORE_MAX_BYTES)",
    )

    p_serve = sub.add_parser(
        "serve", help="serve a JSONL request stream through the "
        "supervised revision service"
    )
    p_serve.add_argument(
        "--requests", default="-",
        help="JSONL request file, '-' for stdin (default)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (default: 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="admission queue bound; excess requests shed (default: 64)",
    )
    p_serve.add_argument(
        "--inflight", type=int, default=32,
        help="max outstanding submissions before draining (default: 32)",
    )
    p_serve.add_argument(
        "--operator", default="dalal", choices=sorted(OPERATORS),
        help="operator for requests that don't name one (default: dalal)",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None,
        help="default per-request deadline in seconds",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=0.25,
        help="worker heartbeat period in seconds (default: 0.25)",
    )
    p_serve.add_argument(
        "--hang-timeout", type=float, default=30.0,
        help="hang deadline for deadline-less requests (default: 30)",
    )
    p_serve.add_argument(
        "--hedge-after", type=float, default=None,
        help="race a second worker on requests slower than this (off "
        "by default)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive worker deaths on one request before its KB "
        "is poisoned (default: 3)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0,
        help="seconds a poisoned KB stays rejected (default: 5)",
    )
    p_serve.add_argument(
        "--degrade-watermark", type=int, default=None,
        help="queued-request count past which admissions degrade "
        "(off by default)",
    )

    p_stats = sub.add_parser(
        "stats", help="dump the in-process metrics registry"
    )
    p_stats.add_argument(
        "--format",
        dest="stats_format",
        default="text",
        choices=["text", "json", "prom"],
        help="output format (default: text)",
    )
    p_stats.add_argument(
        "run",
        nargs=argparse.REMAINDER,
        help="optional subcommand to run first (its metrics are dumped); "
        "separate with --, e.g. stats -- revise ...",
    )

    p_trace = sub.add_parser(
        "trace", help="inspect a REPRO_TRACE span trace"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_show = trace_sub.add_parser(
        "show", help="render the span tree with self/total times"
    )
    p_show.add_argument("trace_file", help="JSONL trace file to render")
    return parser


def _fmt_model(model) -> str:
    return "{" + ", ".join(sorted(model)) + "}"


def _cmd_revise(args: argparse.Namespace) -> int:
    kb = KnowledgeBase(args.theory, operator=args.operator)
    for update in args.updates:
        kb.revise(update)
    print(f"operator : {kb.operator_name}")
    print(f"alphabet : {', '.join(kb.alphabet())}")
    print("models   :")
    for model in sorted(kb.models(), key=sorted):
        print(f"  {_fmt_model(model)}")
    if args.show_size and kb.operator_name in _COMPILERS:
        rep = kb.compile()
        print(f"compiled : |T'| = {rep.size()} ({rep.equivalence} equivalence)")
    return 0


def _cmd_ask(args: argparse.Namespace) -> int:
    kb = KnowledgeBase(args.theory, operator=args.operator)
    for update in args.updates:
        kb.revise(update)
    answer = kb.ask(args.query, via=args.via)
    print("yes" if answer else "no")
    return 0 if answer else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    kb = KnowledgeBase(args.theory, operator=args.operator)
    for update in args.updates:
        kb.revise(update)
    rep: CompactRepresentation = kb.compile()
    print(f"operator    : {rep.operator}")
    print(f"equivalence : {rep.equivalence}")
    print(f"size |T'|   : {rep.size()}")
    print(f"new letters : {rep.new_letter_count()}")
    print(f"formula     : {rep.formula}")
    return 0


def _cmd_operators(_: argparse.Namespace) -> int:
    print("model-based   :", ", ".join(MODEL_BASED_NAMES))
    print("formula-based :", ", ".join(FORMULA_BASED_NAMES))
    print()
    for name in sorted(OPERATORS):
        print(f"  {name:9s} {_SUMMARY[name]}")
    return 0


def _open_store(args: argparse.Namespace):
    from . import store as repro_store

    root = args.store_dir or os.environ.get(repro_store.ENV_DIR, "").strip()
    if not root:
        raise ValueError(
            "no store directory: pass --dir or set REPRO_STORE"
        )
    if not os.path.isdir(root):
        raise ValueError(f"store directory {root!r} does not exist")
    return repro_store.ArtifactStore(root)


def _fmt_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{count}B"  # pragma: no cover - unreachable


def _fmt_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_store(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if args.store_command == "verify":
        report = store.verify()
        print(f"checked     : {report['checked']}")
        print(f"ok          : {report['ok']}")
        print(f"quarantined : {len(report['quarantined'])}")
        for name in report["quarantined"]:
            print(f"  {name}")
        return 0 if not report["quarantined"] else 1
    if args.store_command == "ls":
        rows = store.entries()
        total = 0
        print(f"{'KEY':16s} {'KIND':8s} {'SIZE':>9s} {'AGE':>7s} {'HITS':>5s}")
        for row in rows:
            total += int(row["bytes"])
            print(
                f"{str(row['key'])[:16]:16s} {str(row['kind']):8s} "
                f"{_fmt_bytes(int(row['bytes'])):>9s} "
                f"{_fmt_age(float(row['age_s'])):>7s} {int(row['hits']):>5d}"
            )
        print(f"{len(rows)} artifacts, {_fmt_bytes(total)} "
              f"(budget {_fmt_bytes(store.max_bytes())})")
        return 0
    # gc
    report = store.gc(args.max_bytes)
    print(f"evicted   : {report['evicted']}")
    print(f"freed     : {_fmt_bytes(report['freed_bytes'])}")
    print(f"remaining : {_fmt_bytes(report['remaining_bytes'])}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Drain a JSONL request stream through a supervised service.

    Responses come out on stdout in *submission order* (JSONL, one
    object per line), so diffing two runs — faults on vs off — is a
    plain line comparison; the serving-side counters land on stderr.
    """
    import contextlib
    import json as _json
    from collections import deque

    from .service import Request, RevisionService, ServiceConfig
    from .service.frontend import STATS as service_stats

    config = ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        heartbeat_s=args.heartbeat,
        hang_timeout_s=args.hang_timeout,
        hedge_after_s=args.hedge_after,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        degrade_watermark=args.degrade_watermark,
    )
    if args.requests == "-":
        stream_cm = contextlib.nullcontext(sys.stdin)
    else:
        stream_cm = open(args.requests, "r")

    def emit(future) -> None:
        response = future.result()
        print(_json.dumps(response.to_dict(), sort_keys=True), flush=True)

    with stream_cm as stream, RevisionService(config) as service:
        outstanding = deque()
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            payload = _json.loads(line)
            payload.setdefault("operator", args.operator)
            if args.deadline is not None:
                payload.setdefault("deadline", args.deadline)
            outstanding.append(service.submit(Request.from_dict(payload)))
            while len(outstanding) >= args.inflight:
                emit(outstanding.popleft())
        while outstanding:
            emit(outstanding.popleft())
    for key in ("admitted", "completed", "shed", "retries",
                "worker_deaths", "worker_restarts", "worker_hangs",
                "hedges", "degraded", "timeouts", "breaker_opens",
                "queue_peak"):
        print(f"service.{key} = {service_stats[key]}", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Dump the metrics registry, optionally after running a subcommand.

    A bare ``repro stats`` in a fresh process shows mostly-zero baseline
    counters (each CLI invocation is its own process); the useful form
    runs work first in the *same* process: ``repro stats --format prom
    -- revise -o dalal "g | b" "~g"``.  The inner command's stdout goes
    to stderr so the exposition stays machine-readable.
    """
    import contextlib
    import json as _json

    from . import obs as _obs

    inner = list(args.run)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if inner:
        if inner[0] in ("stats", "trace"):
            raise ValueError(f"stats cannot wrap {inner[0]!r}")
        with contextlib.redirect_stdout(sys.stderr):
            main(inner)
    registry = _obs.REGISTRY
    if args.stats_format == "json":
        print(_json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    elif args.stats_format == "prom":
        sys.stdout.write(registry.render_prometheus())
    else:
        sys.stdout.write(registry.render_text())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import obs as _obs

    try:
        events = _obs.load_events(args.trace_file)
    except OSError as error:
        raise ValueError(f"cannot read trace: {error}")
    roots, _, diagnostics = _obs.build_forest(events)
    for line in _obs.render_tree(roots, diagnostics):
        print(line)
    return 0


_COMMANDS = {
    "revise": _cmd_revise,
    "ask": _cmd_ask,
    "compile": _cmd_compile,
    "operators": _cmd_operators,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, POSIX-style.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
