"""The engine-wide metrics registry: counters, gauges, histograms.

One process-global :class:`Registry` (:data:`REGISTRY`) holds every
metric the engine emits, keyed by dotted name.  The naming scheme is
``<group>.<metric>``, where the group identifies the subsystem:

``runtime.*``
    governance counters (checkpoints, budget trips, demotions, worker
    crashes) — the registry view behind ``repro.runtime.STATS``;
``allsat.*``
    solver/enumeration counters (conflicts, propagations, learned,
    cubes, models, …) — behind ``repro.sat.allsat.STATS``;
``faults.*``
    injected-fault counts — behind ``repro.runtime.faults.STATS``;
``batch.tier.*``
    per-tier revision counts — mirrored from ``BatchCache.tier_counts``;
``store.*``
    artifact-store traffic — mirrored from ``ArtifactStore.stats``;
``obs.trace.*``
    span/trace bookkeeping (only non-zero while tracing is on);
``span.<name>.s``
    log-scale latency histograms, one per span name, observed in
    seconds on span exit (again: only while tracing is on).

Three access styles share the registry:

* direct — ``REGISTRY.inc("pool.worker_merges")``;
* :class:`CounterGroup` — a ``MutableMapping`` shim that makes a dotted
  prefix look like the plain counter dicts the engine always had
  (``STATS["conflicts"] += 1`` keeps working, ``STATS.inc("conflicts")``
  is the atomic spelling for hot/threaded sites);
* :class:`MirrorCounter` — a ``collections.Counter`` whose item writes
  mirror their deltas into the registry, for per-instance counter bags
  (``BatchCache.tier_counts``, ``ArtifactStore.stats``) that must stay
  instance-local *and* visible globally.

Everything mutates under one ``threading.Lock`` (re-initialised in
forked children via ``os.register_at_fork``), which is what makes the
threaded ``REPRO_PARALLEL`` fan-out safe: :meth:`Registry.inc` and
:meth:`CounterGroup.inc` are atomic read-modify-writes.

Cross-process flow: a pool worker snapshots the registry on entry
(:meth:`Registry.capture_baseline`), runs the job, and ships the delta
(:meth:`Registry.capture_delta`) back with its result; the parent folds
it in with :meth:`Registry.merge`.  Counters merge by addition,
high-water keys (declared ``max``) by maximum, histograms bucket-wise.

:meth:`Registry.reset` zeroes the whole registry in one call —
counters back to their declared baselines, dynamic keys and histograms
dropped — which is the single reset the bench and tests rely on.
"""

from __future__ import annotations

import math
import os
import re
import threading
from collections import Counter
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

__all__ = [
    "REGISTRY",
    "CounterGroup",
    "MirrorCounter",
    "Registry",
]

#: Histogram bucket exponents are clamped to this range: the smallest
#: bucket is ``<= 2^_MIN_EXP`` seconds (~1 us), the largest finite one
#: ``<= 2^_MAX_EXP`` (~128 s); anything slower lands in ``+Inf``.
_MIN_EXP = -20
_MAX_EXP = 7


def _bucket_exponent(seconds: float) -> int:
    """The log2 bucket for a latency: smallest ``e`` with ``v <= 2^e``."""
    if seconds <= 0.0:
        return _MIN_EXP
    _, exponent = math.frexp(seconds)  # v in [2^(e-1), 2^e)
    return min(max(exponent, _MIN_EXP), _MAX_EXP + 1)


class _Hist:
    """One log-scale latency histogram: count, sum, sparse log2 buckets."""

    __slots__ = ("count", "total", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.buckets: Dict[int, int] = {}

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        exponent = _bucket_exponent(seconds)
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1


class Registry:
    """Thread-safe metric store keyed by dotted name.

    Scalar metrics live in one flat dict; each key has a merge mode —
    ``add`` (the default: counters) or ``max`` (high-water marks such as
    ``allsat.max_backjump``) — that governs both cross-process merging
    and worker-delta capture.  Latency histograms are separate
    (:meth:`observe`).  See the module docstring for the naming scheme.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Dict[str, int] = {}
        self._modes: Dict[str, str] = {}
        self._hists: Dict[str, _Hist] = {}
        #: prefix -> (baseline keys, max keys) for declared groups, so
        #: reset() can restore the always-present counters.
        self._groups: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}

    # -- fork safety --------------------------------------------------

    def _after_fork(self) -> None:
        """Replace the lock in a forked child (the parent may hold it)."""
        self._lock = threading.Lock()

    # -- declaration --------------------------------------------------

    def declare_group(
        self,
        prefix: str,
        baseline: Sequence[str] = (),
        max_keys: Sequence[str] = (),
    ) -> None:
        """Register a counter group: seed its baseline keys at zero and
        record which keys merge by maximum instead of addition."""
        baseline = tuple(baseline)
        max_keys = tuple(max_keys)
        with self._lock:
            self._groups[prefix] = (baseline, max_keys)
            for key in max_keys:
                self._modes[f"{prefix}.{key}"] = "max"
            for key in baseline:
                self._values.setdefault(f"{prefix}.{key}", 0)

    # -- scalar metrics -----------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Atomically add *amount* to counter *name*; returns the new value."""
        with self._lock:
            value = self._values.get(name, 0) + amount
            self._values[name] = value
            return value

    def put(self, name: str, value: int) -> None:
        """Set *name* to an absolute value (last-write-wins gauges)."""
        with self._lock:
            self._values[name] = value

    def max_update(self, name: str, value: int) -> None:
        """Raise *name* to *value* if larger (high-water marks)."""
        with self._lock:
            if value > self._values.get(name, 0):
                self._values[name] = value

    def get(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._values.get(name, default)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample in histogram *name* (seconds)."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = _Hist()
            hist.observe(seconds)

    # -- group plumbing (used by CounterGroup) ------------------------

    def _group_keys(self, prefix: str) -> Tuple[str, ...]:
        start = prefix + "."
        with self._lock:
            return tuple(
                name[len(start):]
                for name in self._values
                if name.startswith(start)
            )

    def _delete(self, name: str) -> None:
        with self._lock:
            del self._values[name]

    def _contains(self, name: str) -> bool:
        with self._lock:
            return name in self._values

    def reset_prefix(self, prefix: str) -> None:
        """Drop every metric under ``prefix.``, then reseed the group's
        baseline keys (if declared) at zero."""
        start = prefix + "."
        with self._lock:
            for name in [n for n in self._values if n.startswith(start)]:
                del self._values[name]
            for name in [n for n in self._hists if n.startswith(start)]:
                del self._hists[name]
            baseline, _ = self._groups.get(prefix, ((), ()))
            for key in baseline:
                self._values[f"{prefix}.{key}"] = 0

    def reset(self) -> None:
        """Zero the whole registry: every counter back to its declared
        baseline, every dynamic key and histogram dropped.  This is the
        single reset the ISSUE's "one ``reset()``" refers to; the
        per-group ``STATS.reset()`` spellings delegate here."""
        with self._lock:
            self._values.clear()
            self._hists.clear()
            for prefix, (baseline, _) in self._groups.items():
                for key in baseline:
                    self._values[f"{prefix}.{key}"] = 0

    # -- dumps --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """A sorted copy of every scalar metric."""
        with self._lock:
            return dict(sorted(self._values.items()))

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready dump: counters plus histogram summaries."""
        with self._lock:
            hists = {
                name: {
                    "count": hist.count,
                    "sum_s": hist.total,
                    "buckets": {
                        ("+Inf" if exp > _MAX_EXP else repr(2.0 ** exp)): n
                        for exp, n in sorted(hist.buckets.items())
                    },
                }
                for name, hist in sorted(self._hists.items())
            }
            return {
                "counters": dict(sorted(self._values.items())),
                "histograms": hists,
            }

    def render_text(self) -> str:
        """Human-readable dump, grouped by dotted prefix."""
        snap = self.snapshot()
        lines = []
        last_group = None
        for name, value in snap["counters"].items():  # type: ignore[union-attr]
            group = name.split(".", 1)[0]
            if group != last_group:
                if last_group is not None:
                    lines.append("")
                lines.append(f"[{group}]")
                last_group = group
            lines.append(f"  {name:40s} {value}")
        hists = snap["histograms"]
        if hists:
            lines.append("")
            lines.append("[latency]")
            for name, hist in hists.items():  # type: ignore[union-attr]
                count = hist["count"]
                mean_ms = 1000.0 * hist["sum_s"] / count if count else 0.0
                lines.append(
                    f"  {name:40s} n={count} mean={mean_ms:.3f}ms"
                )
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition (counters + histograms)."""
        out = []
        snap = self.snapshot()
        for name, value in snap["counters"].items():  # type: ignore[union-attr]
            metric = _prom_name(name)
            out.append(f"# TYPE {metric} counter")
            out.append(f"{metric} {value}")
        for name, hist in snap["histograms"].items():  # type: ignore[union-attr]
            metric = _prom_name(name) + "_seconds"
            out.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for le, count in hist["buckets"].items():
                cumulative += count
                bound = le if le == "+Inf" else le
                out.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            if "+Inf" not in hist["buckets"]:
                out.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
            out.append(f"{metric}_sum {hist['sum_s']}")
            out.append(f"{metric}_count {hist['count']}")
        return "\n".join(out)

    # -- cross-process aggregation ------------------------------------

    def capture_baseline(self) -> Dict[str, object]:
        """Snapshot for delta capture (taken by a pool worker on entry)."""
        with self._lock:
            return {
                "values": dict(self._values),
                "hist_counts": {
                    name: (hist.count, hist.total, dict(hist.buckets))
                    for name, hist in self._hists.items()
                },
            }

    def capture_delta(self, baseline: Mapping[str, object]) -> Dict[str, object]:
        """What changed since *baseline*, as a mergeable envelope.

        ``add``-mode keys ship their numeric delta, ``max``-mode keys
        their absolute value (the parent takes the maximum); histograms
        ship per-bucket count deltas.
        """
        base_values: Mapping[str, int] = baseline["values"]  # type: ignore[assignment]
        base_hists: Mapping[str, Tuple[int, float, Dict[int, int]]] = (
            baseline["hist_counts"]  # type: ignore[assignment]
        )
        add: Dict[str, int] = {}
        high: Dict[str, int] = {}
        hists: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name, value in self._values.items():
                if self._modes.get(name) == "max":
                    if value > base_values.get(name, 0):
                        high[name] = value
                    continue
                delta = value - base_values.get(name, 0)
                if delta:
                    add[name] = delta
            for name, hist in self._hists.items():
                b_count, b_total, b_buckets = base_hists.get(
                    name, (0, 0.0, {})
                )
                if hist.count == b_count:
                    continue
                hists[name] = {
                    "count": hist.count - b_count,
                    "total": hist.total - b_total,
                    "buckets": {
                        exp: n - b_buckets.get(exp, 0)
                        for exp, n in hist.buckets.items()
                        if n != b_buckets.get(exp, 0)
                    },
                }
        return {"add": add, "max": high, "hist": hists}

    def merge(self, envelope: Mapping[str, object]) -> None:
        """Fold a worker's :meth:`capture_delta` envelope into this
        registry (addition / maximum / bucket-wise, per mode)."""
        with self._lock:
            for name, delta in envelope.get("add", {}).items():  # type: ignore[union-attr]
                self._values[name] = self._values.get(name, 0) + delta
            for name, value in envelope.get("max", {}).items():  # type: ignore[union-attr]
                if value > self._values.get(name, 0):
                    self._values[name] = value
            for name, delta in envelope.get("hist", {}).items():  # type: ignore[union-attr]
                hist = self._hists.get(name)
                if hist is None:
                    hist = self._hists[name] = _Hist()
                hist.count += delta["count"]
                hist.total += delta["total"]
                for exp, n in delta["buckets"].items():
                    exp = int(exp)
                    hist.buckets[exp] = hist.buckets.get(exp, 0) + n


def _prom_name(name: str) -> str:
    """``allsat.max_backjump`` -> ``repro_allsat_max_backjump``."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


#: The process-global registry every subsystem reports through.
REGISTRY = Registry()

if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=REGISTRY._after_fork)


class CounterGroup(Dict[str, int]):
    """A dict-shaped view of one registry prefix.

    Subclasses ``dict`` only so long-standing ``isinstance``/typing
    expectations hold; all storage lives in the registry (the inherited
    dict is never populated).  Every historical idiom over the engine's
    counter bags keeps working — ``STATS["cubes"] += 1``,
    ``dict(STATS)``, ``"learned" in STATS``, ``STATS.get(k, 0)``,
    ``STATS.items()`` — while new/hot call sites use :meth:`inc` and
    :meth:`max_update`, which are atomic under the registry lock (the
    ``+=`` spelling is a read *then* a write and is only safe on
    single-threaded paths).

    ``baseline`` keys always exist (and survive :meth:`reset` at zero);
    ``max_keys`` merge by maximum when worker deltas are folded in.
    """

    def __init__(
        self,
        prefix: str,
        baseline: Sequence[str] = (),
        max_keys: Sequence[str] = (),
        registry: Optional[Registry] = None,
    ) -> None:
        super().__init__()
        self._prefix = prefix
        self._registry = registry if registry is not None else REGISTRY
        self._registry.declare_group(prefix, baseline, max_keys)

    def _full(self, key: str) -> str:
        return f"{self._prefix}.{key}"

    # -- mapping protocol ---------------------------------------------

    def __getitem__(self, key: str) -> int:
        full = self._full(key)
        if not self._registry._contains(full):
            raise KeyError(key)
        return self._registry.get(full)

    def __setitem__(self, key: str, value: int) -> None:
        self._registry.put(self._full(key), value)

    def __delitem__(self, key: str) -> None:
        try:
            self._registry._delete(self._full(key))
        except KeyError:
            raise KeyError(key) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry._group_keys(self._prefix))

    def __len__(self) -> int:
        return len(self._registry._group_keys(self._prefix))

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self._registry._contains(
            self._full(key)
        )

    def __bool__(self) -> bool:
        # The inherited dict storage is never populated; truthiness must
        # come from the registry view.
        return len(self) > 0

    def copy(self) -> Dict[str, int]:
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterGroup({self._prefix!r}, {dict(self.items())!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def keys(self):
        return dict(self.items()).keys()

    def values(self):
        return dict(self.items()).values()

    def items(self):
        return {
            key: self._registry.get(self._full(key))
            for key in self._registry._group_keys(self._prefix)
        }.items()

    def get(self, key: str, default: Optional[int] = None):
        full = self._full(key)
        if self._registry._contains(full):
            return self._registry.get(full)
        return default

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def clear(self) -> None:
        for key in self._registry._group_keys(self._prefix):
            self._registry._delete(self._full(key))

    def pop(self, key: str, *default):
        try:
            value = self[key]
        except KeyError:
            if default:
                return default[0]
            raise
        del self[key]
        return value

    # -- the atomic spellings -----------------------------------------

    def inc(self, key: str, amount: int = 1) -> int:
        """Atomic ``self[key] += amount`` (safe from worker threads)."""
        return self._registry.inc(self._full(key), amount)

    def max_update(self, key: str, value: int) -> None:
        """Atomic ``self[key] = max(self[key], value)``."""
        self._registry.max_update(self._full(key), value)

    def reset(self) -> None:
        """Drop the group's dynamic keys, zero its baseline — including
        any deltas merged from pool workers, which land on the same
        registry keys."""
        self._registry.reset_prefix(self._prefix)


class MirrorCounter(Counter):
    """A ``collections.Counter`` whose item writes mirror into the
    registry.

    For per-instance counter bags (``BatchCache.tier_counts``,
    ``ArtifactStore.stats``): reads and iteration are instance-local
    and lock-free, but every ``counter[key] = value`` also applies the
    *delta* to ``<prefix>.<key>`` in the registry, so ``repro stats``
    sees the aggregate across instances.  Only item assignment mirrors
    (the engine's bags are bumped exclusively via ``+=``/``[k] = v``);
    :meth:`clear` withdraws this instance's contribution from the
    registry.
    """

    def __init__(self, prefix: str, registry: Optional[Registry] = None) -> None:
        super().__init__()
        self._prefix = prefix
        self._registry = registry if registry is not None else REGISTRY

    def __setitem__(self, key: str, value: int) -> None:
        delta = value - self.get(key, 0)
        if delta:
            self._registry.inc(f"{self._prefix}.{key}", delta)
        super().__setitem__(key, value)

    def __delitem__(self, key: str) -> None:
        value = self.get(key, 0)
        if value:
            self._registry.inc(f"{self._prefix}.{key}", -value)
        super().__delitem__(key)

    def clear(self) -> None:
        for key, value in self.items():
            if value:
                self._registry.inc(f"{self._prefix}.{key}", -value)
        super().clear()

    def __reduce__(self):  # pragma: no cover - Counter pickling support
        return (type(self), (self._prefix,), None, None, iter(self.items()))
