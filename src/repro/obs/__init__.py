"""Unified telemetry for the revision engine.

``repro.obs`` is the one place the engine reports through:

* :mod:`repro.obs.metrics` — the process-global :data:`REGISTRY` of
  counters, gauges and log-scale latency histograms, plus the
  :class:`CounterGroup` / :class:`MirrorCounter` shims that keep the
  historical counter bags (``runtime.STATS``, ``allsat.STATS``,
  ``faults.STATS``, ``BatchCache.tier_counts``, ``ArtifactStore.stats``)
  working while backing them with one thread-safe store;
* :mod:`repro.obs.trace` — nested spans over the hot path (tier
  dispatch, compiles, SAT enumeration, pointwise kernels, store
  probe/publish, the batch driver), written as JSONL under
  ``REPRO_TRACE=<path>`` and merged across pool workers so a parallel
  revise still reads as one tree.

Surfacing: ``repro stats`` dumps the registry (text/JSON/Prometheus),
``repro trace show <file>`` renders a trace.  :func:`reset` zeroes the
entire registry in one call.
"""

from __future__ import annotations

from .metrics import REGISTRY, CounterGroup, MirrorCounter, Registry
from .trace import (
    ENV_TRACE,
    adopt,
    build_forest,
    close,
    configure,
    current_span_id,
    load_events,
    merge_worker,
    render_tree,
    span,
    tracing,
    worker_capture_begin,
    worker_capture_end,
)

__all__ = [
    "ENV_TRACE",
    "REGISTRY",
    "CounterGroup",
    "MirrorCounter",
    "Registry",
    "adopt",
    "build_forest",
    "close",
    "configure",
    "current_span_id",
    "load_events",
    "merge_worker",
    "render_tree",
    "reset",
    "span",
    "tracing",
    "worker_capture_begin",
    "worker_capture_end",
]


def reset() -> None:
    """Zero every metric in the registry — counters to their declared
    baselines, dynamic keys and histograms dropped, merged worker
    deltas included."""
    REGISTRY.reset()
