"""Nested spans and the JSONL trace writer.

Tracing is off by default and the fast path is a genuine no-op:
:func:`span` costs one module-attribute load and returns a shared
do-nothing context manager, no timestamps are taken and no latency
histograms are fed.  Setting ``REPRO_TRACE=<path>`` (read at import,
or live via :func:`configure`) turns every :func:`span` site in the
engine into two JSONL events appended to *path*:

``{"ev": "B", "id", "par", "name", "ts", "pid", "tid", "attrs"}``
    span begin — ``id`` is ``"<pid>-<seq>"`` (unique across the pool
    fan-out), ``par`` the enclosing span's id or ``null`` for a root,
    ``ts`` epoch seconds.
``{"ev": "E", "id", "ts", "dur", "attrs"}``
    span end — ``dur`` is the monotonic duration in seconds; ``attrs``
    carries values attached after entry via :meth:`_Span.set` (tier
    decisions, conflict counts, cache verdicts).

Span nesting is tracked per thread; :func:`adopt` re-parents work that
hops threads (the blocked-kernel thread pool), and pool workers buffer
their events in memory (:func:`worker_capture_begin` /
:func:`worker_capture_end`) so only the parent process ever writes the
file — :func:`merge_worker` re-parents each worker's root spans under
the parent's current span and appends the buffered events, which is
how a parallel run still renders as one tree.

On span exit (tracing on) the duration also feeds the
``span.<name>.s`` histogram and the ``obs.trace.*`` counters in
:data:`repro.obs.metrics.REGISTRY` — with tracing off those stay
silent, which CI asserts.

The second half of the module is the reader used by
``repro trace show``: :func:`load_events`, :func:`build_forest` (B/E
matching, orphan/unclosed diagnostics) and :func:`render_tree`
(per-span total and self milliseconds, tier attribution, per-tier
rollup).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from .metrics import REGISTRY

__all__ = [
    "ENV_TRACE",
    "adopt",
    "build_forest",
    "close",
    "configure",
    "current_span_id",
    "load_events",
    "merge_worker",
    "render_tree",
    "span",
    "tracing",
    "worker_capture_begin",
    "worker_capture_end",
]

ENV_TRACE = "REPRO_TRACE"

_seq = itertools.count(1)
_local = threading.local()


def _stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class _FileSink:
    """Append-only JSONL writer, one line per event, flushed per emit."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[IO[str]] = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            if self._file is not None:
                self._file.write(line + "\n")
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def _after_fork(self) -> None:
        # A forked child shares the parent's file offset; it must never
        # write (workers buffer instead), so drop the handle defensively.
        self._lock = threading.Lock()
        self._file = None


class _BufferSink:
    """In-memory event buffer used inside pool workers."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:  # pragma: no cover - interface symmetry
        pass


_sink: Optional[Any] = None


def tracing() -> bool:
    """True when a trace sink is active (spans are being recorded)."""
    return _sink is not None


def configure(target: Optional[str]) -> None:
    """Point tracing at a JSONL *target* path, or disable with ``None``.

    Replaces (and closes) any active file sink.  Tests use this
    directly; production runs set ``REPRO_TRACE`` instead.
    """
    global _sink
    old = _sink
    _sink = _FileSink(target) if target else None
    if old is not None and isinstance(old, _FileSink):
        old.close()


def close() -> None:
    """Flush and close the active trace sink (alias: ``configure(None)``)."""
    configure(None)


def current_span_id() -> Optional[str]:
    """The innermost open span's id on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


class _NoopSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _Span:
    """One live span: emits B on entry, E (with duration) on exit."""

    __slots__ = ("name", "id", "_attrs", "_exit_attrs", "_t0", "_sink")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self._attrs = attrs
        self._exit_attrs: Optional[Dict[str, Any]] = None
        self._sink = _sink

    def __enter__(self) -> "_Span":
        sink = self._sink
        self.id = f"{os.getpid()}-{next(_seq)}"
        stack = _stack()
        parent = stack[-1] if stack else None
        stack.append(self.id)
        event: Dict[str, Any] = {
            "ev": "B",
            "id": self.id,
            "par": parent,
            "name": self.name,
            "ts": time.time(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self._attrs:
            event["attrs"] = self._attrs
        if sink is not None:
            sink.emit(event)
        self._t0 = time.perf_counter()
        return self

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute reported on span exit (tier, counts, …)."""
        if self._exit_attrs is None:
            self._exit_attrs = {}
        self._exit_attrs[key] = value

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        elif self.id in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(self.id)
        event: Dict[str, Any] = {
            "ev": "E",
            "id": self.id,
            "ts": time.time(),
            "dur": duration,
        }
        if exc_type is not None:
            self.set("error", getattr(exc_type, "__name__", str(exc_type)))
        if self._exit_attrs:
            event["attrs"] = self._exit_attrs
        sink = self._sink
        if sink is not None:
            sink.emit(event)
        REGISTRY.observe(f"span.{self.name}.s", duration)
        REGISTRY.inc("obs.trace.spans")


def span(name: str, **attrs: Any) -> Any:
    """Open a nested span (context manager): ``with span("revise", op=o):``.

    With tracing off this returns a shared no-op and records nothing —
    not even latency histograms — so the hot path stays untouched.
    """
    if _sink is None:
        return _NOOP
    return _Span(name, attrs)


class _Adopt:
    """Context manager that re-parents this thread under *parent_id*."""

    __slots__ = ("_parent", "_saved")

    def __init__(self, parent_id: Optional[str]) -> None:
        self._parent = parent_id

    def __enter__(self) -> "_Adopt":
        stack = _stack()
        self._saved = stack[:]
        stack[:] = [self._parent] if self._parent else []
        return self

    def __exit__(self, *exc_info) -> None:
        _stack()[:] = self._saved


def adopt(parent_id: Optional[str]) -> _Adopt:
    """Run a block on another thread as a child of *parent_id*.

    The blocked-kernel thread pool wraps each chunk in
    ``adopt(current_span_id())`` captured on the submitting thread, so
    chunk spans nest under the kernel span instead of floating as
    roots.
    """
    return _Adopt(parent_id)


# ---------------------------------------------------------------------------
# Cross-process capture and merge (pool workers)
# ---------------------------------------------------------------------------


def worker_capture_begin() -> Tuple[Any, Any, Optional[_BufferSink]]:
    """Start capturing telemetry inside a pool worker.

    Snapshots the (fork-inherited) registry for delta capture and, when
    tracing is on, swaps the sink for an in-memory buffer so the child
    never touches the parent's trace file.  The worker's span stack is
    cleared: its spans become roots, re-parented at merge time.
    """
    global _sink
    baseline = REGISTRY.capture_baseline()
    saved = _sink
    buffer = _BufferSink() if saved is not None else None
    _sink = buffer
    _local.stack = []
    return (baseline, saved, buffer)


def worker_capture_end(token: Tuple[Any, Any, Optional[_BufferSink]]) -> Dict[str, Any]:
    """Finish a worker capture; returns the envelope to ship back.

    The envelope is plain picklable data: the registry delta since
    :func:`worker_capture_begin` plus any buffered span events.
    """
    global _sink
    baseline, saved, buffer = token
    _sink = saved
    return {
        "metrics": REGISTRY.capture_delta(baseline),
        "events": buffer.events if buffer is not None else [],
    }


def merge_worker(envelope: Dict[str, Any]) -> None:
    """Fold one worker envelope into this process.

    Metric deltas merge into the registry; buffered span events are
    appended to the live trace with each worker root re-parented under
    the parent's current span, so ``repro trace show`` renders the
    fan-out as one tree.
    """
    REGISTRY.merge(envelope.get("metrics", {}))
    events = envelope.get("events") or []
    sink = _sink
    if not events or sink is None:
        return
    parent = current_span_id()
    merged = 0
    for event in events:
        if (
            parent is not None
            and event.get("ev") == "B"
            and event.get("par") is None
        ):
            event = dict(event)
            event["par"] = parent
        sink.emit(event)
        merged += 1
    REGISTRY.inc("obs.trace.worker_events", merged)
    REGISTRY.inc("obs.trace.worker_merges")


def _after_fork() -> None:
    sink = _sink
    if isinstance(sink, _FileSink):
        sink._after_fork()
    _local.stack = []


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_after_fork)


# ---------------------------------------------------------------------------
# Trace reading (the `repro trace show` backend)
# ---------------------------------------------------------------------------


def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; raises ``ValueError`` with the line
    number on malformed input."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace line ({error})"
                ) from None
            if not isinstance(event, dict) or "ev" not in event:
                raise ValueError(f"{path}:{lineno}: not a trace event")
            events.append(event)
    return events


def build_forest(
    events: Sequence[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, Dict[str, Any]], Dict[str, int]]:
    """Match B/E events into span records.

    Returns ``(roots, spans_by_id, diagnostics)``.  Each span record
    holds ``name/par/ts/pid/tid/attrs/children/dur`` (``dur`` is
    ``None`` for unclosed spans — e.g. from a crashed worker).
    Diagnostics count ``unmatched_exits`` and ``unclosed`` spans.
    """
    spans: Dict[str, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    unmatched = 0
    for event in events:
        if event.get("ev") == "B":
            record = {
                "id": event.get("id"),
                "name": event.get("name", "?"),
                "par": event.get("par"),
                "ts": event.get("ts", 0.0),
                "pid": event.get("pid"),
                "tid": event.get("tid"),
                "attrs": dict(event.get("attrs") or {}),
                "children": [],
                "dur": None,
            }
            spans[record["id"]] = record
            parent = spans.get(record["par"]) if record["par"] else None
            if parent is not None:
                parent["children"].append(record)
            else:
                roots.append(record)
        elif event.get("ev") == "E":
            record = spans.get(event.get("id"))
            if record is None:
                unmatched += 1
                continue
            record["dur"] = event.get("dur")
            record["attrs"].update(event.get("attrs") or {})
    unclosed = sum(1 for record in spans.values() if record["dur"] is None)
    return roots, spans, {"unmatched_exits": unmatched, "unclosed": unclosed}


def _self_seconds(record: Dict[str, Any]) -> Optional[float]:
    if record["dur"] is None:
        return None
    child_total = sum(
        child["dur"] for child in record["children"]
        if child["dur"] is not None
    )
    return max(0.0, record["dur"] - child_total)


def _format_span(record: Dict[str, Any], root_pid: Optional[int]) -> str:
    if record["dur"] is None:
        timing = "UNCLOSED"
    else:
        self_s = _self_seconds(record)
        timing = (
            f"total={1000.0 * record['dur']:.3f}ms "
            f"self={1000.0 * self_s:.3f}ms"
        )
    parts = [record["name"], timing]
    if root_pid is not None and record["pid"] not in (None, root_pid):
        parts.insert(1, f"[pid {record['pid']}]")
    attrs = record["attrs"]
    tier = attrs.get("tier") or attrs.get("engine")
    ordered = []
    if tier is not None:
        ordered.append(("tier", tier))
    for key in sorted(attrs):
        if key in ("tier", "engine"):
            continue
        ordered.append((key, attrs[key]))
    parts.extend(f"{key}={value}" for key, value in ordered)
    return " ".join(str(part) for part in parts)


def render_tree(
    roots: Sequence[Dict[str, Any]],
    diagnostics: Optional[Dict[str, int]] = None,
) -> List[str]:
    """Render a span forest as indented text lines with per-span total
    and self times, tier attribution, and a per-tier rollup."""
    lines: List[str] = []
    tier_totals: Dict[str, Tuple[int, float]] = {}
    root_pid = roots[0]["pid"] if roots else None

    def walk(record: Dict[str, Any], prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + _format_span(record, root_pid))
        tier = record["attrs"].get("tier") or record["attrs"].get("engine")
        if tier is not None:
            count, total = tier_totals.get(str(tier), (0, 0.0))
            tier_totals[str(tier)] = (
                count + 1, total + (record["dur"] or 0.0)
            )
        child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(record["children"]):
            walk(child, child_prefix, index == len(record["children"]) - 1)

    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1)
    if tier_totals:
        lines.append("")
        rollup = ", ".join(
            f"{tier}={count} ({1000.0 * total:.1f}ms)"
            for tier, (count, total) in sorted(tier_totals.items())
        )
        lines.append(f"tier totals: {rollup}")
    if diagnostics and (
        diagnostics.get("unclosed") or diagnostics.get("unmatched_exits")
    ):
        lines.append(
            f"warning: {diagnostics.get('unclosed', 0)} unclosed span(s), "
            f"{diagnostics.get('unmatched_exits', 0)} unmatched exit(s)"
        )
    return lines


# Activate tracing from the environment at import: the production knob.
if os.environ.get(ENV_TRACE, "").strip():
    configure(os.environ[ENV_TRACE].strip())
