"""Iterated compact representations — Section 5 (Theorem 5.1, formula (10)).

For the *unbounded* iterated case only Dalal's and Weber's operators stay
query-compactable:

* :func:`dalal_iterated` — Theorem 5.1's formula ``Φ_m``:

  ``T[X/Y1] ∧ P¹[X/Y2] ∧ ... ∧ P^{m-1}[X/Ym] ∧ P^m ∧
  EXA(k1,Y1,Y2,W1) ∧ ... ∧ EXA(km,Ym,X,Wm)``

  with the chain of fresh alphabet copies carrying the intermediate models
  and each ``k_i`` the minimum distance of step ``i``, computed effectively
  by SAT probes on the partial formula;

* :func:`weber_iterated` — formula (10): sequential forgetting
  ``T[Ω1/Z1; ...; Ωm/Zm] ∧ P¹[Ω2/Z2; ...] ∧ ... ∧ P^m`` where ``Ω_i`` is the
  letter set of step ``i`` (substitutions applied left-to-right, so a letter
  forgotten at step ``i`` stays forgotten).

Note the size behaviours the paper highlights: the straightforward m-fold
application of Theorem 3.4 would blow up exponentially, while ``Φ_m`` grows
linearly in ``m`` (one alphabet copy and one EXA block per step).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..circuits.exa import exa
from ..logic.bitmodels import (
    _TABLE_MAX_LETTERS,
    BitAlphabet,
    min_hamming_distance_tables,
)
from ..logic.formula import Formula, FormulaLike, as_formula, fresh_names, land
from ..logic.theory import Theory, TheoryLike
from ..revision.registry import get_operator
from ..sat import bit_models, is_satisfiable
from .representation import QUERY, CompactRepresentation


def _full_alphabet(theory: Theory, formulas: Sequence[Formula]) -> List[str]:
    letters = set(theory.variables())
    for formula in formulas:
        letters |= formula.variables()
    return sorted(letters)


def _iterated_ks_bit(
    theory: Theory, formulas: Sequence[Formula]
) -> List[int]:
    """Per-step minimum distances via the bitmask revision chain.

    ``k_i = k_{T *D P¹ ... *D P^{i-1}, P^i}`` over the growing alphabet;
    letters introduced by later formulas are unconstrained on both sides of
    every step, so these values coincide with the SAT-probe route on the
    full-alphabet ``Φ_m`` formula.
    """
    operator = get_operator("dalal")
    ks: List[int] = []
    current = None
    for i, formula in enumerate(formulas):
        if current is None:
            step_alphabet = BitAlphabet(theory.variables() | formula.variables())
            t_bits = bit_models(theory.conjunction(), step_alphabet)
        else:
            step_alphabet = BitAlphabet(
                set(current.alphabet) | formula.variables()
            )
            t_bits = current.bit_model_set.extend_to(step_alphabet)
        p_bits = bit_models(formula, step_alphabet)
        if not t_bits.masks or not p_bits.masks:
            raise ValueError(
                f"step {i + 1}: no reachable model (unsatisfiable input)"
            )
        k, _ = min_hamming_distance_tables(
            t_bits.table(), p_bits.table(), step_alphabet
        )
        ks.append(k)
        if i + 1 < len(formulas):
            current = (
                operator.revise(theory, formula)
                if current is None
                else operator.revise_result(current, formula)
            )
    return ks


def dalal_iterated(
    theory: TheoryLike,
    new_formulas: Sequence[FormulaLike],
    ks: Optional[Sequence[int]] = None,
) -> CompactRepresentation:
    """Theorem 5.1: ``Φ_m``, query-equivalent to ``T *D P¹ *D ... *D P^m``.

    ``ks`` may supply the per-step minimum distances; otherwise they are
    computed by the bitmask engine's Hamming-ball chain when the alphabet
    fits the truth-table encoding, and by probing satisfiability of the
    partial formula with ``EXA(k, Y_i, Y_{i+1})`` for increasing ``k``
    (one SAT call per probe) beyond the cutoff.
    """
    theory = Theory.coerce(theory)
    formulas = [as_formula(f) for f in new_formulas]
    if not formulas:
        raise ValueError("need at least one revising formula")
    alphabet = _full_alphabet(theory, formulas)
    m = len(formulas)
    if ks is None and len(alphabet) <= _TABLE_MAX_LETTERS:
        ks = _iterated_ks_bit(theory, formulas)

    # Fresh alphabet copies Y1..Ym (each one-to-one with X).
    used = list(alphabet)
    copies: List[List[str]] = []
    for i in range(m):
        names = fresh_names(f"y{i + 1}_", len(alphabet), avoid=used)
        copies.append(names)
        used.extend(names)

    # Chain of carriers: Y1 holds the T-model, Y_{i+1} the model after
    # revision i, with X itself as the final carrier Y_{m+1}.
    carriers: List[List[str]] = copies + [list(alphabet)]

    def renamed(formula: Formula, carrier: List[str]) -> Formula:
        return formula.rename(dict(zip(alphabet, carrier)))

    parts: List[Formula] = [renamed(theory.conjunction(), carriers[0])]
    for i, formula in enumerate(formulas):
        parts.append(renamed(formula, carriers[i + 1]))

    k_values: List[int] = []
    partial = land(*parts[:1])
    for i in range(m):
        step_core = land(partial, parts[i + 1])
        if ks is not None:
            k_i = ks[i]
        else:
            k_i = None
            for k in range(len(alphabet) + 1):
                probe = land(
                    step_core,
                    exa(k, carriers[i], carriers[i + 1], prefix=f"_kp{i}_"),
                )
                if is_satisfiable(probe):
                    k_i = k
                    break
            if k_i is None:
                raise ValueError(f"step {i + 1}: no reachable model (unsatisfiable input)")
        k_values.append(k_i)
        partial = land(
            step_core,
            exa(k_i, carriers[i], carriers[i + 1], prefix=f"_exa{i}_"),
        )

    return CompactRepresentation(
        partial,
        query_alphabet=alphabet,
        equivalence=QUERY,
        operator="dalal",
        metadata={"ks": tuple(k_values), "steps": m},
    )


def omegas_iterated(
    theory: TheoryLike, new_formulas: Sequence[FormulaLike]
) -> List[FrozenSet[str]]:
    """The per-step ``Ω_i`` of Weber's iterated revision (ground truth).

    ``Ω_i`` is computed against the *result of the previous i-1 revisions*
    by bitmask model enumeration over the growing alphabet; previous
    results are carried as packed masks and lifted with the shifted
    cross-product, never round-tripping through frozensets.
    """
    from ..revision.distances import omega_mask

    operator = get_operator("weber")
    theory = Theory.coerce(theory)
    formulas = [as_formula(f) for f in new_formulas]
    omegas: List[FrozenSet[str]] = []
    current = None
    for i, formula in enumerate(formulas):
        if current is None:
            step_alphabet = BitAlphabet(theory.variables() | formula.variables())
            t_bits = bit_models(theory.conjunction(), step_alphabet)
        else:
            step_alphabet = BitAlphabet(
                set(current.alphabet) | formula.variables()
            )
            t_bits = current.bit_model_set.extend_to(step_alphabet)
        p_bits = bit_models(formula, step_alphabet)
        if not t_bits.masks or not p_bits.masks:
            raise ValueError(f"step {i + 1}: T or P unsatisfiable, Ω undefined")
        omegas.append(step_alphabet.set_of(omega_mask(t_bits.masks, p_bits.masks)))
        current = (
            operator.revise(theory, formula)
            if current is None
            else operator.revise_result(current, formula)
        )
    return omegas


def weber_iterated(
    theory: TheoryLike,
    new_formulas: Sequence[FormulaLike],
    omegas: Optional[Sequence[Iterable[str]]] = None,
) -> CompactRepresentation:
    """Formula (10): query-equivalent to ``T *Web P¹ *Web ... *Web P^m``.

    Substitutions are applied in left-to-right order: the knowledge base and
    every formula ``P^j`` with ``j < i`` have their ``Ω_i`` letters renamed
    to the fresh copy ``Z_i`` — Weber's "forgetting" made syntactic.
    """
    theory = Theory.coerce(theory)
    formulas = [as_formula(f) for f in new_formulas]
    if not formulas:
        raise ValueError("need at least one revising formula")
    alphabet = _full_alphabet(theory, formulas)
    omega_list = [
        sorted(set(o))
        for o in (omegas_iterated(theory, formulas) if omegas is None else omegas)
    ]
    if len(omega_list) != len(formulas):
        raise ValueError("need one Ω per revision step")

    used = list(alphabet)
    z_copies: List[List[str]] = []
    for i, omega_letters in enumerate(omega_list):
        names = fresh_names(f"z{i + 1}_", len(omega_letters), avoid=used)
        z_copies.append(names)
        used.extend(names)

    # Conjuncts: T gets substitutions for steps 1..m, P^i for steps i+1..m.
    conjuncts: List[Formula] = []
    pieces: List[Formula] = [theory.conjunction()] + formulas
    for index, piece in enumerate(pieces):
        current = piece
        for step in range(index, len(formulas)):
            mapping = dict(zip(omega_list[step], z_copies[step]))
            current = current.rename(mapping)
        conjuncts.append(current)

    return CompactRepresentation(
        land(*conjuncts),
        query_alphabet=alphabet,
        equivalence=QUERY,
        operator="weber",
        metadata={
            "omegas": tuple(tuple(o) for o in omega_list),
            "steps": len(formulas),
        },
    )
