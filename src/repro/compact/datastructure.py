"""Generic data-structure representations of revised knowledge bases
(Section 7, Definition 7.1).

Definition 7.1 relaxes "propositional formula" to any data structure ``D``
with a polynomial-time ``ASK(D, M)`` algorithm deciding ``M |= T * P``;
Theorem 7.1 shows the logical-non-compactability results survive the
relaxation.  This module provides the executable counterpart:

* :class:`DataStructureRepresentation` — the ``(D, ASK)`` pair interface;
* :class:`BddRepresentation` — an ROBDD-backed instance: ``ASK`` walks one
  path (linear time), size is the node count;
* :func:`bdd_of_revision` — compile the ground-truth result of any operator
  into a :class:`BddRepresentation`.

The E12 ablation benchmark measures ROBDD sizes on the Theorem 3.6 family:
by Theorem 7.1 *no* polynomial-size data structure exists for
``T_n *D P_n`` (unless NP ⊆ P/poly), and the measured node counts grow with
the family accordingly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from ..bdd.robdd import Bdd
from ..logic.formula import Formula
from ..revision.base import RevisionResult


class DataStructureRepresentation(ABC):
    """Definition 7.1: a data structure plus its ``ASK`` algorithm."""

    @abstractmethod
    def ask(self, model: Iterable[str]) -> bool:
        """Polynomial-time model checking ``M |= T * P``."""

    @abstractmethod
    def size(self) -> int:
        """``|D|`` — the size bound of Definition 7.1(1)."""


class BddRepresentation(DataStructureRepresentation):
    """ROBDD-backed representation of a revised knowledge base."""

    def __init__(self, manager: Bdd, root: int, operator: str) -> None:
        self.manager = manager
        self.root = root
        self.operator = operator

    def ask(self, model: Iterable[str]) -> bool:
        """One root-to-terminal walk — linear in the variable order."""
        return self.manager.evaluate(self.root, frozenset(model))

    def size(self) -> int:
        """Reachable node count — the standard BDD size measure."""
        return self.manager.node_count(self.root)

    def count_models(self) -> int:
        return self.manager.count_models(self.root)


def bdd_of_revision(
    result: RevisionResult, order: Sequence[str] | None = None
) -> BddRepresentation:
    """Compile a ground-truth revision result into an ROBDD.

    The result's models are OR-ed in as cubes; the ROBDD reduces shared
    structure automatically, so the node count is a *canonical* (per
    variable order) measure of the result's representational complexity —
    exactly the kind of "clever storage scheme" Winslett conjectured would
    not escape the blow-up.
    """
    names = list(order) if order is not None else list(result.alphabet)
    if set(names) != set(result.alphabet):
        raise ValueError("order must cover exactly the result alphabet")
    manager = Bdd(names)
    root = manager.from_formula(result.formula())
    return BddRepresentation(manager, root, result.operator_name)


def bdd_of_formula(
    formula: Formula, order: Sequence[str] | None = None
) -> "BddRepresentation":
    """Compile an arbitrary formula (e.g. a compact representation)."""
    names = list(order) if order is not None else sorted(formula.variables())
    manager = Bdd(names)
    root = manager.from_formula(formula)
    return BddRepresentation(manager, root, "formula")
