"""Compact representations of revised knowledge bases (the paper's
positive results).

Single revision, unbounded ``|P|`` (query equivalence — Table 3):

* :func:`dalal_compact` — Theorem 3.4
* :func:`weber_compact` — Theorem 3.5
* :func:`widtio_compact` — trivial

Single revision, bounded ``|P|`` (logical equivalence — Table 3):

* :data:`BOUNDED_CONSTRUCTIONS` — formulas (5)–(9) and Corollary 4.4

Iterated revision (query equivalence — Table 4):

* :func:`dalal_iterated` — Theorem 5.1 (``Φ_m``)
* :func:`weber_iterated` — formula (10)
* :func:`bounded_iterated` — formulas (12)–(16) for Winslett / Borgida /
  Forbus / Satoh (bounded ``|P^i|``)
* :func:`widtio_iterated`
"""

from .bounded import (
    BOUNDED_CONSTRUCTIONS,
    borgida_bounded,
    dalal_bounded,
    delta_exact,
    forbus_bounded,
    satoh_bounded,
    weber_bounded,
    winslett_bounded,
)
from .dalal import dalal_compact, minimum_distance
from .iterated import dalal_iterated, omegas_iterated, weber_iterated
from .qbf import (
    borgida_bounded_query,
    bounded_iterated,
    f_subset,
    forbus_bounded_query,
    satoh_bounded_query,
    winslett_bounded_query,
)
from .representation import (
    LOGICAL,
    QUERY,
    CompactRepresentation,
    is_logically_equivalent_to,
    is_query_equivalent_to,
)
from .weber import omega_exact, weber_compact
from .widtio import widtio_compact, widtio_iterated

__all__ = [
    "BOUNDED_CONSTRUCTIONS",
    "CompactRepresentation",
    "LOGICAL",
    "QUERY",
    "borgida_bounded",
    "borgida_bounded_query",
    "bounded_iterated",
    "dalal_bounded",
    "dalal_compact",
    "dalal_iterated",
    "delta_exact",
    "f_subset",
    "forbus_bounded",
    "forbus_bounded_query",
    "is_logically_equivalent_to",
    "is_query_equivalent_to",
    "minimum_distance",
    "omega_exact",
    "omegas_iterated",
    "satoh_bounded",
    "satoh_bounded_query",
    "weber_bounded",
    "weber_compact",
    "weber_iterated",
    "widtio_compact",
    "widtio_iterated",
    "winslett_bounded",
    "winslett_bounded_query",
]
