"""Weber's query-compact representation (Theorem 3.5).

``T *Web P`` is query-equivalent to ``T[Ω/Z] ∧ P`` where
``Ω = ∪ δ(T, P)`` is the set of letters occurring in some inclusion-minimal
difference between a model of ``T`` and a model of ``P``, and ``Z`` is a
fresh copy of ``Ω``.  The representation "increases the size of T only
by — at most — the length of P" (paper, end of Section 3.1): it is *linear*.

Computing ``Ω`` itself is expensive (that does not affect the *size* claim,
which is the paper's subject).  Two routes are provided:

* :func:`omega_exact` — by model enumeration (exact; small alphabets);
* passing a precomputed ``omega`` to :func:`weber_compact`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from ..logic.bitmodels import BitAlphabet
from ..logic.formula import Formula, FormulaLike, as_formula, fresh_names, land
from ..logic.theory import Theory, TheoryLike
from ..sat import bit_models
from .representation import QUERY, CompactRepresentation


def omega_exact(theory: TheoryLike, new_formula: FormulaLike) -> FrozenSet[str]:
    """``Ω = ∪ δ(T,P)`` by full model enumeration over ``V(T) ∪ V(P)``.

    Enumeration and the minimal-difference computation both run on the
    bitmask engine — the batched translate-union kernels at sharded
    sizes, the density-proportional sparse pair kernels past the shard
    cutoff when the model counts fit the sparse budget: ``Ω`` is the OR
    of the global minimal XOR differences, unpacked to letters only at
    the boundary.
    """
    from ..revision.model_based import delta_bits

    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    alphabet = BitAlphabet.coerce(theory.variables() | formula.variables())
    t_bits = bit_models(theory.conjunction(), alphabet)
    p_bits = bit_models(formula, alphabet)
    if not t_bits or not p_bits:
        raise ValueError("T or P is unsatisfiable: Ω undefined")
    letters = 0
    for diff in delta_bits(t_bits, p_bits):
        letters |= diff
    return alphabet.set_of(letters)


def weber_compact(
    theory: TheoryLike,
    new_formula: FormulaLike,
    omega: Optional[Iterable[str]] = None,
) -> CompactRepresentation:
    """Theorem 3.5: the query-equivalent representation ``T[Ω/Z] ∧ P``."""
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    t_formula = theory.conjunction()
    alphabet = sorted(t_formula.variables() | formula.variables())
    omega_letters = sorted(
        omega_exact(theory, formula) if omega is None else set(omega)
    )
    z_names = fresh_names("z_", len(omega_letters), avoid=alphabet)
    renamed_t = t_formula.rename(dict(zip(omega_letters, z_names)))
    representation = land(renamed_t, formula)
    return CompactRepresentation(
        representation,
        query_alphabet=alphabet,
        equivalence=QUERY,
        operator="weber",
        metadata={
            "omega": tuple(omega_letters),
            "z_names": tuple(z_names),
        },
    )
