"""Compact representations of revised knowledge bases.

A :class:`CompactRepresentation` packages the propositional formula ``T'``
produced by one of the paper's positive constructions, together with the
alphabet over which it is equivalent to ``T * P`` and the equivalence
criterion it satisfies:

* ``"logical"`` — criterion (2): ``T' ≡ T * P`` (same models, same letters);
* ``"query"``   — criterion (1): same theorems over the query alphabet
  (``T'`` may use new letters).

The verification helpers cross-check a representation against the
ground-truth :class:`~repro.revision.base.RevisionResult` by model
enumeration — this is how every YES cell of Tables 3 and 4 is certified in
the test suite and the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..logic.bitmodels import BitModelSet
from ..logic.formula import Formula, FormulaLike, as_formula
from ..revision.base import RevisionResult
from ..sat import bit_models
from ..sat import entails as sat_entails
from ..sat import models as sat_models

LOGICAL = "logical"
QUERY = "query"


class CompactRepresentation:
    """A propositional representation of a revised knowledge base."""

    def __init__(
        self,
        formula: Formula,
        query_alphabet: Iterable[str],
        equivalence: str,
        operator: str,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        if equivalence not in (LOGICAL, QUERY):
            raise ValueError("equivalence must be 'logical' or 'query'")
        self.formula = formula
        self.query_alphabet: Tuple[str, ...] = tuple(sorted(set(query_alphabet)))
        self.equivalence = equivalence
        self.operator = operator
        self.metadata: Dict[str, object] = dict(metadata or {})
        if equivalence == LOGICAL:
            extra = formula.variables() - set(self.query_alphabet)
            if extra:
                raise ValueError(
                    f"logical representation may not use new letters {sorted(extra)}"
                )

    # -- size measures -----------------------------------------------------------

    def size(self) -> int:
        """The paper's ``|T'|`` (variable occurrences)."""
        return self.formula.size()

    def new_letter_count(self) -> int:
        """How many letters beyond the query alphabet the formula uses."""
        return len(self.formula.variables() - set(self.query_alphabet))

    # -- reasoning ---------------------------------------------------------------

    def entails(self, query: FormulaLike) -> bool:
        """``T' |= Q`` for a query over the query alphabet.

        By query equivalence this coincides with ``T * P |= Q`` — the
        two-subtask query-answering pipeline of the paper's introduction.
        """
        formula = as_formula(query)
        extra = formula.variables() - set(self.query_alphabet)
        if extra:
            raise ValueError(f"query letters {sorted(extra)} outside query alphabet")
        return sat_entails(self.formula, formula)

    def projected_models(self) -> FrozenSet[FrozenSet[str]]:
        """Models of ``T'`` projected onto the query alphabet."""
        return frozenset(sat_models(self.formula, self.query_alphabet))

    def projected_bit_models(self) -> BitModelSet:
        """Models of ``T'`` projected onto the query alphabet, as masks.

        The engine-level route used by the certification helpers: when the
        representation introduces no new letters the projection is one
        bit-parallel truth-table sweep; otherwise the SAT enumerator
        projects away the fresh letters.
        """
        return bit_models(self.formula, self.query_alphabet)

    def __repr__(self) -> str:
        return (
            f"CompactRepresentation(operator={self.operator!r}, "
            f"equivalence={self.equivalence!r}, size={self.size()}, "
            f"new_letters={self.new_letter_count()})"
        )


def is_query_equivalent_to(
    representation: CompactRepresentation, ground_truth: RevisionResult
) -> bool:
    """Certify criterion (1) against the ground-truth model set.

    Compared in mask form: both sides range over the same sorted alphabet,
    so equality of the packed model sets is equality of the model sets.
    """
    if set(representation.query_alphabet) != set(ground_truth.alphabet):
        return False
    return (
        representation.projected_bit_models().masks
        == ground_truth.bit_model_set.masks
    )


def is_logically_equivalent_to(
    representation: CompactRepresentation, ground_truth: RevisionResult
) -> bool:
    """Certify criterion (2): same alphabet, same models, no new letters."""
    if representation.new_letter_count() != 0:
        return False
    return is_query_equivalent_to(representation, ground_truth)
