"""Dalal's query-compact representation (Theorem 3.4).

``T *D P`` is query-equivalent to::

    T[X/Y] ∧ P ∧ EXA(k, X, Y, W)

where ``X`` is the alphabet of ``T`` and ``P``, ``Y`` a fresh copy of ``X``
holding the chosen model of ``T``, ``W`` the circuit wires of the exact-
Hamming-distance formula, and ``k = k_{T,P}`` the minimum distance between
models of ``T`` and models of ``P``.

The minimum distance is computed *effectively* (the "effective procedures"
the paper promises for its compactability results): ``k`` is the least value
for which ``T[X/Y] ∧ P ∧ EXA(k, X, Y, W)`` is satisfiable — each probe is
one SAT call on a polynomial-size formula.  Below the truth-table cutoff of
the bitmask engine a faster route is taken: both formulas compile to
``2^n``-bit model tables and ``k`` falls out of a Hamming-ball expansion
(:func:`repro.logic.bitmodels.min_hamming_distance_tables`); the SAT-probe
route remains the general-alphabet fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.exa import exa
from ..logic import shards as _shards
from ..logic.bitmodels import (
    BitAlphabet,
    min_hamming_distance_tables,
    truth_table,
)
from ..logic.shards import ShardedTable
from ..logic.formula import Formula, FormulaLike, as_formula, fresh_names, land
from ..logic.theory import Theory, TheoryLike
from ..sat import is_satisfiable
from .representation import QUERY, CompactRepresentation


def _prepare(theory: TheoryLike, new_formula: FormulaLike) -> Tuple[Formula, Formula, List[str]]:
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    t_formula = theory.conjunction()
    alphabet = sorted(t_formula.variables() | formula.variables())
    return t_formula, formula, alphabet


def minimum_distance(
    theory: TheoryLike, new_formula: FormulaLike
) -> int:
    """``k_{T,P}`` via SAT probes on the Theorem 3.4 formula.

    Raises ``ValueError`` when ``T`` or ``P`` is unsatisfiable (the paper
    sets those cases aside; see Section 2.2.2).
    """
    t_formula, p_formula, alphabet = _prepare(theory, new_formula)
    level = _shards.tier(len(alphabet))
    if level == "table":
        bit_alphabet = BitAlphabet.coerce(alphabet)
        t_table = truth_table(t_formula, bit_alphabet)
        p_table = truth_table(p_formula, bit_alphabet)
        if not t_table or not p_table:
            raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")
        k, _ = min_hamming_distance_tables(t_table, p_table, bit_alphabet)
        return k
    if level == "sharded":
        bit_alphabet = BitAlphabet.coerce(alphabet)
        t_sharded = ShardedTable.from_formula(t_formula, bit_alphabet)
        p_sharded = ShardedTable.from_formula(p_formula, bit_alphabet)
        if not t_sharded.any() or not p_sharded.any():
            raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")
        k, _ = t_sharded.min_hamming(p_sharded)
        return k
    y_names = fresh_names("y_", len(alphabet), avoid=alphabet)
    renamed_t = t_formula.rename(dict(zip(alphabet, y_names)))
    base = land(renamed_t, p_formula)
    for k in range(len(alphabet) + 1):
        probe = land(base, exa(k, alphabet, y_names, prefix="_kprobe"))
        if is_satisfiable(probe):
            return k
    raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")


def dalal_compact(
    theory: TheoryLike,
    new_formula: FormulaLike,
    k: Optional[int] = None,
) -> CompactRepresentation:
    """Theorem 3.4: the query-equivalent representation of ``T *D P``.

    ``k`` may be supplied when already known (e.g. during iterated
    revision); otherwise it is computed by :func:`minimum_distance`.
    """
    t_formula, p_formula, alphabet = _prepare(theory, new_formula)
    if k is None:
        k = minimum_distance(t_formula, p_formula)
    y_names = fresh_names("y_", len(alphabet), avoid=alphabet)
    renamed_t = t_formula.rename(dict(zip(alphabet, y_names)))
    distance = exa(k, alphabet, y_names, prefix="_exa")
    representation = land(renamed_t, p_formula, distance)
    return CompactRepresentation(
        representation,
        query_alphabet=alphabet,
        equivalence=QUERY,
        operator="dalal",
        metadata={"k": k, "y_names": tuple(y_names)},
    )
