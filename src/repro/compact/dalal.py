"""Dalal's query-compact representation (Theorem 3.4).

``T *D P`` is query-equivalent to::

    T[X/Y] ∧ P ∧ EXA(k, X, Y, W)

where ``X`` is the alphabet of ``T`` and ``P``, ``Y`` a fresh copy of ``X``
holding the chosen model of ``T``, ``W`` the circuit wires of the exact-
Hamming-distance formula, and ``k = k_{T,P}`` the minimum distance between
models of ``T`` and models of ``P``.

The minimum distance is computed *effectively* (the "effective procedures"
the paper promises for its compactability results): ``k`` is the least value
for which ``T[X/Y] ∧ P ∧ EXA(k, X, Y, W)`` is satisfiable — each probe is
one SAT call on a polynomial-size formula.  Below the truth-table cutoffs
of the bitmask engine a faster route is taken: both formulas compile to
``2^n``-bit model tables (big-int or sharded bitplane by alphabet size)
and ``k`` falls out of a Hamming-ball expansion
(:func:`repro.logic.bitmodels.min_hamming_distance_tables`).  Past the
shard cutoff, bounded-density pairs take the sparse tier instead —
enumerate both model sets, then one blocked XOR/popcount pair sweep
(:meth:`repro.logic.sparse.SparseModelSet.min_distance`); the SAT-probe
route remains the general-alphabet, unbounded-density fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.exa import exa
from ..logic import shards as _shards
from ..logic.bitmodels import (
    BitAlphabet,
    min_hamming_distance_tables,
    truth_table,
)
from ..logic.shards import ShardedTable
from ..logic.formula import Formula, FormulaLike, as_formula, fresh_names, land
from ..logic.theory import Theory, TheoryLike
from ..sat import bit_models, is_satisfiable, model_count_bound
from .representation import QUERY, CompactRepresentation


def _prepare(theory: TheoryLike, new_formula: FormulaLike) -> Tuple[Formula, Formula, List[str]]:
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    t_formula = theory.conjunction()
    alphabet = sorted(t_formula.variables() | formula.variables())
    return t_formula, formula, alphabet


def minimum_distance(
    theory: TheoryLike, new_formula: FormulaLike
) -> int:
    """``k_{T,P}`` via SAT probes on the Theorem 3.4 formula.

    Raises ``ValueError`` when ``T`` or ``P`` is unsatisfiable (the paper
    sets those cases aside; see Section 2.2.2).
    """
    t_formula, p_formula, alphabet = _prepare(theory, new_formula)
    level = _shards.tier(len(alphabet))
    if level == "table":
        bit_alphabet = BitAlphabet.coerce(alphabet)
        t_table = truth_table(t_formula, bit_alphabet)
        p_table = truth_table(p_formula, bit_alphabet)
        if not t_table or not p_table:
            raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")
        k, _ = min_hamming_distance_tables(t_table, p_table, bit_alphabet)
        return k
    if level == "sharded":
        bit_alphabet = BitAlphabet.coerce(alphabet)
        t_sharded = ShardedTable.from_formula(t_formula, bit_alphabet)
        p_sharded = ShardedTable.from_formula(p_formula, bit_alphabet)
        if not t_sharded.any() or not p_sharded.any():
            raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")
        k, _ = t_sharded.min_hamming(p_sharded)
        return k
    # Past the shard cutoff: when the cheap structural CNF bound says both
    # model sets fit the sparse budget — probe=False: the SAT-count probe
    # would cost up to budget+1 blocking-clause solves just to say "no"
    # before the EXA route, and a "yes" would re-enumerate via bit_models
    # anyway — enumerate them and take the minimum over the blocked
    # XOR/popcount pair sweep: k falls out density-proportionally, with no
    # EXA circuit and no 2^n table.  Eligibility is tier()'s call, the one
    # decision point the engine layers share.
    budget = _shards.SPARSE_MAX_MODELS
    bound_t = model_count_bound(t_formula, alphabet, budget, probe=False)
    bound_p = (
        model_count_bound(p_formula, alphabet, budget, probe=False)
        if bound_t is not None else None
    )
    if bound_p is not None and _shards.tier(
        len(alphabet), max(bound_t, bound_p)
    ) == "sparse":
        t_bits = bit_models(t_formula, alphabet)
        p_bits = bit_models(p_formula, alphabet)
        if not t_bits or not p_bits:
            raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")
        return t_bits.sparse().min_distance(p_bits.sparse())
    y_names = fresh_names("y_", len(alphabet), avoid=alphabet)
    renamed_t = t_formula.rename(dict(zip(alphabet, y_names)))
    base = land(renamed_t, p_formula)
    for k in range(len(alphabet) + 1):
        probe = land(base, exa(k, alphabet, y_names, prefix="_kprobe"))
        if is_satisfiable(probe):
            return k
    raise ValueError("T or P is unsatisfiable: k_{T,P} undefined")


def dalal_compact(
    theory: TheoryLike,
    new_formula: FormulaLike,
    k: Optional[int] = None,
) -> CompactRepresentation:
    """Theorem 3.4: the query-equivalent representation of ``T *D P``.

    ``k`` may be supplied when already known (e.g. during iterated
    revision); otherwise it is computed by :func:`minimum_distance`.
    """
    t_formula, p_formula, alphabet = _prepare(theory, new_formula)
    if k is None:
        k = minimum_distance(t_formula, p_formula)
    y_names = fresh_names("y_", len(alphabet), avoid=alphabet)
    renamed_t = t_formula.rename(dict(zip(alphabet, y_names)))
    distance = exa(k, alphabet, y_names, prefix="_exa")
    representation = land(renamed_t, p_formula, distance)
    return CompactRepresentation(
        representation,
        query_alphabet=alphabet,
        equivalence=QUERY,
        operator="dalal",
        metadata={"k": k, "y_names": tuple(y_names)},
    )
