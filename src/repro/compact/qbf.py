"""Bounded-|P| *iterable* query-compact constructions — Section 6,
formulas (12)–(16).

The Section 4 formulas (5)–(9) are logically equivalent but explode when
iterated (each step multiplies the size).  Section 6 therefore builds
*query*-equivalent representations that add a fresh witness copy ``Y_i`` of
``V(P^i)`` per step and encode minimality as a universally quantified
condition over ``Z`` (candidate models of ``P``); the universal quantifier
is then expanded into a conjunction over the (constantly many, since
``|P| <= k``) assignments — Theorem 6.3.

Schemata (paper notation):

* ``F_P(S)   = P[V(P)/S]``
* ``F_⊆(S1,S2,S3,S4) = ⋀_j ((s1_j ≢ s2_j) → (s3_j ≢ s4_j))`` — "where S1,S2
  differ is a subset of where S3,S4 differ".

Implemented steps:

* :func:`winslett_step` — formula (12); iterated via formula (16);
* :func:`borgida_step` — ``CURRENT ∧ P`` when consistent, else (12);
* :func:`forbus_step` — formula (14), with the ``DIST(·,·,W) < DIST(·,·,W)``
  comparison realised by the counting circuits of :mod:`repro.circuits`;
* :func:`satoh_step` — formula (13).

Reproduction notes:

* For Winslett/Borgida/Forbus the quantified body never mentions ``T``, so
  each step adds only ``O(2^k · poly(k))`` — total size linear in ``m`` as
  Theorem 6.1 states.
* Formula (13) for Satoh, transcribed literally, is *incorrect*: its
  ``T[V(P)/W]`` copy shares the non-``V(P)`` letters with the main model,
  which blinds the global comparison (see :func:`satoh_step` for the
  counterexample).  The corrected encoding replaces the in-formula copy by
  an offline-precomputed feasibility bit per ``W`` assignment — which as a
  bonus removes ``T`` from the quantified body, so iterated Satoh also
  grows linearly per step, matching Theorem 6.2's polynomial-in-``m``
  claim.  ``EXPERIMENTS.md`` records both points.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuits.builder import CircuitBuilder
from ..logic import bitmodels as _bitmodels
from ..logic.bitmodels import (
    BitAlphabet,
    exists_table,
    truth_table,
)
from ..logic.formula import (
    FALSE,
    TRUE,
    Formula,
    FormulaLike,
    Var,
    as_formula,
    fresh_names,
    implies,
    land,
    lnot,
    lor,
    xor,
)
from ..logic.interpretation import subsets
from ..logic.theory import Theory, TheoryLike
from ..sat import is_satisfiable
from .representation import QUERY, CompactRepresentation


def f_subset(
    s1: Sequence[Formula],
    s2: Sequence[Formula],
    s3: Sequence[Formula],
    s4: Sequence[Formula],
) -> Formula:
    """``F_⊆``: positions where s1,s2 differ are among those where s3,s4 do."""
    if not (len(s1) == len(s2) == len(s3) == len(s4)):
        raise ValueError("all four letter vectors must have equal length")
    return land(
        *(
            implies(xor(a, b), xor(c, d))
            for a, b, c, d in zip(s1, s2, s3, s4)
        )
    )


def _constants(assignment: frozenset, names: Sequence[str]) -> List[Formula]:
    """Constant vector for an assignment over ``names``."""
    return [TRUE if name in assignment else FALSE for name in names]


def _p_model_assignments(p_formula: Formula, vp: Sequence[str]):
    """Assignments over ``V(P)`` satisfying ``P`` — the surviving ``F_P(Z)``
    instances after universal expansion (paper: the rest "simplify to ⊤").

    ``P`` compiles once to its truth-table column and each candidate
    assignment is a single bit test, instead of ``2^|V(P)|`` formula
    evaluations; the historical smallest-first iteration order is kept so
    the emitted conjunct order (and hence the built formulas) is unchanged.
    """
    if 0 < len(vp) <= _bitmodels._TABLE_MAX_LETTERS:
        alphabet = BitAlphabet.coerce(vp)
        table = truth_table(p_formula, alphabet)
        for zeta in subsets(vp):
            if table >> alphabet.mask_of(zeta) & 1:
                yield zeta
        return
    for zeta in subsets(vp):
        if p_formula.evaluate(zeta):
            yield zeta


def winslett_step(
    current: Formula, new_formula: FormulaLike, y_names: Sequence[str]
) -> Formula:
    """One application of formula (12)/(16) with ``T := current``.

    ``y_names`` is the fresh copy ``Y`` of ``V(P)`` for this step.
    """
    p_formula = as_formula(new_formula)
    vp = sorted(p_formula.variables())
    if len(y_names) != len(vp):
        raise ValueError("need one fresh Y letter per letter of V(P)")
    v_vars = [Var(name) for name in vp]
    y_vars = [Var(name) for name in y_names]
    core = land(current.rename(dict(zip(vp, y_names))), p_formula)
    conjuncts: List[Formula] = []
    for zeta in _p_model_assignments(p_formula, vp):
        z_consts = _constants(zeta, vp)
        antecedent = f_subset(z_consts, y_vars, y_vars, v_vars)
        consequent = f_subset(v_vars, y_vars, y_vars, z_consts)
        conjuncts.append(implies(antecedent, consequent))
    return land(core, *conjuncts)


def borgida_step(
    current: Formula, new_formula: FormulaLike, y_names: Sequence[str]
) -> Formula:
    """Borgida: ``CURRENT ∧ P`` when consistent (checked by SAT), else (12)."""
    p_formula = as_formula(new_formula)
    conjunction = land(current, p_formula)
    if is_satisfiable(conjunction):
        return conjunction
    return winslett_step(current, p_formula, y_names)


def forbus_step(
    current: Formula,
    new_formula: FormulaLike,
    y_names: Sequence[str],
    wire_prefix: str = "_fd",
) -> Formula:
    """One application of formula (14) with ``T := current``.

    For each surviving ``Z`` assignment ``ζ`` the condition
    ``¬(DIST(ζ,Y) < DIST(V(P),Y))`` is emitted with fresh functionally-
    determined counter wires (``W1``, ``W2`` of the paper).
    """
    p_formula = as_formula(new_formula)
    vp = sorted(p_formula.variables())
    if len(y_names) != len(vp):
        raise ValueError("need one fresh Y letter per letter of V(P)")
    v_vars = [Var(name) for name in vp]
    y_vars = [Var(name) for name in y_names]
    core = land(current.rename(dict(zip(vp, y_names))), p_formula)
    conjuncts: List[Formula] = []
    avoid = set(current.variables()) | set(vp) | set(y_names)
    for index, zeta in enumerate(_p_model_assignments(p_formula, vp)):
        builder = CircuitBuilder(prefix=f"{wire_prefix}{index}_", avoid=avoid)
        # DIST(ζ, Y): bit j true iff ζ_j differs from y_j.
        left_bits = builder.popcount(
            [lnot(y) if name in zeta else y for name, y in zip(vp, y_vars)]
        )
        # DIST(V(P), Y): bit j true iff v_j differs from y_j.
        right_bits = builder.popcount(
            [xor(v, y) for v, y in zip(v_vars, y_vars)]
        )
        strictly_less = builder.less_than(left_bits, right_bits)
        conjuncts.append(land(builder.definitions(), lnot(strictly_less)))
        avoid |= set(builder.wire_names)
    return land(core, *conjuncts)


#: Work bound (table bits x node count) for the one-shot feasibility
#: projection in :func:`satoh_step`; above it the per-assignment SAT probes
#: remain the fallback.
_PROJECTION_BUDGET = 1 << 28


def _feasible_vp_parts(current: Formula, vp: Sequence[str]):
    """The assignments ``w`` over ``V(P)`` with ``∃M |= current : M∩V(P)=w``.

    One truth-table compile plus an existential smoothing of the non-``V(P)``
    letters (:func:`repro.logic.bitmodels.exists_table`) replaces the
    ``2^|V(P)|`` SAT probes of the naive route.  Returns ``None`` when the
    combined alphabet is too large for the table tier — the caller then
    falls back to probing.
    """
    all_letters = sorted(set(current.variables()) | set(vp))
    if len(all_letters) > _bitmodels._TABLE_MAX_LETTERS:
        return None
    if (1 << len(all_letters)) * max(current.node_count(), 1) > _PROJECTION_BUDGET:
        return None
    alphabet = BitAlphabet.coerce(all_letters)
    table = truth_table(current, alphabet)
    vp_set = set(vp)
    table = exists_table(
        table, (n for n in all_letters if n not in vp_set), alphabet
    )
    return {
        zeta
        for zeta in subsets(vp)
        if table >> alphabet.mask_of(zeta) & 1
    }


def satoh_step(
    current: Formula, new_formula: FormulaLike, y_names: Sequence[str]
) -> Formula:
    """One application of formula (13) with ``T := current`` — *corrected*.

    Reproduction finding: the paper's formula (13) places ``T[V(P)/W]``
    inside the universal quantifier, which after expansion evaluates the
    comparison copy of ``T`` on the *main model's* letters outside
    ``V(P)``.  That restricts Satoh's global comparison to T-models
    agreeing with the candidate ``N`` outside ``V(P)`` — too weak.
    Concrete counterexample: ``T = ¬a ∨ d``, ``P = a`` (so
    ``δ(T,P) = {∅}`` and ``T *S P`` has the single model ``{a,d}``), yet the
    literal transcription also admits ``{a}``: the better pair
    ``({a,d}, {a,d})`` has ``d`` true while the candidate has ``d`` false,
    so ``T[a/⊤] = d`` evaluates false and the exclusion never fires.

    The corrected encoding precomputes, for each ``W`` assignment ``w``,
    the *feasibility bit* ``∃M |= T : M∩V(P) = w`` (one offline SAT call —
    legitimate for an offline compilation) and emits the minimality
    conjunct only for feasible ``w``.  Since ``P`` constrains only
    ``V(P)``, a pair ``(M', N')`` with difference inside ``V(P)`` exists
    iff its ``V(P)`` parts ``(w, z)`` are feasible — the conjuncts become
    constant-size, restoring the polynomial-in-``m`` growth Theorem 6.2
    claims for the iterated case.
    """
    p_formula = as_formula(new_formula)
    vp = sorted(p_formula.variables())
    if len(y_names) != len(vp):
        raise ValueError("need one fresh Y letter per letter of V(P)")
    v_vars = [Var(name) for name in vp]
    y_vars = [Var(name) for name in y_names]
    core = land(current.rename(dict(zip(vp, y_names))), p_formula)
    p_models = list(_p_model_assignments(p_formula, vp))
    feasible = _feasible_vp_parts(current, vp)
    conjuncts: List[Formula] = []
    for w_assign in subsets(vp):
        if feasible is not None:
            if w_assign not in feasible:
                continue  # no model of T has this V(P) part
        else:
            pin = land(
                *(Var(n) if n in w_assign else lnot(Var(n)) for n in vp)
            )
            if not is_satisfiable(land(current, pin)):
                continue  # no model of T has this V(P) part: nothing to compare
        w_consts = _constants(w_assign, vp)
        for zeta in p_models:
            z_consts = _constants(zeta, vp)
            antecedent = f_subset(z_consts, w_consts, y_vars, v_vars)
            consequent = f_subset(v_vars, y_vars, w_consts, z_consts)
            conjuncts.append(implies(antecedent, consequent))
    return land(core, *conjuncts)


_STEPS = {
    "winslett": winslett_step,
    "borgida": borgida_step,
    "forbus": forbus_step,
    "satoh": satoh_step,
}


def bounded_iterated(
    operator: str,
    theory: TheoryLike,
    new_formulas: Sequence[FormulaLike],
) -> CompactRepresentation:
    """Formulas (15)/(16) and their Borgida/Forbus/Satoh analogues
    (Theorems 6.1 and 6.2): the query-equivalent iterated representation.

    One fresh ``Y_i`` copy of ``V(P^i)`` is introduced per step; the result
    is query-equivalent to ``T * P¹ * ... * P^m`` over
    ``X = V(T) ∪ ⋃ V(P^i)``.
    """
    if operator not in _STEPS:
        known = ", ".join(sorted(_STEPS))
        raise ValueError(f"no bounded iterated construction for {operator!r} ({known})")
    step = _STEPS[operator]
    theory = Theory.coerce(theory)
    formulas = [as_formula(f) for f in new_formulas]
    if not formulas:
        raise ValueError("need at least one revising formula")
    alphabet = set(theory.variables())
    for formula in formulas:
        alphabet |= formula.variables()
    query_alphabet = sorted(alphabet)

    current = theory.conjunction()
    used = set(query_alphabet)
    y_copies: List[Tuple[str, ...]] = []
    for i, formula in enumerate(formulas):
        vp = sorted(formula.variables())
        y_names = fresh_names(f"w{i + 1}_", len(vp), avoid=used)
        used |= set(y_names)
        if operator == "forbus":
            current = forbus_step(current, formula, y_names, wire_prefix=f"_fd{i + 1}_")
            used |= current.variables()
        else:
            current = step(current, formula, y_names)
        y_copies.append(tuple(y_names))

    return CompactRepresentation(
        current,
        query_alphabet=query_alphabet,
        equivalence=QUERY,
        operator=operator,
        metadata={"steps": len(formulas), "y_copies": tuple(y_copies)},
    )


def winslett_bounded_query(
    theory: TheoryLike, new_formula: FormulaLike
) -> CompactRepresentation:
    """Single-step formula (12) packaged as a representation."""
    return bounded_iterated("winslett", theory, [new_formula])


def satoh_bounded_query(
    theory: TheoryLike, new_formula: FormulaLike
) -> CompactRepresentation:
    """Single-step formula (13) packaged as a representation."""
    return bounded_iterated("satoh", theory, [new_formula])


def forbus_bounded_query(
    theory: TheoryLike, new_formula: FormulaLike
) -> CompactRepresentation:
    """Single-step formula (14) packaged as a representation."""
    return bounded_iterated("forbus", theory, [new_formula])


def borgida_bounded_query(
    theory: TheoryLike, new_formula: FormulaLike
) -> CompactRepresentation:
    """Single-step Borgida variant of formula (12)."""
    return bounded_iterated("borgida", theory, [new_formula])
