"""WIDTIO compaction — trivially logically compactable (Section 3).

``T *Wid P = (∩ W(T,P)) ∪ {P}`` is a sub-theory of ``T`` plus ``P``, so its
size never exceeds ``|T| + |P|``; the first row of Tables 3 and 4 is YES
everywhere.  This module just packages the revised theory's conjunction as a
:class:`~repro.compact.representation.CompactRepresentation`.

The underlying ``W(T, P)`` computation and the certification of the
representation against the ground truth both run on the bitmask engine:
consistency probes over small alphabets are big-int table intersections
(see :func:`repro.revision.formula_based.possible_worlds`) and model-set
comparison happens in mask form.
"""

from __future__ import annotations

from typing import Sequence

from ..logic.formula import FormulaLike, as_formula
from ..logic.theory import Theory, TheoryLike
from ..revision.formula_based import WidtioOperator
from .representation import LOGICAL, CompactRepresentation


def widtio_compact(theory: TheoryLike, new_formula: FormulaLike) -> CompactRepresentation:
    """Logically-equivalent representation of ``T *Wid P`` (size-bounded)."""
    theory = Theory.coerce(theory)
    formula = as_formula(new_formula)
    revised = WidtioOperator().revised_theory(theory, formula)
    alphabet = sorted(theory.variables() | formula.variables())
    return CompactRepresentation(
        revised.conjunction(),
        query_alphabet=alphabet,
        equivalence=LOGICAL,
        operator="widtio",
        metadata={
            "member_count": len(revised),
            "size_bound": theory.size() + formula.size(),
        },
    )


def widtio_iterated(
    theory: TheoryLike, new_formulas: Sequence[FormulaLike]
) -> CompactRepresentation:
    """Iterated WIDTIO: thread the revised theory through the sequence."""
    theory = Theory.coerce(theory)
    operator = WidtioOperator()
    alphabet = set(theory.variables())
    current = theory
    for raw in new_formulas:
        formula = as_formula(raw)
        alphabet |= formula.variables()
        current = operator.revised_theory(current, formula)
    return CompactRepresentation(
        current.conjunction(),
        query_alphabet=sorted(alphabet),
        equivalence=LOGICAL,
        operator="widtio",
        metadata={"member_count": len(current), "steps": len(new_formulas)},
    )
