"""Bounded-|P| compact representations — Section 4 (formulas (5)–(9)).

When the size of the revising formula ``P`` is bounded by a constant, every
model-based operator admits a representation that is *logically equivalent*
(criterion (2): no new letters) and linear in ``|T|``:

* formula (5)  — Winslett:  ``P ∧ ⋁_{S⊆V(P)} (T[S/S̄] ∧ ⋀_{∅≠C⊆S} ¬P[C/C̄])``
* Corollary 4.4 — Borgida:  ``T ∧ P`` when consistent, else formula (5)
* formula (6)  — Forbus:    as (5) with the guard ``|C △ S| < |S|``
* formula (7)  — Satoh:     ``P ∧ ⋁_{S ∈ δ(T,P)} T[S/S̄]``
* formula (8)  — Dalal:     ``P ∧ ⋁_{S⊆V(P), |S| = k_{T,P}} T[S/S̄]``
* formula (9)  — Weber:     ``P ∧ ⋁_{S ⊆ Ω} T[S/S̄]``

``F[S/S̄]`` replaces every letter of ``S`` by its negation
(:meth:`~repro.logic.formula.Formula.negate_letters`); by Proposition 4.2,
``M |= F  iff  M △ S |= F[S/S̄]`` — the disjunct for ``S`` captures exactly
the models of ``P`` at difference ``S`` from some model of ``T``.

All constructions are exponential in ``|V(P)|`` (hence polynomial only in
the bounded case — Table 3's point) and linear in ``|T|`` per disjunct.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..logic.bitmodels import BitAlphabet
from ..logic.formula import Formula, FormulaLike, as_formula, land, lnot, lor
from ..logic.interpretation import subsets
from ..logic.theory import Theory, TheoryLike
from ..sat import bit_models, is_satisfiable
from .dalal import minimum_distance
from .representation import LOGICAL, CompactRepresentation
from .weber import omega_exact


def _prepare(theory: TheoryLike, new_formula: FormulaLike):
    theory = Theory.coerce(theory)
    p_formula = as_formula(new_formula)
    t_formula = theory.conjunction()
    alphabet = sorted(t_formula.variables() | p_formula.variables())
    vp = sorted(p_formula.variables())
    return t_formula, p_formula, alphabet, vp


def _wrap(formula: Formula, alphabet, operator: str, **metadata) -> CompactRepresentation:
    return CompactRepresentation(
        formula,
        query_alphabet=alphabet,
        equivalence=LOGICAL,
        operator=operator,
        metadata=metadata,
    )


def winslett_bounded(theory: TheoryLike, new_formula: FormulaLike) -> CompactRepresentation:
    """Formula (5): logically equivalent to ``T *Win P``; linear in ``|T|``."""
    t_formula, p_formula, alphabet, vp = _prepare(theory, new_formula)
    disjuncts: List[Formula] = []
    for s in subsets(vp):
        blockers = [
            lnot(p_formula.negate_letters(c))
            for c in subsets(sorted(s))
            if c  # C ≠ ∅, C ⊆ S  (equivalently C△S ⊂ S)
        ]
        disjuncts.append(land(t_formula.negate_letters(s), *blockers))
    return _wrap(land(p_formula, lor(*disjuncts)), alphabet, "winslett")


def borgida_bounded(theory: TheoryLike, new_formula: FormulaLike) -> CompactRepresentation:
    """Corollary 4.4: ``T ∧ P`` when consistent, else formula (5)."""
    t_formula, p_formula, alphabet, _ = _prepare(theory, new_formula)
    conjunction = land(t_formula, p_formula)
    if is_satisfiable(conjunction):
        return _wrap(conjunction, alphabet, "borgida", consistent=True)
    inner = winslett_bounded(theory, new_formula)
    return _wrap(inner.formula, alphabet, "borgida", consistent=False)


def forbus_bounded(theory: TheoryLike, new_formula: FormulaLike) -> CompactRepresentation:
    """Formula (6): logically equivalent to ``T *F P``."""
    t_formula, p_formula, alphabet, vp = _prepare(theory, new_formula)
    all_subsets = list(subsets(vp))
    disjuncts: List[Formula] = []
    for s in all_subsets:
        blockers = [
            lnot(p_formula.negate_letters(c))
            for c in all_subsets
            if len(c ^ s) < len(s)
        ]
        disjuncts.append(land(t_formula.negate_letters(s), *blockers))
    return _wrap(land(p_formula, lor(*disjuncts)), alphabet, "forbus")


def delta_exact(theory: TheoryLike, new_formula: FormulaLike) -> List[FrozenSet[str]]:
    """``δ(T, P)`` by model enumeration (used by formula (7)).

    Runs on the model-set engine: both sets compile bit-parallel (big-int
    or sharded tier by alphabet size) and the minimal differences come out
    of the XOR-translation + subset-sum-closure pipeline of
    :func:`repro.revision.model_based.delta_bits` — no per-interpretation
    loop below the mask-tier cutoff.  On the sharded tier the union of
    difference tables goes through the batched
    :func:`repro.logic.shards.translate_union` kernel rather than one
    bitplane pass per model; past the shard cutoff, bounded-density pairs
    run the same pipeline on the sparse tier's pair kernels
    (:func:`repro.logic.sparse.translate_union` + antichain sweep), so
    formula (7) stays effective at 32–64+ letters.
    """
    from ..revision.model_based import delta_bits

    theory = Theory.coerce(theory)
    p_formula = as_formula(new_formula)
    alphabet = BitAlphabet.coerce(theory.variables() | p_formula.variables())
    t_bits = bit_models(theory.conjunction(), alphabet)
    p_bits = bit_models(p_formula, alphabet)
    if not t_bits or not p_bits:
        raise ValueError("T or P is unsatisfiable: δ undefined")
    return [alphabet.set_of(diff) for diff in delta_bits(t_bits, p_bits)]


def satoh_bounded(
    theory: TheoryLike,
    new_formula: FormulaLike,
    delta: Optional[Iterable[FrozenSet[str]]] = None,
) -> CompactRepresentation:
    """Formula (7): ``P ∧ ⋁_{S ∈ δ(T,P)} T[S/S̄]``."""
    t_formula, p_formula, alphabet, _ = _prepare(theory, new_formula)
    differences = list(delta_exact(theory, new_formula) if delta is None else delta)
    disjuncts = [t_formula.negate_letters(s) for s in differences]
    return _wrap(
        land(p_formula, lor(*disjuncts)),
        alphabet,
        "satoh",
        delta=tuple(sorted(tuple(sorted(s)) for s in differences)),
    )


def dalal_bounded(
    theory: TheoryLike,
    new_formula: FormulaLike,
    k: Optional[int] = None,
) -> CompactRepresentation:
    """Formula (8): ``P ∧ ⋁_{S ⊆ V(P), |S| = k_{T,P}} T[S/S̄]``."""
    t_formula, p_formula, alphabet, vp = _prepare(theory, new_formula)
    if k is None:
        k = minimum_distance(theory, new_formula)
    disjuncts = [
        t_formula.negate_letters(s) for s in subsets(vp) if len(s) == k
    ]
    return _wrap(land(p_formula, lor(*disjuncts)), alphabet, "dalal", k=k)


def weber_bounded(
    theory: TheoryLike,
    new_formula: FormulaLike,
    omega: Optional[Iterable[str]] = None,
) -> CompactRepresentation:
    """Formula (9): ``P ∧ ⋁_{S ⊆ Ω} T[S/S̄]``."""
    t_formula, p_formula, alphabet, _ = _prepare(theory, new_formula)
    omega_letters = sorted(
        omega_exact(theory, new_formula) if omega is None else set(omega)
    )
    disjuncts = [t_formula.negate_letters(s) for s in subsets(omega_letters)]
    return _wrap(
        land(p_formula, lor(*disjuncts)),
        alphabet,
        "weber",
        omega=tuple(omega_letters),
    )


#: Dispatch table for the bounded-case logically-equivalent constructions.
BOUNDED_CONSTRUCTIONS = {
    "winslett": winslett_bounded,
    "borgida": borgida_bounded,
    "forbus": forbus_bounded,
    "satoh": satoh_bounded,
    "dalal": dalal_bounded,
    "weber": weber_bounded,
}
