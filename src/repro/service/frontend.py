"""The revision service front-end: admission, dispatch, supervision policy.

:class:`RevisionService` runs an asyncio event loop on a background
thread; every piece of mutable state — queues, worker slots, breakers —
is touched only from that thread, so there are no locks.  Callers on
any thread :meth:`submit` a :class:`repro.service.protocol.Request` and
get a ``concurrent.futures.Future`` resolving to a
:class:`repro.service.protocol.Response`; worker reader threads post
messages into the loop via ``call_soon_threadsafe``.

The robustness policy, end to end:

* **Admission** — a bounded queue (``queue_limit``) with per-KB
  fairness: requests queue per KB and dispatch round-robins across
  KBs, so one hot KB cannot starve the rest.  A full queue (or the
  ``service-queue-full`` fault) sheds with a typed ``shed`` response —
  never a hang.  Past ``degrade_watermark`` queued requests, new
  admissions are marked degraded: their worker budget gets a tight
  ``max_words`` cap, the engine's own tier chain
  (:func:`repro.revision.model_based._tier_attempts`) demotes the
  selection, and the response reports the served tier.
* **Deadlines** — a request's ``deadline`` starts at admission; queue
  wait spends it, the remainder maps onto the worker's
  :class:`repro.runtime.Budget`, and a request that expires while
  queued resolves ``timeout`` without ever occupying a worker.
* **Retry** — a worker death (crash, hang-kill, unresponsive-idle
  kill) requeues its request at the *front* of its KB queue; results
  are bit-identical on any worker (shared store + pure revision), so
  the retry is invisible except in the counters.
* **Breaker** — ``breaker_threshold`` consecutive worker deaths on the
  *same request* mark the KB poisoned: the request resolves
  ``poisoned``, and further requests for that KB are rejected until
  ``breaker_cooldown_s`` passes (then one probe is admitted again).
* **Hedging** — with ``hedge_after_s`` set, a request still running
  past it is raced onto an idle worker; first result wins, the
  straggler's is discarded as stale.
* **Supervision** — idle workers heartbeat; silence kills and
  restarts them with exponential backoff.  Busy workers are silent by
  design and get a hang deadline (request deadline + grace, or
  ``hang_timeout_s``); the ``service-worker-hang`` fault drives this
  path on demand.

Every decision is counted in ``service.*`` metrics (``repro stats``)
and spanned under ``service.admit`` / ``service.dispatch`` /
``service.complete`` when tracing.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro import obs as _obs
from repro.obs import metrics as _metrics
from repro.runtime import faults as _faults

from .protocol import Request, Response
from .supervisor import BUSY, DEAD, IDLE, STARTING, Supervisor, WorkerSlot

#: Serving-side counters (``service.*`` in the registry, dumped by
#: ``repro stats``).  ``queue_depth`` is a live gauge, ``queue_peak`` a
#: high-water mark; everything else counts events.
STATS = _metrics.CounterGroup(
    "service",
    baseline=(
        "admitted",
        "completed",
        "shed",
        "poisoned",
        "poisoned_rejects",
        "retries",
        "worker_deaths",
        "worker_hangs",
        "worker_restarts",
        "idle_worker_kills",
        "hedges",
        "hedge_wins",
        "hedge_losses",
        "degraded",
        "timeouts",
        "breaker_opens",
        "breaker_closes",
        "stale_results",
        "queue_depth",
        "queue_peak",
    ),
)


@dataclass
class ServiceConfig:
    """Tunables of one :class:`RevisionService` (all policy in one bag)."""

    workers: int = 2
    queue_limit: int = 64
    heartbeat_s: float = 0.25
    #: An idle worker silent past ``idle_timeout_factor * heartbeat_s``
    #: is presumed wedged and killed.
    idle_timeout_factor: float = 6.0
    #: Extra wall clock a busy worker gets past its request's deadline
    #: before the supervisor declares it hung.
    hang_grace_s: float = 1.0
    #: Hang deadline for requests *without* a deadline of their own.
    hang_timeout_s: float = 30.0
    #: Race a second worker on requests running past this (None = off).
    hedge_after_s: Optional[float] = None
    #: Consecutive worker deaths on one request before its KB is poisoned.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: Queued-request count past which new admissions degrade (None = off).
    degrade_watermark: Optional[int] = None
    #: The word cap applied to degraded requests' budgets.
    degrade_max_words: int = 1 << 12
    monitor_interval_s: Optional[float] = None

    def monitor_interval(self) -> float:
        if self.monitor_interval_s is not None:
            return self.monitor_interval_s
        return max(0.01, self.heartbeat_s / 2.0)


class _Pending:
    """One admitted request's life on the loop thread."""

    __slots__ = (
        "request", "future", "seq", "enqueued_at", "deadline_at",
        "first_dispatch_at", "attempts", "deaths", "degraded", "hedged",
        "running", "done",
    )

    def __init__(self, request: Request, future, seq: int,
                 now: float) -> None:
        self.request = request
        self.future = future
        self.seq = seq
        self.enqueued_at = now
        self.deadline_at = (
            None if request.deadline is None else now + request.deadline
        )
        self.first_dispatch_at: Optional[float] = None
        self.attempts = 0
        #: Worker deaths while running this request (breaker input).
        self.deaths = 0
        self.degraded = False
        self.hedged = False
        #: Slot indexes currently executing this request (2 when hedged).
        self.running: set = set()
        self.done = False


class RevisionService:
    """The long-lived serving loop — see the module docstring."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 **overrides) -> None:
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._supervisor: Optional[Supervisor] = None
        self._monitor_task = None
        self._closing = False
        self._started = False
        self._seq = itertools.count(1)
        self._by_seq: Dict[int, _Pending] = {}
        self._kb_queues: Dict[str, Deque[_Pending]] = {}
        self._kb_ring: Deque[str] = deque()
        self._queued = 0
        #: KB → monotonic instant its breaker opened.
        self._breakers: Dict[str, float] = {}
        #: Seqs whose hedge lost the race — their late result (or death)
        #: is expected and counted as ``hedge_losses``, not an anomaly.
        self._hedge_stragglers: set = set()

    # -- lifecycle (caller thread) ----------------------------------------

    def start(self) -> "RevisionService":
        if self._started:
            return self
        self._closing = False
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._supervisor = Supervisor(
            workers=self.config.workers,
            heartbeat_s=self.config.heartbeat_s,
            post=self._post,
            backoff_base_s=self.config.backoff_base_s,
            backoff_max_s=self.config.backoff_max_s,
        )
        ready = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            loop.call_soon(ready.set)
            loop.run_forever()

        self._thread = threading.Thread(
            target=_run, daemon=True, name="repro-service-loop"
        )
        self._thread.start()
        ready.wait()
        asyncio.run_coroutine_threadsafe(self._startup(), loop).result()
        self._started = True
        return self

    def stop(self) -> None:
        if not self._started:
            return
        loop = self._loop
        asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result()
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=5.0)
        loop.close()
        self._started = False

    def __enter__(self) -> "RevisionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def submit(self, request: Request):
        """Enqueue *request*; returns a ``concurrent.futures.Future`` of
        the :class:`Response` (thread-safe)."""
        if not self._started:
            raise RuntimeError("service is not running (call start())")
        return asyncio.run_coroutine_threadsafe(
            self._submit(request), self._loop
        )

    def call(self, request: Request,
             timeout: Optional[float] = None) -> Response:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(request).result(timeout)

    def live_worker_pids(self) -> List[int]:
        supervisor = self._supervisor
        return supervisor.live_pids() if supervisor is not None else []

    # -- loop-thread internals --------------------------------------------

    def _post(self, event: tuple) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._on_event, event)
        except RuntimeError:
            pass  # loop already closed during shutdown

    async def _startup(self) -> None:
        self._supervisor.start()
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def _shutdown(self) -> None:
        self._closing = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        for pending in list(self._by_seq.values()):
            self._resolve(pending, Response(
                status="shutdown", kind=pending.request.kind,
                kb=pending.request.kb,
            ))
        self._kb_queues.clear()
        self._kb_ring.clear()
        self._queued = 0
        STATS["queue_depth"] = 0
        self._supervisor.stop()

    async def _submit(self, request: Request) -> Response:
        outcome = self._admit(request)
        if isinstance(outcome, Response):
            return outcome
        return await outcome.future

    # -- admission --------------------------------------------------------

    def _admit(self, request: Request):
        now = time.monotonic()
        with _obs.span("service.admit", kb=request.kb,
                       kind=request.kind) as admit_span:
            if self._closing:
                admit_span.set("outcome", "shutdown")
                return Response(status="shutdown", kind=request.kind,
                                kb=request.kb)
            if (_faults.ACTIVE
                    and _faults.trip("service-queue-full") is not None):
                STATS.inc("shed")
                admit_span.set("outcome", "shed-fault")
                return Response(status="shed", kind=request.kind,
                                kb=request.kb,
                                error="admission queue full (injected)")
            opened_at = self._breakers.get(request.kb)
            if opened_at is not None:
                if now - opened_at < self.config.breaker_cooldown_s:
                    STATS.inc("poisoned_rejects")
                    admit_span.set("outcome", "poisoned")
                    return Response(
                        status="poisoned", kind=request.kind, kb=request.kb,
                        error=f"KB {request.kb!r} poisoned by the circuit "
                              f"breaker (cooldown "
                              f"{self.config.breaker_cooldown_s}s)",
                    )
                # Cooled down: close the breaker and admit this probe.
                del self._breakers[request.kb]
                STATS.inc("breaker_closes")
            if self._queued >= self.config.queue_limit:
                STATS.inc("shed")
                admit_span.set("outcome", "shed")
                return Response(status="shed", kind=request.kind,
                                kb=request.kb,
                                error="admission queue full")
            pending = _Pending(request, self._loop.create_future(),
                               next(self._seq), now)
            watermark = self.config.degrade_watermark
            if watermark is not None and self._queued >= watermark:
                pending.degraded = True
                STATS.inc("degraded")
            self._by_seq[pending.seq] = pending
            self._enqueue(pending, front=False)
            STATS.inc("admitted")
            admit_span.set("outcome", "admitted")
            admit_span.set("queued", self._queued)
        self._dispatch_idle()
        return pending

    def _enqueue(self, pending: _Pending, front: bool) -> None:
        kb = pending.request.kb
        queue = self._kb_queues.get(kb)
        if queue is None:
            queue = self._kb_queues[kb] = deque()
            self._kb_ring.append(kb)
        if front:
            queue.appendleft(pending)
        else:
            queue.append(pending)
        self._queued += 1
        STATS["queue_depth"] = self._queued
        STATS.max_update("queue_peak", self._queued)

    def _next_queued(self) -> Optional[_Pending]:
        """Round-robin across KBs, dropping expired entries as found."""
        # Terminates: every iteration either consumes one queued entry
        # or drops one empty KB from the ring.
        now = time.monotonic()
        while self._kb_ring:
            kb = self._kb_ring[0]
            queue = self._kb_queues.get(kb)
            if not queue:
                self._kb_ring.popleft()
                self._kb_queues.pop(kb, None)
                continue
            pending = queue.popleft()
            self._kb_ring.rotate(-1)
            if not queue:
                self._kb_queues.pop(kb, None)
                try:
                    self._kb_ring.remove(kb)
                except ValueError:
                    pass
            self._queued -= 1
            STATS["queue_depth"] = self._queued
            if pending.done:
                continue
            if pending.deadline_at is not None and now > pending.deadline_at:
                STATS.inc("timeouts")
                self._resolve(pending, Response(
                    status="timeout", kind=pending.request.kind,
                    kb=pending.request.kb,
                    error="deadline expired while queued",
                ))
                continue
            return pending
        return None

    # -- dispatch ---------------------------------------------------------

    def _idle_slot(self) -> Optional[WorkerSlot]:
        for slot in self._supervisor.slots:
            if slot.state == IDLE:
                return slot
        return None

    def _dispatch_idle(self) -> None:
        while True:
            slot = self._idle_slot()
            if slot is None:
                return
            pending = self._next_queued()
            if pending is None:
                return
            self._dispatch(pending, slot, hedge=False)

    def _dispatch(self, pending: _Pending, slot: WorkerSlot,
                  hedge: bool) -> None:
        now = time.monotonic()
        request = pending.request
        remaining = None
        if pending.deadline_at is not None:
            remaining = pending.deadline_at - now
            if remaining <= 0:
                STATS.inc("timeouts")
                self._resolve(pending, Response(
                    status="timeout", kind=request.kind, kb=request.kb,
                    error="deadline expired before dispatch",
                ))
                return
        frame = request.frame()
        frame["deadline"] = remaining
        if pending.degraded:
            cap = self.config.degrade_max_words
            if request.max_words is not None:
                cap = min(cap, request.max_words)
            frame["max_words"] = cap
            frame["degraded"] = True
        fault = None
        if request.fault_once is not None:
            # "crash" / "hang:S", optionally "@K" to doom the first K
            # dispatches (how tests drive the breaker: K deaths on one
            # request).  The registry points below are the CI-facing way.
            directive, sep, count_text = request.fault_once.rpartition("@")
            if sep and count_text.isdigit():
                count = int(count_text)
                fault = directive
                request.fault_once = (
                    f"{directive}@{count - 1}" if count > 1 else None
                )
            else:
                fault, request.fault_once = request.fault_once, None
        elif _faults.ACTIVE:
            param = _faults.trip("service-worker-crash")
            if param is not None:
                fault = "crash"
            else:
                param = _faults.trip("service-worker-hang")
                if param is not None:
                    fault = f"hang:{param}" if param else "hang"
        if fault:
            frame["fault"] = fault
        with _obs.span("service.dispatch", kb=request.kb, seq=pending.seq,
                       worker=slot.index, attempt=pending.attempts + 1,
                       hedge=hedge):
            try:
                slot.conn.send(("req", pending.seq, frame))
            except (OSError, ValueError, BrokenPipeError):
                # The worker died between its last message and this send;
                # put the request back and run the normal death path.
                self._enqueue(pending, front=True)
                self._worker_died(slot, reason="send-failed")
                return
        pending.attempts += 1
        if pending.first_dispatch_at is None:
            pending.first_dispatch_at = now
        pending.running.add(slot.index)
        if hedge:
            pending.hedged = True
            STATS.inc("hedges")
        slot.state = BUSY
        slot.seq = pending.seq
        slot.attempt = pending.attempts
        if remaining is not None:
            slot.hang_deadline = now + remaining + self.config.hang_grace_s
        else:
            slot.hang_deadline = now + self.config.hang_timeout_s

    # -- worker events ----------------------------------------------------

    def _on_event(self, event: tuple) -> None:
        tag = event[0]
        slot = self._supervisor.slots[event[1]]
        generation = event[2]
        if generation != slot.generation:
            return  # a message read under a process that was replaced
        if tag == "eof":
            if slot.state != DEAD:
                self._worker_died(slot, reason="eof")
            return
        message = event[3]
        slot.last_seen = time.monotonic()
        if message[0] == "hb":
            if slot.state == STARTING:
                slot.state = IDLE
                self._dispatch_idle()
            return
        if message[0] == "res":
            _, seq, payload, envelope = message
            if envelope is not None:
                try:
                    _obs.merge_worker(envelope)
                except Exception:
                    pass
            slot.state = IDLE
            slot.seq = None
            slot.hang_deadline = None
            slot.streak = 0
            pending = self._by_seq.get(seq)
            if pending is None or pending.done:
                if seq in self._hedge_stragglers:
                    self._hedge_stragglers.discard(seq)
                    STATS.inc("hedge_losses")
                else:
                    STATS.inc("stale_results")
            else:
                pending.running.discard(slot.index)
                self._complete(pending, payload, slot)
            self._dispatch_idle()

    def _complete(self, pending: _Pending, payload: dict,
                  slot: WorkerSlot) -> None:
        response = Response.from_dict(payload)
        response.attempts = pending.attempts
        response.hedged = pending.hedged
        response.degraded = pending.degraded or response.degraded
        latency = time.monotonic() - pending.enqueued_at
        response.latency_s = latency
        if pending.hedged:
            STATS.inc("hedge_wins")
            if pending.running:
                # The losing copy is still computing somewhere; its late
                # result (or death) should read as a hedge loss.
                self._hedge_stragglers.add(pending.seq)
        STATS.inc("completed")
        _metrics.REGISTRY.observe("service.latency.s", latency)
        with _obs.span("service.complete", kb=response.kb,
                       status=response.status, worker=slot.index,
                       tier=response.engine_tier or "?"):
            pass
        self._resolve(pending, response)

    def _resolve(self, pending: _Pending, response: Response) -> None:
        if pending.done:
            return
        pending.done = True
        self._by_seq.pop(pending.seq, None)
        if response.attempts == 0:
            response.attempts = pending.attempts
        if not pending.future.done():
            pending.future.set_result(response)

    def _worker_died(self, slot: WorkerSlot, reason: str) -> None:
        """One worker's death: account, maybe requeue/poison, restart."""
        busy_seq = slot.seq
        slot.state = DEAD
        slot.seq = None
        slot.hang_deadline = None
        slot.streak += 1
        STATS.inc("worker_deaths")
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        if busy_seq is not None and busy_seq in self._hedge_stragglers:
            self._hedge_stragglers.discard(busy_seq)
            STATS.inc("hedge_losses")
        if busy_seq is not None:
            pending = self._by_seq.get(busy_seq)
            if pending is not None and not pending.done:
                pending.running.discard(slot.index)
                pending.deaths += 1
                if pending.deaths >= self.config.breaker_threshold:
                    self._breakers[pending.request.kb] = time.monotonic()
                    STATS.inc("breaker_opens")
                    STATS.inc("poisoned")
                    self._resolve(pending, Response(
                        status="poisoned", kind=pending.request.kind,
                        kb=pending.request.kb,
                        error=f"{pending.deaths} consecutive worker deaths "
                              f"on this request ({reason})",
                    ))
                elif pending.running:
                    pass  # a hedged copy is still alive; let it answer
                else:
                    STATS.inc("retries")
                    self._enqueue(pending, front=True)
        if self._closing:
            return
        delay = self._supervisor.restart_delay(slot)
        generation = slot.generation
        self._loop.call_later(delay, self._restart, slot, generation)

    def _restart(self, slot: WorkerSlot, generation: int) -> None:
        if self._closing or slot.generation != generation:
            return
        if slot.state != DEAD:
            return
        self._supervisor.spawn(slot)
        STATS.inc("worker_restarts")

    # -- the monitor ------------------------------------------------------

    async def _monitor(self) -> None:
        interval = self.config.monitor_interval()
        idle_limit = (self.config.idle_timeout_factor
                      * self.config.heartbeat_s)
        while not self._closing:
            try:
                await asyncio.sleep(interval)
            except asyncio.CancelledError:
                return
            now = time.monotonic()
            for slot in self._supervisor.slots:
                if (slot.state == BUSY and slot.hang_deadline is not None
                        and now > slot.hang_deadline):
                    STATS.inc("worker_hangs")
                    self._supervisor.kill(slot)
                    self._worker_died(slot, reason="hang")
                elif (slot.state in (IDLE, STARTING)
                        and now - slot.last_seen > idle_limit):
                    STATS.inc("idle_worker_kills")
                    self._supervisor.kill(slot)
                    self._worker_died(slot, reason="unresponsive-idle")
            self._expire_queued(now)
            self._maybe_hedge(now)
            self._dispatch_idle()

    def _expire_queued(self, now: float) -> None:
        for kb in list(self._kb_queues):
            queue = self._kb_queues.get(kb)
            if not queue:
                continue
            keep = deque()
            for pending in queue:
                if (pending.deadline_at is not None
                        and now > pending.deadline_at
                        and not pending.done):
                    STATS.inc("timeouts")
                    self._queued -= 1
                    self._resolve(pending, Response(
                        status="timeout", kind=pending.request.kind,
                        kb=pending.request.kb,
                        error="deadline expired while queued",
                    ))
                else:
                    keep.append(pending)
            if len(keep) != len(queue):
                if keep:
                    self._kb_queues[kb] = keep
                else:
                    self._kb_queues.pop(kb, None)
                    try:
                        self._kb_ring.remove(kb)
                    except ValueError:
                        pass
                STATS["queue_depth"] = self._queued

    def _maybe_hedge(self, now: float) -> None:
        hedge_after = self.config.hedge_after_s
        if hedge_after is None:
            return
        for pending in list(self._by_seq.values()):
            if (pending.done or pending.hedged or not pending.running
                    or pending.first_dispatch_at is None
                    or now - pending.first_dispatch_at < hedge_after):
                continue
            slot = self._idle_slot()
            if slot is None:
                return
            self._dispatch(pending, slot, hedge=True)
