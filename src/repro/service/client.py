"""Thin synchronous client over an in-process :class:`RevisionService`.

The convenience layer the quickstart and the tests speak: build a
:class:`Request`, submit it, wait for the :class:`Response`.  One
client may be shared across threads (submission is thread-safe); the
service does the serialising.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .frontend import RevisionService
from .protocol import Request, Response


class ServiceClient:
    """Revise / query / warm helpers against a running service."""

    def __init__(self, service: RevisionService,
                 timeout: Optional[float] = None) -> None:
        self._service = service
        #: Client-side wait cap (independent of request deadlines).
        self.timeout = timeout

    def call(self, request: Request) -> Response:
        return self._service.call(request, timeout=self.timeout)

    def revise(
        self,
        kb: str,
        theory: Union[str, Sequence[str]],
        updates: Union[str, Sequence[str]],
        query: Optional[str] = None,
        operator: str = "dalal",
        deadline: Optional[float] = None,
        max_models: Optional[int] = None,
        max_words: Optional[int] = None,
        fault_once: Optional[str] = None,
    ) -> Response:
        """``T * P1 * ... * Pm`` (and optionally entailment of *query*)."""
        return self.call(Request(
            kind="revise", kb=kb, theory=theory, updates=updates,
            query=query, operator=operator, deadline=deadline,
            max_models=max_models, max_words=max_words,
            fault_once=fault_once,
        ))

    def query(
        self,
        kb: str,
        theory: Union[str, Sequence[str]],
        updates: Union[str, Sequence[str]],
        query: str,
        operator: str = "dalal",
        deadline: Optional[float] = None,
    ) -> Response:
        """Entailment against the revised KB, without shipping masks."""
        return self.call(Request(
            kind="query", kb=kb, theory=theory, updates=updates,
            query=query, operator=operator, deadline=deadline,
        ))

    def warm(self, kb: str, theory: Union[str, Sequence[str]],
             deadline: Optional[float] = None) -> Response:
        """Precompile (and persist, if a store is active) a KB's carrier."""
        return self.call(Request(kind="warm", kb=kb, theory=theory,
                                 deadline=deadline))

    def ping(self) -> Response:
        return self.call(Request(kind="ping", kb="__ping__"))
