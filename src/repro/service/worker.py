"""The service worker process: one :class:`BatchCache`, one Pipe.

Each worker owns a private :class:`repro.revision.batch.BatchCache`
(chain-prefix memo, carrier LRU) that probes the *shared* artifact
store (``REPRO_STORE``) on compile misses — the PR 8 contract that
makes the front-end's crash retries safe: any worker recomputes any
request to bit-identical masks, and the hot compiles come off disk
instead of SAT.

Protocol (parent → worker over a duplex Pipe)::

    ("req", seq, frame)   # frame = Request.frame() + dispatch extras
    ("stop",)

worker → parent::

    ("hb", pid)                       # on start, then while idle
    ("res", seq, response_dict, envelope)

Heartbeats are sent only from the *idle* wait loop (``conn.poll``
timeout), never from a thread: a worker stuck in a long request goes
silent by design, and the supervisor distinguishes "busy with a
deadline" (hang-killed past the request's deadline + grace) from "idle
and silent" (dead — restart).  The ``fault`` key of a frame carries the
front-end's injection decision: ``"crash"`` dies with ``os._exit(1)``
before any reply, ``"hang[:seconds]"`` sleeps (default far past any
hang deadline) — both before the request executes, so a retried frame
on a fresh worker is immune by construction.

Every request runs inside :func:`repro.obs.worker_capture_begin` /
``worker_capture_end``, shipping metric deltas and buffered span events
back in the response for the front-end to merge — the same envelope
contract :mod:`repro.runtime.pool` uses.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro import obs as _obs
from repro import runtime as _runtime
from repro.logic.formula import as_formula
from repro.logic.theory import Theory
from repro.revision.batch import BatchCache

#: Default hang-fault sleep: far past any realistic hang deadline.
HANG_DEFAULT_S = 3600.0


def _execute(cache: BatchCache, frame: Dict[str, Any]) -> Dict[str, Any]:
    """Run one request frame against the worker's cache.

    Returns a :class:`repro.service.protocol.Response`-shaped dict; the
    front-end fills in the serving-side fields (attempts, hedged,
    latency).  The per-request budget is entered here so ``timeout`` /
    ``budget`` outcomes are typed responses, never worker deaths.
    """
    kind = frame.get("kind", "revise")
    base: Dict[str, Any] = {
        "status": "ok",
        "kind": kind,
        "kb": frame.get("kb", "default"),
        "operator": frame.get("operator"),
        "degraded": bool(frame.get("degraded")),
        "worker_pid": os.getpid(),
    }
    if kind == "ping":
        return base
    budget = _runtime.Budget(
        deadline=frame.get("deadline"),
        max_models=frame.get("max_models"),
        max_words=frame.get("max_words"),
    )
    theory = Theory.coerce(tuple(frame.get("theory") or ()))
    updates = tuple(frame.get("updates") or ())
    operator = frame.get("operator") or "dalal"
    try:
        with budget:
            with _obs.span("service.work", kind=kind,
                           kb=base["kb"], op=operator):
                if kind == "warm":
                    bits = cache.warm(theory)
                    base["model_count"] = bits.count()
                    base["letters"] = bits.alphabet.letters
                    return base
                result = cache.revise_chain(theory, updates, operator)
                base["engine_tier"] = result.engine_tier
                base["model_count"] = result.model_count()
                base["letters"] = result.alphabet
                query = frame.get("query")
                if query is not None:
                    base["entailed"] = result.entails(as_formula(query))
                if kind == "revise":
                    base["masks"] = sorted(result.bit_model_set.iter_masks())
                return base
    except _runtime.EngineTimeout as error:
        base["status"] = "timeout"
        base["error"] = str(error)
    except _runtime.BudgetExceeded as error:
        base["status"] = "budget"
        base["error"] = str(error)
    except Exception as error:  # typed error response, never a death
        base["status"] = "error"
        base["error"] = f"{type(error).__name__}: {error}"
    return base


def worker_main(conn, config: Dict[str, Any]) -> None:
    """Entry point of a worker process (top-level so it spawns too)."""
    heartbeat_s = float(config.get("heartbeat_s", 0.25))
    cache = BatchCache()
    try:
        conn.send(("hb", os.getpid()))
        while True:
            if not conn.poll(heartbeat_s):
                conn.send(("hb", os.getpid()))
                continue
            message = conn.recv()
            if not message or message[0] == "stop":
                break
            _, seq, frame = message
            fault = frame.get("fault")
            if fault:
                name, _, param = fault.partition(":")
                if name == "crash":
                    os._exit(1)
                if name == "hang":
                    time.sleep(float(param) if param else HANG_DEFAULT_S)
            token = _obs.worker_capture_begin()
            try:
                response = _execute(cache, frame)
            finally:
                envelope = _obs.worker_capture_end(token)
            conn.send(("res", seq, response, envelope))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
