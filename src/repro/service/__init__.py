"""``repro.service`` — the resilient revision service.

The serving half of the ROADMAP's revision-as-a-service item: a
supervised pool of worker processes (each owning a
:class:`repro.revision.batch.BatchCache` that probes the shared
artifact store) behind an asyncio front-end with per-request deadlines,
crash retry, straggler hedging, bounded admission with per-KB fairness,
circuit breaking, and graceful tier degradation.  See
:mod:`repro.service.frontend` for the policy story,
:mod:`repro.service.supervisor` for the process mechanics and
:mod:`repro.service.protocol` for the request/response contract.

Quick use::

    from repro.service import RevisionService, ServiceClient

    with RevisionService(workers=2) as service:
        client = ServiceClient(service)
        response = client.revise("kb1", "a & b", ["~a"], query="b")
        assert response.ok and response.entailed

Fault points (``REPRO_FAULTS``): ``service-worker-crash@N``,
``service-worker-hang@N[:S]``, ``service-queue-full@N``.  Counters:
``service.*`` in ``repro stats``.
"""

from .client import ServiceClient
from .frontend import STATS, RevisionService, ServiceConfig
from .protocol import Request, Response

__all__ = [
    "Request",
    "Response",
    "RevisionService",
    "ServiceClient",
    "ServiceConfig",
    "STATS",
]
