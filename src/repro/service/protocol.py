"""Request/response types of the revision service.

The wire unit is deliberately *stringly*: a request names its KB, its
theory and update formulas as parseable text, so the same frame travels
unchanged over a worker :class:`multiprocessing.Pipe`, through the
``repro serve`` JSONL stdin/stdout loop, and through the in-process
:class:`repro.service.ServiceClient` — and a retried frame is
byte-identical to the original, which is what makes retries after a
worker crash safe (revision is a pure function of the frame, and the
workers share one read-only artifact store).

Statuses a caller can see:

``ok``
    the request completed; revise/warm responses carry the result's
    sorted model masks + alphabet letters (the bit-identity contract the
    tests assert), queries carry ``entailed``.
``timeout`` / ``budget``
    the per-request :class:`repro.runtime.Budget` tripped inside the
    worker (deadline wall-clock, or the model/word caps past any
    demotion the engine could offer).
``shed``
    admission control refused the request — the bounded queue was full
    (or the ``service-queue-full`` fault point said to behave as if).
``poisoned``
    the circuit breaker is open for this KB: N consecutive worker
    deaths on the same request; retried no further until the cooldown.
``error``
    the worker raised; ``error`` carries the message.
``shutdown``
    the service stopped while the request was still queued.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Request kinds the worker understands.
KINDS = ("revise", "query", "warm", "ping")

#: Terminal response statuses.
STATUSES = (
    "ok", "timeout", "budget", "shed", "poisoned", "error", "shutdown",
)


@dataclass
class Request:
    """One service request: a KB, its update chain, an optional query.

    ``kb`` is the admission/fairness/breaker key — requests for the same
    KB queue together and trip the same circuit breaker.  ``theory`` and
    ``updates`` are formula strings (or anything
    :func:`repro.logic.formula.as_formula` coerces); ``deadline`` is
    seconds granted from admission, mapped onto the worker's
    :class:`repro.runtime.Budget` together with ``max_models`` /
    ``max_words``.  ``fault_once`` is the per-request test hook: a
    ``"crash"`` or ``"hang[:seconds]"`` directive consumed at the first
    dispatch of this request — append ``"@K"`` (e.g. ``"crash@3"``) to
    doom the first K dispatches, which is how tests drive the circuit
    breaker (the registry-level ``service-worker-*`` points are the
    CI-facing equivalent).
    """

    kind: str = "revise"
    kb: str = "default"
    theory: Optional[Sequence[str]] = None
    updates: Tuple[str, ...] = ()
    query: Optional[str] = None
    operator: str = "dalal"
    deadline: Optional[float] = None
    max_models: Optional[int] = None
    max_words: Optional[int] = None
    fault_once: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r} (kinds: {KINDS})"
            )
        if isinstance(self.theory, str):
            self.theory = (self.theory,)
        elif self.theory is not None:
            self.theory = tuple(self.theory)
        if isinstance(self.updates, str):
            self.updates = (self.updates,)
        else:
            self.updates = tuple(self.updates)

    def frame(self) -> Dict[str, Any]:
        """The JSON-ready dict shipped to a worker (faults stripped —
        fault directives are decided front-end-side per dispatch)."""
        payload = asdict(self)
        payload.pop("fault_once", None)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Request":
        known = {f: payload[f] for f in cls.__dataclass_fields__
                 if f in payload}
        return cls(**known)


@dataclass
class Response:
    """What the caller gets back — result bits plus the serving story.

    ``masks``/``letters`` are the revise/warm result's sorted model
    masks over its sorted alphabet: the canonical form two runs are
    compared in ("bit-identical" means these lists are equal).
    ``engine_tier`` is the tier that actually served the selection,
    demotion labels included (``"sharded-demoted-sparse"`` etc.), so a
    degraded request reports the tier it was served at.  ``attempts`` is
    how many dispatches the request took (1 = no retry), ``hedged``
    whether a second copy was raced, ``degraded`` whether admission
    applied pressure caps before the worker ran.
    """

    status: str = "ok"
    kind: str = "revise"
    kb: str = "default"
    masks: Optional[List[int]] = None
    letters: Optional[Tuple[str, ...]] = None
    entailed: Optional[bool] = None
    model_count: Optional[int] = None
    engine_tier: Optional[str] = None
    operator: Optional[str] = None
    attempts: int = 0
    hedged: bool = False
    degraded: bool = False
    worker_pid: Optional[int] = None
    latency_s: Optional[float] = None
    error: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        if not payload.get("extra"):
            payload.pop("extra", None)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Response":
        known = {f: payload[f] for f in cls.__dataclass_fields__
                 if f in payload}
        response = cls(**known)
        if response.letters is not None:
            response.letters = tuple(response.letters)
        return response
