"""Worker-process supervision: spawn, watch, kill, restart — bounded.

The :class:`Supervisor` owns the process-level mechanics the front-end
policy sits on: spawning workers over duplex Pipes, one reader thread
per worker posting every message (and the EOF of a death) through a
thread-safe ``post`` callable into the front-end's event loop, SIGKILL
teardown of hung workers, and exponential restart backoff so a
crash-looping worker cannot storm the host.

Liveness has two distinct shapes, and the supervisor keeps them apart:

* an **idle** worker heartbeats every ``heartbeat_s`` from its wait
  loop; silence past a small multiple means the process is wedged or
  gone — kill and restart.
* a **busy** worker is silent by design; the front-end arms a per-slot
  ``hang_deadline`` (request deadline + grace, or the hang-timeout
  default) and the monitor kills the worker only past that.

Every kill funnels through the same death path as a genuine crash (the
reader thread sees EOF), so crash, hang and kill are one code path for
retry/breaker accounting.  Generations make late messages harmless: a
slot's generation bumps on every (re)spawn and each posted event carries
the generation it was read under — the front-end drops events from a
generation that is no longer live.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .worker import worker_main

#: Slot lifecycle states.
STARTING, IDLE, BUSY, DEAD = "starting", "idle", "busy", "dead"


def _context() -> multiprocessing.context.BaseContext:
    """Fork when the platform has it (cheap, inherits the warm import
    state); spawn otherwise — the worker entry point is importable."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerSlot:
    """One supervised worker position (the process behind it rotates)."""

    __slots__ = (
        "index", "process", "conn", "state", "generation", "last_seen",
        "seq", "attempt", "hang_deadline", "streak", "restarts",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.state = DEAD
        #: Bumped on every spawn; events from older generations are stale.
        self.generation = 0
        self.last_seen = 0.0
        #: The seq / attempt of the request this slot is busy with.
        self.seq: Optional[int] = None
        self.attempt = 0
        #: Monotonic instant past which a busy worker counts as hung.
        self.hang_deadline: Optional[float] = None
        #: Consecutive deaths without a completed request (backoff input).
        self.streak = 0
        self.restarts = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class Supervisor:
    """Spawn/kill/restart mechanics for a fixed-size slot array.

    ``post(event)`` must be thread-safe (the front-end passes
    ``loop.call_soon_threadsafe``); events are ``("msg", index,
    generation, message)`` and ``("eof", index, generation)``.  Policy —
    what to do on a death, when to restart — lives in the front-end;
    the supervisor only provides the primitives plus
    :meth:`restart_delay`'s bounded exponential backoff.
    """

    def __init__(
        self,
        workers: int,
        heartbeat_s: float,
        post: Callable[[tuple], None],
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        worker_config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.heartbeat_s = heartbeat_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._post = post
        self._ctx = _context()
        self._config = dict(worker_config or {})
        self._config.setdefault("heartbeat_s", heartbeat_s)
        self._readers: List[threading.Thread] = []
        self.slots = [WorkerSlot(index) for index in range(workers)]

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        for slot in self.slots:
            self.spawn(slot)

    def spawn(self, slot: WorkerSlot) -> None:
        """(Re)start the process behind *slot*; state goes ``starting``
        until its handshake heartbeat arrives."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._config),
            daemon=True,
            name=f"repro-service-worker-{slot.index}",
        )
        process.start()
        # The parent's copy of the child end must close, or the reader
        # thread would never see EOF when the worker dies.
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.state = STARTING
        slot.generation += 1
        slot.last_seen = time.monotonic()
        slot.seq = None
        slot.hang_deadline = None
        reader = threading.Thread(
            target=self._read_loop,
            args=(slot.index, parent_conn, slot.generation),
            daemon=True,
            name=f"repro-service-reader-{slot.index}",
        )
        reader.start()
        self._readers.append(reader)

    def _read_loop(self, index: int, conn, generation: int) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._post(("eof", index, generation))
                return
            self._post(("msg", index, generation, message))

    def restart_delay(self, slot: WorkerSlot) -> float:
        """Exponential backoff from the slot's consecutive-death streak."""
        return min(
            self.backoff_base_s * (2 ** max(0, slot.streak - 1)),
            self.backoff_max_s,
        )

    # -- teardown ---------------------------------------------------------

    def kill(self, slot: WorkerSlot) -> None:
        """SIGKILL the slot's process; the reader's EOF is the death
        signal, so hangs and crashes share one downstream path."""
        process = slot.process
        if process is not None and process.is_alive():
            try:
                process.kill()
            except Exception:
                pass
        slot.state = DEAD

    def stop(self, drain_timeout_s: float = 2.0) -> None:
        """Orderly shutdown: ask, wait briefly, then make sure.

        No worker survives this call — the acceptance criterion is "no
        orphan processes after shutdown", enforced by terminate + kill
        escalation on anything that ignored the stop frame.
        """
        for slot in self.slots:
            if slot.conn is not None and slot.state != DEAD:
                try:
                    slot.conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + drain_timeout_s
        for slot in self.slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
            slot.state = DEAD
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:
                    pass
        for reader in self._readers:
            reader.join(timeout=1.0)

    def live_pids(self) -> List[int]:
        """PIDs of still-running worker processes (test/shutdown probe)."""
        return [
            slot.process.pid
            for slot in self.slots
            if slot.process is not None and slot.process.is_alive()
        ]
