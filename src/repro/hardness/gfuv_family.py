"""The Theorem 3.1 reduction family for GFUV (and, via Theorem 3.2, for
Borgida, Satoh and Winslett).

For each size ``n`` the construction produces a pair ``(T_n, P_n)`` of
polynomial size such that, for every 3-SAT instance ``pi ⊆ pi_max(n)``,

    ``pi`` is satisfiable   iff   ``T_n *GFUV P_n |= Q_pi``

where ``Q_pi = (⋀ W_pi) → r`` and
``W_pi = {c_i : γ_i ∈ pi} ∪ {d_i : γ_i ∉ pi}``.

Construction (paper, proof of Theorem 3.1)::

    L   = B_n ∪ C ∪ D ∪ {r}
    T_n = C ∪ D ∪ B_n ∪ {r}                      (a theory of atoms)
    P_n = [ (⋀_i ¬b_i ∧ ¬r)  ∨  ⋀_j (c_j → γ_j) ]  ∧  ⋀_j (c_j ≢ d_j)

``pi_max(n)`` explodes as ``8·C(n,3)``, so executable checks use either
``n = 3`` (8 clauses) or a *reduced clause universe* — any subset of
``pi_max(n)`` works, since the proof only needs ``pi ⊆ universe``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..logic.formula import Formula, Var, big_and, implies, land, lnot, lor, xor
from ..logic.theory import Theory
from ..sat import entails as sat_entails
from ..sat import models as sat_models
from ..threesat.instances import Clause3, atom_names, clause_formula, pi_max


@dataclass(frozen=True)
class GfuvFamily:
    """One member ``(T_n, P_n)`` of the Theorem 3.1 family."""

    n: int
    universe: Tuple[Clause3, ...]
    theory: Theory
    p_formula: Formula
    c_names: Tuple[str, ...]
    d_names: Tuple[str, ...]

    def w_pi(self, pi: Iterable[Clause3]) -> List[str]:
        """``W_pi``: guard atoms selecting exactly the clauses of ``pi``."""
        pi_set = frozenset(pi)
        self._check_instance(pi_set)
        selected: List[str] = []
        for index, clause in enumerate(self.universe):
            selected.append(
                self.c_names[index] if clause in pi_set else self.d_names[index]
            )
        return selected

    def q_pi(self, pi: Iterable[Clause3]) -> Formula:
        """``Q_pi = (⋀ W_pi) → r``."""
        return implies(big_and(Var(name) for name in self.w_pi(pi)), Var("r"))

    def _check_instance(self, pi: FrozenSet[Clause3]) -> None:
        foreign = pi - frozenset(self.universe)
        if foreign:
            raise ValueError(f"instance clauses outside the universe: {sorted(foreign)}")


def build(n: int, universe: Sequence[Clause3] | None = None) -> GfuvFamily:
    """Construct ``(T_n, P_n)`` over ``universe`` (default ``pi_max(n)``)."""
    if universe is None:
        universe = pi_max(n)
    universe = tuple(universe)
    if not universe:
        raise ValueError("clause universe must be non-empty")
    b_names = atom_names(n)
    c_names = tuple(f"c{i}" for i in range(1, len(universe) + 1))
    d_names = tuple(f"d{i}" for i in range(1, len(universe) + 1))
    atoms = [Var(name) for name in (*c_names, *d_names, *b_names, "r")]
    theory = Theory(atoms)

    all_b_false = land(*(lnot(Var(b)) for b in b_names), lnot(Var("r")))
    guards = big_and(
        implies(Var(c_names[j]), clause_formula(universe[j]))
        for j in range(len(universe))
    )
    exclusivity = big_and(
        xor(Var(c_names[j]), Var(d_names[j])) for j in range(len(universe))
    )
    p_formula = land(lor(all_b_false, guards), exclusivity)
    return GfuvFamily(n, universe, theory, p_formula, c_names, d_names)


def atomic_possible_worlds(theory: Theory, p_formula: Formula) -> List[FrozenSet[str]]:
    """``W(T, P)`` for a theory of *atoms*, via projected model enumeration.

    For atomic ``T`` every subset consistent with ``P`` is of the form
    ``T ∩ N`` for a model ``N`` of ``P``, so
    ``W(T, P) = max⊆ { T ∩ N : N |= P }`` — computable by enumerating the
    models of ``P`` projected onto ``V(T)``, instead of the generic
    ``2^|T|`` subset search.  This is how the Theorem 3.1 checks stay
    feasible at ``n = 3`` (``|T_n| = 20`` atoms).
    """
    atom_set: Set[str] = set()
    for member in theory:
        if not isinstance(member, Var):
            raise ValueError("atomic_possible_worlds requires a theory of atoms")
        atom_set.add(member.name)
    alphabet = sorted(atom_set | p_formula.variables())
    intersections = {
        frozenset(model & atom_set)
        for model in sat_models(p_formula, alphabet)
    }
    from ..logic.interpretation import max_subset

    return max_subset(intersections)


def gfuv_entails(theory: Theory, p_formula: Formula, query: Formula) -> bool:
    """``T *GFUV P |= Q`` for an atomic theory, via the world shortcut."""
    worlds = atomic_possible_worlds(theory, p_formula)
    if not worlds:
        return True  # P unsatisfiable: everything follows
    for world in worlds:
        world_formula = land(*(Var(name) for name in sorted(world)))
        if not sat_entails(land(world_formula, p_formula), query):
            return False
    return True


def decide_sat_via_revision(family: GfuvFamily, pi: Iterable[Clause3]) -> bool:
    """The Theorem 3.1 equivalence, run forwards: decide satisfiability of
    ``pi`` by asking the revised knowledge base.

    Returns ``True`` (satisfiable) iff ``T_n *GFUV P_n |= Q_pi``.
    """
    return gfuv_entails(family.theory, family.p_formula, family.q_pi(pi))
