"""Clause-heavy (CNF, non-DNF) workloads with exact planted model sets.

:mod:`.sparse_family` measures the enumeration pipeline on DNF-shaped
knowledge bases — which the cube generalizer eats in ``O(#cubes)`` resumes
regardless of the solver core.  This module generates the *opposite*
shape: a conjunction of clauses whose model set is still known exactly at
any size, so the CDCL-vs-chronological gap of the PR 6 solver core is
measurable against ground truth.

Construction — a **planted-selector CNF** over ``s`` selector letters and
``n - s`` value letters:

* the planted model ``i`` (``0 ≤ i < k``) sets the selector letters to the
  binary code of ``i`` and the value letters to a seeded random row;
* *forcing clauses* ``(sel ≠ i) ∨ lit`` pin every value letter to its
  planted row once the selector spells ``i``;
* *bound clauses* encode ``sel < k``, so invalid selector codes have no
  models;
* *noise clauses* are random wide clauses filtered to be satisfied by
  every planted model (their forbidden pattern is drawn outside the
  planted projections), so they change nothing about the model set while
  making the clause database genuinely clause-heavy.

Every total model therefore decodes a selector value ``i < k`` and is
forced to equal planted model ``i``: the model set is *exactly* the ``k``
planted rows, at 10 letters or at 40.

The clause list is assembled in an order that is adversarial for
chronological search: one noise clause per value letter comes first, so
the Tseitin encoding hands the solver the value letters as its
lowest-numbered (hence first-branched) variables.  A chronological
enumerator then pays for every dead value-prefix with a refutation sweep
across the selector space, while a learning solver refutes it once and
reuses the clause — the measurable gap of the ``pr6-cdcl-allsat``
benchmark runs.  Selector letters are *named* to sort first (``s00`` <
``v000``), so they occupy the low mask bits and the ground-truth masks
are simply ``i | (row_i << s)``.

Parameterised by ``letters`` × model count (``t_models`` / ``p_models``)
× noise density — the axes of the clause-family benchmark legs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..logic.formula import Formula, Var, big_and, big_or, lnot


@dataclass(frozen=True)
class ClauseWorkload:
    """One clause-heavy ``(T, P)`` pair with known ground truth."""

    letters: Tuple[str, ...]
    t_formula: Formula
    p_formula: Formula
    #: Exact model masks of ``t_formula`` / ``p_formula`` over ``letters``
    #: (bit ``i`` = the ``i``-th letter in sorted order, the engine's
    #: convention), sorted ascending.
    t_masks: Tuple[int, ...]
    p_masks: Tuple[int, ...]
    selector_letters: int
    #: CNF clause counts of ``(t_formula, p_formula)``.
    clause_counts: Tuple[int, int]

    @property
    def letter_count(self) -> int:
        return len(self.letters)

    @property
    def t_model_count(self) -> int:
        return len(self.t_masks)

    @property
    def p_model_count(self) -> int:
        return len(self.p_masks)


def _selector_guard(selectors: Sequence[str], pattern: int) -> List[Formula]:
    """Literals that jointly say ``sel ≠ pattern`` (true iff some bit differs)."""
    return [
        lnot(Var(name)) if (pattern >> bit) & 1 else Var(name)
        for bit, name in enumerate(selectors)
    ]


def _selector_bound_clauses(
    selectors: Sequence[str], count: int
) -> List[Formula]:
    """CNF of ``selector-value < count`` (bit ``b`` of the value is
    ``selectors[b]``).  Standard lexicographic encoding: forbid equality
    with ``count``, and for every zero bit of ``count`` forbid "agrees
    above, one there" — together exactly ``sel ≥ count``."""
    width = len(selectors)
    if count >= (1 << width):
        return []
    bits = [(count >> bit) & 1 for bit in range(width)]
    clauses: List[Formula] = [big_or(_selector_guard(selectors, count))]
    for low in range(width):
        if bits[low]:
            continue
        literals: List[Formula] = [lnot(Var(selectors[low]))]
        for high in range(low + 1, width):
            literals.append(
                lnot(Var(selectors[high])) if bits[high] else Var(selectors[high])
            )
        clauses.append(big_or(literals))
    return clauses


def _noise_clause(
    rng: random.Random,
    pool: Sequence[str],
    rows: Sequence[Dict[str, int]],
    width: int,
    first: str = None,
) -> Formula:
    """A width-``width`` clause satisfied by every planted row, or ``None``.

    Picks ``width`` distinct letters (``first`` pinned to the front when
    given — the variable-ordering device), projects every planted row onto
    them, and chooses a *forbidden* bit pattern outside the projections:
    the clause is false exactly on that pattern, hence true in every
    planted model.  Returns ``None`` when the rows cover all ``2^width``
    patterns (the caller retries or widens).
    """
    others = [name for name in pool if name != first]
    chosen = rng.sample(others, width - 1 if first else width)
    letters = ([first] if first else []) + chosen
    present = {
        sum(row[name] << position for position, name in enumerate(letters))
        for row in rows
    }
    absent = [
        pattern for pattern in range(1 << width) if pattern not in present
    ]
    if not absent:
        return None
    forbidden = absent[rng.randrange(len(absent))]
    return big_or(
        [
            lnot(Var(name)) if (forbidden >> position) & 1 else Var(name)
            for position, name in enumerate(letters)
        ]
    )


def _planted_cnf(
    rng: random.Random,
    selectors: Sequence[str],
    values: Sequence[str],
    model_count: int,
    noise_per_letter: float,
    noise_width: Tuple[int, int],
    shared_values: int,
    value_bias: float,
    near_miss: int,
) -> Tuple[Formula, Tuple[int, ...], int]:
    """One planted-selector CNF: formula, exact masks, clause count."""
    width = len(selectors)
    # The first ``shared_values`` value letters carry the same planted bit
    # in every model: flipping one of them strands the search in a region
    # where *no* selector code survives, and proving that costs a sweep of
    # the selector space.  A learning solver pays that sweep once per
    # letter; a chronological one pays it again under every model prefix.
    shared_bits = rng.getrandbits(shared_values) if shared_values else 0
    rows: List[Dict[str, int]] = []
    masks: List[int] = []
    for index in range(model_count):
        row = {
            name: (index >> bit) & 1 for bit, name in enumerate(selectors)
        }
        if value_bias == 0.5:
            value_bits = rng.getrandbits(len(values)) if values else 0
        else:
            value_bits = 0
            for position in range(len(values)):
                if rng.random() < value_bias:
                    value_bits |= 1 << position
        if shared_values:
            keep = (1 << shared_values) - 1
            value_bits = (value_bits & ~keep) | shared_bits
        for position, name in enumerate(values):
            row[name] = (value_bits >> position) & 1
        rows.append(row)
        masks.append(index | (value_bits << width))

    clauses: List[Formula] = []
    # Ordering noise first: one clause per value letter, value letters
    # only, the letter itself leading — this hands the Tseitin encoding
    # the value letters as the solver's first-branched variables, which
    # is the adversarial order for chronological search.
    for name in values:
        clause = None
        for attempt_width in range(noise_width[0], min(len(values), 6) + 1):
            for _ in range(20):
                clause = _noise_clause(rng, values, rows, attempt_width, name)
                if clause is not None:
                    break
            if clause is not None:
                break
        if clause is not None:
            clauses.append(clause)
    # Near-miss web: for value pairs (a, b) that no planted row sets
    # jointly true, emit (¬a ∨ ¬b ∨ c) and (¬a ∨ ¬b ∨ ¬c).  Both are
    # satisfied by every planted model, but any search path trying a∧b
    # propagates c both ways and conflicts — a cheap, value-letter-only
    # conflict.  A learning solver absorbs the web once; a chronological
    # one keeps paying it, and the activity the conflicts pour onto value
    # letters starves the selector letters that guide it out of dead
    # regions.
    if near_miss and len(values) >= 3:
        emitted_pairs = 0
        for _ in range(near_miss * 40):
            if emitted_pairs >= near_miss:
                break
            a, b, c = rng.sample(list(values), 3)
            if any(row[a] and row[b] for row in rows):
                continue
            head = [lnot(Var(a)), lnot(Var(b))]
            clauses.append(big_or(head + [Var(c)]))
            clauses.append(big_or(head + [lnot(Var(c))]))
            emitted_pairs += 1
    # General noise over the full letter pool.
    pool = list(values) + list(selectors)
    target = int(noise_per_letter * len(pool))
    produced = 0
    while produced < target:
        clause_width = rng.randint(noise_width[0], noise_width[1])
        clause = _noise_clause(rng, pool, rows, min(clause_width, len(pool)))
        if clause is not None:
            clauses.append(clause)
        produced += 1
    # Forcing clauses: value literal first, then the selector guard.  The
    # guard is rotated per clause so a two-watched-literal solver spreads
    # its initial watches across all selector letters instead of piling
    # every forcing clause onto the first one.
    for index in range(model_count):
        guard = _selector_guard(selectors, index)
        row = rows[index]
        for position, name in enumerate(values):
            literal = Var(name) if row[name] else lnot(Var(name))
            turn = (index + position) % len(guard)
            clauses.append(big_or([literal] + guard[turn:] + guard[:turn]))
    clauses.extend(_selector_bound_clauses(selectors, model_count))
    return big_and(clauses), tuple(sorted(masks)), len(clauses)


def build(
    letter_count: int,
    t_models: int,
    p_models: int,
    seed: int = 0,
    noise_per_letter: float = 2.0,
    noise_width: Tuple[int, int] = (3, 4),
    extra_selectors: int = 0,
    shared_values: int = 0,
    value_bias: float = 0.5,
    near_miss: int = 0,
) -> ClauseWorkload:
    """A clause-heavy workload over ``letter_count`` letters.

    ``T`` has exactly ``t_models`` models and ``P`` exactly ``p_models``
    (planted-selector CNFs sharing one alphabet: selector letters sized
    for the larger count).  The same parameter tuple always reproduces
    the same pair (one ``random.Random(seed)`` stream).

    ``extra_selectors`` widens the selector register beyond the minimum
    ``ceil(log2(models))`` bits.  The bound clauses then force the high
    bits to zero, but only through a clause chain: a learning solver
    derives the zeros once as unit clauses, a chronological one re-refutes
    them inside every dead subtree — a structural hardness dial that
    leaves the model set untouched.

    ``shared_values`` pins that many value letters to one planted bit
    shared by *all* models (see :func:`_planted_cnf`); each wrong setting
    of a shared letter opens a model-free region whose emptiness proof a
    chronological solver repeats under every enclosing prefix.

    ``value_bias`` is the probability a planted value bit is 1.  Below
    0.5 a positive-polarity-first solver steps into model-free territory
    on most descents, and row-free letter pairs become common enough for
    the ``near_miss`` web (see :func:`_planted_cnf`) — the two dials that
    punish a non-learning search the hardest.
    """
    if letter_count < 3:
        raise ValueError("letter_count must be at least 3")
    if t_models < 1 or p_models < 1:
        raise ValueError("model counts must be positive")
    if extra_selectors < 0:
        raise ValueError("extra_selectors must be non-negative")
    width = max(1, (max(t_models, p_models) - 1).bit_length()) + extra_selectors
    if shared_values < 0 or shared_values > letter_count - width:
        raise ValueError("shared_values must fit inside the value letters")
    if not 0.0 <= value_bias <= 1.0:
        raise ValueError("value_bias must be a probability")
    if near_miss < 0:
        raise ValueError("near_miss must be non-negative")
    if width >= letter_count:
        raise ValueError(
            f"{max(t_models, p_models)} models need {width} selector letters"
            f" — too many for {letter_count} total"
        )
    selectors = tuple(f"s{i:02d}" for i in range(width))
    values = tuple(f"v{i:03d}" for i in range(letter_count - width))
    rng = random.Random(seed)
    t_formula, t_masks, t_count = _planted_cnf(
        rng, selectors, values, t_models, noise_per_letter, noise_width,
        shared_values, value_bias, near_miss,
    )
    p_formula, p_masks, p_count = _planted_cnf(
        rng, selectors, values, p_models, noise_per_letter, noise_width,
        shared_values, value_bias, near_miss,
    )
    return ClauseWorkload(
        letters=selectors + values,
        t_formula=t_formula,
        p_formula=p_formula,
        t_masks=t_masks,
        p_masks=p_masks,
        selector_letters=width,
        clause_counts=(t_count, p_count),
    )
