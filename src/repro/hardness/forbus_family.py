"""The Theorem 3.3 reduction family for Forbus' operator.

For each ``n`` the construction uses an ``(n+2) × m`` matrix of guard atoms
``c^j_i`` (row ``i``, clause ``j``), all rows forced equal::

    U_n = ⋀_j ⋀_{i=2..n+2} (c^j_i ≡ c^j_1)
    T_n = U_n ∧ ⋀ B_n ∧ r                       (theory {U_n} ∪ B_n ∪ {r})
    P_n = [ (⋀_i ¬b_i ∧ ¬r) ∨ ⋀_j (c^j_1 → γ_j) ] ∧ U_n

The replication makes distances work out so that, with
``M_pi = ⋃_{i=1..n+2} {c^j_i : γ_j ∈ pi}``:

    ``pi`` unsatisfiable   iff   ``M_pi |= T_n *F P_n``

and correspondingly ``T_n *F P_n |= Q_pi`` iff ``pi`` is satisfiable, where
``Q_pi`` is the clause excluding exactly ``M_pi``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..logic.formula import Formula, Var, big_and, big_or, iff, implies, land, lnot, lor
from ..threesat.instances import Clause3, atom_names, clause_formula, pi_max


@dataclass(frozen=True)
class ForbusFamily:
    """One member ``(T_n, P_n)`` of the Theorem 3.3 family."""

    n: int
    universe: Tuple[Clause3, ...]
    t_formula: Formula
    p_formula: Formula
    #: guard matrix: ``c_matrix[i][j]`` = atom name of row ``i``, clause ``j``
    c_matrix: Tuple[Tuple[str, ...], ...]

    def m_pi(self, pi: Iterable[Clause3]) -> FrozenSet[str]:
        """``M_pi``: all rows of the guard columns of ``pi``'s clauses."""
        pi_set = frozenset(pi)
        foreign = pi_set - frozenset(self.universe)
        if foreign:
            raise ValueError(f"instance clauses outside the universe: {sorted(foreign)}")
        selected: List[str] = []
        for j, clause in enumerate(self.universe):
            if clause in pi_set:
                selected.extend(row[j] for row in self.c_matrix)
        return frozenset(selected)

    def q_pi(self, pi: Iterable[Clause3]) -> Formula:
        """``Q_pi``: the clause satisfied by every interpretation but
        ``M_pi`` (paper, proof of Theorem 3.3)."""
        pi_set = frozenset(pi)
        literals: List[Formula] = []
        for j, clause in enumerate(self.universe):
            for row in self.c_matrix:
                atom = Var(row[j])
                literals.append(lnot(atom) if clause in pi_set else atom)
        literals.extend(Var(b) for b in atom_names(self.n))
        literals.append(Var("r"))
        return big_or(literals)

    @property
    def alphabet(self) -> Tuple[str, ...]:
        names = set(atom_names(self.n)) | {"r"}
        for row in self.c_matrix:
            names |= set(row)
        return tuple(sorted(names))


def build(n: int, universe: Sequence[Clause3] | None = None) -> ForbusFamily:
    """Construct the Theorem 3.3 pair over ``universe`` (default
    ``pi_max(n)``)."""
    if universe is None:
        universe = pi_max(n)
    universe = tuple(universe)
    if not universe:
        raise ValueError("clause universe must be non-empty")
    b_names = atom_names(n)
    rows = n + 2
    c_matrix = tuple(
        tuple(f"c{i}_{j}" for j in range(1, len(universe) + 1))
        for i in range(1, rows + 1)
    )
    equal_rows = big_and(
        iff(Var(c_matrix[i][j]), Var(c_matrix[0][j]))
        for j in range(len(universe))
        for i in range(1, rows)
    )
    t_formula = land(
        equal_rows, *(Var(b) for b in b_names), Var("r")
    )
    all_false = land(*(lnot(Var(b)) for b in b_names), lnot(Var("r")))
    guards = big_and(
        implies(Var(c_matrix[0][j]), clause_formula(universe[j]))
        for j in range(len(universe))
    )
    p_formula = land(lor(all_false, guards), equal_rows)
    return ForbusFamily(n, universe, t_formula, p_formula, c_matrix)
