"""Large-alphabet bounded-density workloads for the sparse engine tier.

The reduction families in this package all target the paper's *negative*
results; this module generates the *serving-shaped* workloads the sparse
tier (:mod:`repro.logic.sparse`) exists for — view/update requests over
large schemas with few admissible states (cf. arXiv:1301.5154,
arXiv:1411.2499): alphabets far past the shard cutoff, model counts pinned
exactly.

Construction: ``T`` and ``P`` are DNFs of *cubes*.  A cube fixes
``letters - free_letters`` letters, so it contributes exactly
``2^free_letters`` models; cubes are drawn with distinct fixed parts over
the non-free letters, making the model count of the whole DNF exactly
``cubes * 2^free_letters`` (free letters range over every completion).
Both the formulas *and* their ground-truth mask sets are exposed, so

* benchmarks can run the full pipeline (SAT enumeration + selection) on a
  density that is a *parameter*, not an accident of a random draw, and
* tests can build :class:`~repro.logic.bitmodels.BitModelSet` carriers
  directly from the known masks and check the engine's enumeration
  against them.

Parameterised by ``letters`` × model density (``t_cubes`` / ``p_cubes`` /
``free_letters``) — the axes of the ``pr4-sparse-tier`` benchmark runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..logic.formula import Formula, Var, big_and, big_or, lnot


@dataclass(frozen=True)
class SparseWorkload:
    """One bounded-density ``(T, P)`` pair with known ground truth."""

    letters: Tuple[str, ...]
    t_formula: Formula
    p_formula: Formula
    #: Exact model masks of ``t_formula`` / ``p_formula`` over ``letters``
    #: (bit ``i`` = the ``i``-th letter in sorted order, the engine's
    #: convention), sorted ascending.
    t_masks: Tuple[int, ...]
    p_masks: Tuple[int, ...]
    free_letters: int

    @property
    def letter_count(self) -> int:
        return len(self.letters)

    @property
    def t_model_count(self) -> int:
        return len(self.t_masks)

    @property
    def p_model_count(self) -> int:
        return len(self.p_masks)


def _draw_cubes(rng: random.Random, count: int, fixed_bits: int) -> List[int]:
    """Distinct random assignments of the fixed letters."""
    if count > (1 << fixed_bits):
        raise ValueError(
            f"cannot draw {count} distinct cubes over {fixed_bits} fixed letters"
        )
    seen: set = set()
    while len(seen) < count:
        seen.add(rng.getrandbits(fixed_bits))
    return sorted(seen)


def _dnf_of_cubes(
    letters: Tuple[str, ...], cubes: List[int], free_letters: int
) -> Formula:
    """The DNF whose models are exactly the cubes × free completions.

    The *low* ``free_letters`` letters (sorted order) are left free; cube
    bit ``j`` decides the polarity of letter ``free_letters + j``.
    """
    fixed = letters[free_letters:]
    disjuncts = []
    for cube in cubes:
        literals = [
            Var(name) if (cube >> j) & 1 else lnot(Var(name))
            for j, name in enumerate(fixed)
        ]
        disjuncts.append(big_and(literals))
    return big_or(disjuncts)


def _expand_masks(cubes: List[int], free_letters: int) -> Tuple[int, ...]:
    """Ground-truth masks: every free completion of every cube."""
    masks = []
    for cube in cubes:
        base = cube << free_letters
        for completion in range(1 << free_letters):
            masks.append(base | completion)
    return tuple(sorted(masks))


def build(
    letter_count: int,
    t_cubes: int,
    p_cubes: int,
    seed: int = 0,
    free_letters: int = 0,
) -> SparseWorkload:
    """A bounded-density workload over ``letter_count`` letters.

    ``T`` has exactly ``t_cubes * 2^free_letters`` models and ``P``
    exactly ``p_cubes * 2^free_letters`` — density is the parameter.  The
    same ``(letter_count, t_cubes, p_cubes, seed, free_letters)`` always
    reproduces the same pair (one ``random.Random(seed)`` stream).
    """
    if letter_count < 1:
        raise ValueError("letter_count must be positive")
    if free_letters < 0 or free_letters >= letter_count:
        raise ValueError("free_letters must lie in [0, letter_count)")
    letters = tuple(f"v{i:03d}" for i in range(letter_count))
    rng = random.Random(seed)
    fixed_bits = letter_count - free_letters
    t_fixed = _draw_cubes(rng, t_cubes, fixed_bits)
    p_fixed = _draw_cubes(rng, p_cubes, fixed_bits)
    return SparseWorkload(
        letters=letters,
        t_formula=_dnf_of_cubes(letters, t_fixed, free_letters),
        p_formula=_dnf_of_cubes(letters, p_fixed, free_letters),
        t_masks=_expand_masks(t_fixed, free_letters),
        p_masks=_expand_masks(p_fixed, free_letters),
        free_letters=free_letters,
    )
