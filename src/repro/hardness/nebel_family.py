"""Nebel's exponential-worlds example (Section 3.1).

``T1 = {x1, ..., xm, y1, ..., ym}``,  ``P1 = ⋀_i (x_i ≢ y_i)``.

``W(T1, P1)`` contains ``2^m`` distinct theories — one per choice of
``x_i`` vs ``y_i`` for each ``i`` — so the explicit disjunction-of-worlds
representation of ``T1 *GFUV P1`` is exponential in ``|T1| + |P1|``.
This family powers the E6 blow-up benchmark.
"""

from __future__ import annotations

from typing import List, Tuple

from ..logic.formula import Formula, Var, big_and, big_or, land, xor
from ..logic.theory import Theory


def build(m: int) -> Tuple[Theory, Formula]:
    """``(T1, P1)`` for the given ``m >= 1``."""
    if m < 1:
        raise ValueError("m must be at least 1")
    xs = [Var(f"x{i}") for i in range(1, m + 1)]
    ys = [Var(f"y{i}") for i in range(1, m + 1)]
    theory = Theory(xs + ys)
    formula = big_and(xor(x, y) for x, y in zip(xs, ys))
    return theory, formula


def expected_world_count(m: int) -> int:
    """``|W(T1, P1)| = 2^m``."""
    return 1 << m


def explicit_worlds(m: int) -> List[Theory]:
    """The ``2^m`` possible worlds, constructed directly (not by search).

    World for bitmask ``mask``: keep ``x_i`` when bit ``i`` is 0, else
    ``y_i``.  Used to cross-check the generic ``possible_worlds`` search and
    to measure the explicit representation size without paying the search
    cost at large ``m``.
    """
    worlds: List[Theory] = []
    for mask in range(1 << m):
        members = []
        for i in range(1, m + 1):
            members.append(Var(f"y{i}") if mask >> (i - 1) & 1 else Var(f"x{i}"))
        worlds.append(Theory(members))
    return worlds


def explicit_representation_size(m: int) -> int:
    """``|(∨_W ∧W) ∧ P1|`` — the naive GFUV representation size."""
    _, formula = build(m)
    disjunction = big_or(world.conjunction() for world in explicit_worlds(m))
    return land(disjunction, formula).size()
