"""The Theorem 6.5 family: iterated *bounded* revision is not logically
compactable for any of the six model-based operators.

An unbounded number of constant-size revisions simulates one unbounded
revision::

    T_n   = Φ_n ∧ Γ_n            Φ_n = ⋀_i (b_i ≢ y_i)
                                 Γ_n = ⋀_j (c_j → γ_j)
    P^i_n = ¬b_i ∧ ¬y_i          (i = 1..n — each of constant size)

With ``C_pi = {c_i : γ_i ∈ pi}``:

    ``pi`` satisfiable   iff   ``C_pi |= T_n * P¹_n * ... * P^n_n``

for every ``* ∈ {*B, *D, *F, *S, *Web, *Win}`` — the proof shows the six
operators coincide on this family step by step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..logic.formula import Formula, Var, big_and, implies, land, lnot, xor
from ..threesat.instances import Clause3, atom_names, clause_formula, pi_max


@dataclass(frozen=True)
class IteratedFamily:
    """One member ``(T_n, P¹_n..P^n_n)`` of the Theorem 6.5 family."""

    n: int
    universe: Tuple[Clause3, ...]
    t_formula: Formula
    p_formulas: Tuple[Formula, ...]
    c_names: Tuple[str, ...]
    y_names: Tuple[str, ...]

    def c_pi(self, pi: Iterable[Clause3]) -> FrozenSet[str]:
        """The interpretation ``C_pi``."""
        pi_set = frozenset(pi)
        foreign = pi_set - frozenset(self.universe)
        if foreign:
            raise ValueError(f"instance clauses outside the universe: {sorted(foreign)}")
        return frozenset(
            self.c_names[i]
            for i, clause in enumerate(self.universe)
            if clause in pi_set
        )


def build(n: int, universe: Sequence[Clause3] | None = None) -> IteratedFamily:
    """Construct the Theorem 6.5 family member over ``universe``."""
    if universe is None:
        universe = pi_max(n)
    universe = tuple(universe)
    if not universe:
        raise ValueError("clause universe must be non-empty")
    b_names = atom_names(n)
    y_names = tuple(f"yb{i}" for i in range(1, n + 1))
    c_names = tuple(f"c{i}" for i in range(1, len(universe) + 1))

    phi = big_and(xor(Var(b), Var(y)) for b, y in zip(b_names, y_names))
    gamma = big_and(
        implies(Var(c_names[j]), clause_formula(universe[j]))
        for j in range(len(universe))
    )
    t_formula = land(phi, gamma)
    p_formulas = tuple(
        land(lnot(Var(b)), lnot(Var(y))) for b, y in zip(b_names, y_names)
    )
    return IteratedFamily(n, universe, t_formula, p_formulas, c_names, y_names)
