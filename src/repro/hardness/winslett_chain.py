"""Winslett's chain example (Section 3.1).

``T2`` couples each pair ``(x_i, y_i)`` to a cascade letter ``z_i``::

    T2 = { x1, y1, z1 ≡ (¬x1 ∨ ¬y1),
           x2, y2, z2 ≡ (z1 ∧ (¬x2 ∨ ¬y2)),
           ...,
           xm, ym, zm ≡ (z_{m-1} ∧ (¬xm ∨ ¬ym)) }
    P2 = zm

``|W(T2, P2)|`` is exponential in ``m`` although ``|P2|`` does **not**
depend on ``m`` — the example showing that bounding ``|P|`` does not rescue
GFUV (Theorem 4.1 turns this observation into a reduction).
"""

from __future__ import annotations

from typing import Tuple

from ..logic.formula import Formula, Var, iff, land, lnot, lor
from ..logic.theory import Theory


def build(m: int) -> Tuple[Theory, Formula]:
    """``(T2, P2)`` for the given ``m >= 1``."""
    if m < 1:
        raise ValueError("m must be at least 1")
    members = []
    previous_z: Formula | None = None
    for i in range(1, m + 1):
        x = Var(f"x{i}")
        y = Var(f"y{i}")
        z = Var(f"z{i}")
        members.append(x)
        members.append(y)
        pair_broken = lor(lnot(x), lnot(y))
        if previous_z is None:
            members.append(iff(z, pair_broken))
        else:
            members.append(iff(z, land(previous_z, pair_broken)))
        previous_z = z
    return Theory(members), Var(f"z{m}")


def expected_world_count(m: int) -> int:
    """``|W(T2, P2)| = 2^(m+1) - 1``.

    Two kinds of maximal subsets exist (cross-checked against the generic
    ``possible_worlds`` search in the tests):

    * keep all ``m`` definitions — then ``z_m`` forces every pair broken,
      one binary choice per pair: ``2^m`` worlds;
    * drop exactly one definition ``z_i ≡ ...`` (the *largest* broken link)
      — pairs up to ``i`` stay complete, pairs above ``i`` each lose one
      member: ``2^(m-i)`` worlds for each ``i``.

    Total ``2^m + Σ_{i=1..m} 2^(m-i) = 2^(m+1) - 1`` — exponential in ``m``
    even though ``|P2|`` is constant, which is the point of the example.
    """
    return (1 << (m + 1)) - 1
