"""The Theorem 4.1 reduction: GFUV stays non-compactable even when
``|P| <= k``.

Given the Theorem 3.1 pair ``(T_n, P_n)``, a single fresh atom ``s`` moves
all the complexity of ``P_n`` into the theory::

    T'_n = { f ∧ (¬s ∨ P_n)  :  f ∈ T_n }  ∪  { ¬s }
    P'_n = s

For every query ``Q`` over ``V(T_n) ∪ V(P_n)``:
``T'_n *GFUV P'_n |= Q``  iff  ``T_n *GFUV P_n |= Q`` — so a compact
representation for the bounded case would also compact the unbounded case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..logic.formula import Formula, Var, land, lnot, lor
from ..logic.theory import Theory
from .gfuv_family import GfuvFamily


@dataclass(frozen=True)
class BoundedGfuvFamily:
    """The transformed pair ``(T'_n, P'_n)`` with ``|P'_n| = 1``."""

    base: GfuvFamily
    theory: Theory
    p_formula: Formula


def transform(base: GfuvFamily, switch_name: str = "s") -> BoundedGfuvFamily:
    """Apply the Theorem 4.1 construction to a Theorem 3.1 family member."""
    switch = Var(switch_name)
    used = base.theory.variables() | base.p_formula.variables()
    if switch_name in used:
        raise ValueError(f"switch letter {switch_name!r} collides with the family")
    guarded = [
        land(member, lor(lnot(switch), base.p_formula))
        for member in base.theory
    ]
    theory = Theory(guarded + [lnot(switch)])
    return BoundedGfuvFamily(base, theory, switch)
