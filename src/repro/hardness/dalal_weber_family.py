"""The Theorem 3.6 reduction family: Dalal's and Weber's operators are not
*logically* compactable (although they are query-compactable).

Construction (paper, proof of Theorem 3.6)::

    L   = B_n ∪ Y ∪ C           (Y a copy of B_n, C guards for the universe)
    Φ_n = ⋀_i (b_i ≢ y_i)
    Γ_n = ⋀_j (γ_j ∨ ¬c_j)
    T_n = Φ_n ∧ Γ_n
    P_n = ⋀_i (¬b_i ∧ ¬y_i)

For every instance ``pi`` of the clause universe, with
``C_pi = {c_i : γ_i ∈ pi}``:

    ``pi`` satisfiable   iff   ``C_pi |= T_n *D P_n``
                         iff   ``C_pi |= T_n *Web P_n``

The same ``T_n`` (with ``Γ_n`` written ``c_i → γ_i``) and the *sequence*
``P^i_n = ¬b_i ∧ ¬y_i`` power the Theorem 6.5 iterated family in
:mod:`repro.hardness.iterated_family`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..logic.formula import Formula, Var, big_and, land, lnot, lor, xor
from ..threesat.instances import Clause3, atom_names, clause_formula, pi_max


@dataclass(frozen=True)
class DalalWeberFamily:
    """One member ``(T_n, P_n)`` of the Theorem 3.6 family."""

    n: int
    universe: Tuple[Clause3, ...]
    t_formula: Formula
    p_formula: Formula
    c_names: Tuple[str, ...]
    y_names: Tuple[str, ...]

    def c_pi(self, pi: Iterable[Clause3]) -> FrozenSet[str]:
        """The interpretation ``C_pi`` (guards of the clauses of ``pi``)."""
        pi_set = frozenset(pi)
        foreign = pi_set - frozenset(self.universe)
        if foreign:
            raise ValueError(f"instance clauses outside the universe: {sorted(foreign)}")
        return frozenset(
            self.c_names[i]
            for i, clause in enumerate(self.universe)
            if clause in pi_set
        )

    @property
    def alphabet(self) -> Tuple[str, ...]:
        return tuple(
            sorted(
                set(atom_names(self.n))
                | set(self.y_names)
                | set(self.c_names)
            )
        )


def build(n: int, universe: Sequence[Clause3] | None = None) -> DalalWeberFamily:
    """Construct the Theorem 3.6 pair over ``universe`` (default
    ``pi_max(n)``)."""
    if universe is None:
        universe = pi_max(n)
    universe = tuple(universe)
    if not universe:
        raise ValueError("clause universe must be non-empty")
    b_names = atom_names(n)
    y_names = tuple(f"yb{i}" for i in range(1, n + 1))
    c_names = tuple(f"c{i}" for i in range(1, len(universe) + 1))

    phi = big_and(xor(Var(b), Var(y)) for b, y in zip(b_names, y_names))
    gamma = big_and(
        lor(clause_formula(universe[j]), lnot(Var(c_names[j])))
        for j in range(len(universe))
    )
    t_formula = land(phi, gamma)
    p_formula = big_and(
        land(lnot(Var(b)), lnot(Var(y))) for b, y in zip(b_names, y_names)
    )
    return DalalWeberFamily(n, universe, t_formula, p_formula, c_names, y_names)


def expected_k(family: DalalWeberFamily) -> int:
    """``k_{T_n, P_n} = n`` (paper: every model of T_n makes exactly ``n``
    atoms of ``B_n ∪ Y`` true; every model of P_n makes them all false)."""
    return family.n
