"""The non-compactability reduction families of the paper's negative results.

Each module builds the ``(T_n, P_n)`` pairs of one proof and exposes the
per-instance artifacts (``Q_pi``, ``W_pi``, ``M_pi``, ``C_pi``); the test
suite verifies the claimed iff-reductions against brute-force 3-SAT for
feasible ``n``, and the benchmark harness measures the size blow-up of
explicit representations on these families (Tables 3/4 NO cells).

:mod:`.sparse_family` is the one *positive* workload generator here: the
large-alphabet, bounded-density (letters × model-density parameterised)
pairs the sparse engine tier serves, with known ground-truth model sets.
"""

from . import (
    bounded_gfuv,
    dalal_weber_family,
    forbus_family,
    gfuv_family,
    iterated_family,
    nebel_family,
    sparse_family,
    winslett_chain,
)

__all__ = [
    "bounded_gfuv",
    "dalal_weber_family",
    "forbus_family",
    "gfuv_family",
    "iterated_family",
    "nebel_family",
    "sparse_family",
    "winslett_chain",
]
