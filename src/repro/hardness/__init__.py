"""The non-compactability reduction families of the paper's negative results.

Each module builds the ``(T_n, P_n)`` pairs of one proof and exposes the
per-instance artifacts (``Q_pi``, ``W_pi``, ``M_pi``, ``C_pi``); the test
suite verifies the claimed iff-reductions against brute-force 3-SAT for
feasible ``n``, and the benchmark harness measures the size blow-up of
explicit representations on these families (Tables 3/4 NO cells).

:mod:`.sparse_family` and :mod:`.clause_family` are the two *positive*
workload generators here: the former builds large-alphabet, bounded-density
(letters × model-density parameterised) DNF-shaped pairs for the sparse
engine tier, the latter clause-heavy planted-selector CNFs that stress the
solver core — both with known ground-truth model sets.
"""

from . import (
    bounded_gfuv,
    clause_family,
    dalal_weber_family,
    forbus_family,
    gfuv_family,
    iterated_family,
    nebel_family,
    sparse_family,
    winslett_chain,
)

__all__ = [
    "bounded_gfuv",
    "clause_family",
    "dalal_weber_family",
    "forbus_family",
    "gfuv_family",
    "iterated_family",
    "nebel_family",
    "sparse_family",
    "winslett_chain",
]
