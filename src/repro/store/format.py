"""Versioned on-disk format for compiled artifacts (``.rpa`` files).

One artifact file holds one compiled carrier — a
:class:`~repro.logic.sparse.SparseModelSet` row block or a
:class:`~repro.logic.shards.ShardedTable` bitplane — in a layout that is
*backend-independent*: the payload is the little-endian 64-bit-word image
of the carrier, identical whether it was produced by the numpy or the
pure-int backend, so a store written by one backend is read by the other
bit-for-bit.

Layout (version 1)::

    offset 0   magic      b"RPAS"                     4 bytes
           4   version    u16                          2
           6   kind       u8   (1 sparse, 2 sharded)   1
           7   reserved   u8                           1
           8   count      u64  rows (sparse) /         8
                               u64 words (sharded)
          16   payload_len u64                         8
          24   payload_crc u32  (zlib.crc32)           4
          28   alpha_len  u32                          4
          32   alphabet   utf-8, letters \\x00-joined   alpha_len
           .   header_crc u32  over bytes [0, here)    4
           .   zero pad to the next 8-byte boundary
           .   payload    payload_len bytes

The two checksums split responsibility: ``header_crc`` (plus the size
arithmetic) detects *torn* files — a write that never finished — which
the startup recovery sweep deletes; ``payload_crc`` detects *corrupt*
payloads (bit rot, partial sector writes that survived a rename), which
every read verifies before handing out a single bit, quarantining the
file on mismatch.  The 8-byte payload alignment is what makes zero-copy
``numpy.frombuffer`` reads off an mmap legal.

Artifact *keys* are content-derived (:func:`artifact_key`): a SHA-256
over the kind, the alphabet letters and the formula's structural repr —
deterministic across processes and ``PYTHONHASHSEED`` values, so every
worker of :mod:`repro.runtime.pool` computes the same file name for the
same compile.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass
from typing import Tuple

MAGIC = b"RPAS"
VERSION = 1

KIND_SPARSE = 1
KIND_SHARDED = 2

KIND_NAMES = {KIND_SPARSE: "sparse", KIND_SHARDED: "sharded"}
KIND_CODES = {name: code for code, name in KIND_NAMES.items()}

#: Fixed-width header prefix (everything before the alphabet blob).
_FIXED = struct.Struct("<4sHBBQQII")

#: Suffix every published artifact file carries.
SUFFIX = ".rpa"

#: The smallest structurally valid file: fixed header + empty alphabet +
#: header crc (padding may be zero bytes wide when already aligned).
MIN_FILE_BYTES = _FIXED.size + 4


class TornArtifact(ValueError):
    """The file is structurally incomplete — an interrupted write.

    Raised for truncation, magic/version mismatch, impossible lengths or
    a header-checksum mismatch.  The startup recovery sweep deletes such
    files outright; a read that encounters one quarantines it.
    """


class CorruptArtifact(ValueError):
    """The header parsed but the payload checksum does not match.

    The file finished writing and then rotted (or was written through a
    ``store-bit-flip`` fault); reads quarantine it and fall back to a
    recompile so no corrupt bit is ever served.
    """


@dataclass(frozen=True)
class ArtifactHeader:
    """Decoded header of one artifact file."""

    kind: int
    letters: Tuple[str, ...]
    count: int
    payload_offset: int
    payload_len: int
    payload_crc: int

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind-{self.kind}")

    @property
    def file_size(self) -> int:
        return self.payload_offset + self.payload_len


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def artifact_key(kind: str, formula, letters: Tuple[str, ...]) -> str:
    """Deterministic store key for a compiled artifact.

    SHA-256 over the kind name, the alphabet letters and the formula's
    structural ``repr`` — stable across processes and hash seeds (the
    engine's formula reprs recurse over plain tuples and strings), so
    concurrent workers and restarted processes always address the same
    file for the same compile.
    """
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(b"\x00")
    digest.update("\x00".join(letters).encode("utf-8"))
    digest.update(b"\x00\x00")
    digest.update(repr(formula).encode("utf-8"))
    return digest.hexdigest()


def encode(kind: int, letters: Tuple[str, ...], count: int,
           payload: bytes) -> Tuple[bytes, int]:
    """Serialise one artifact; returns ``(blob, payload_offset)``.

    ``payload_offset`` is exposed so the fault-injection site can flip a
    payload bit *after* the checksum was computed (the on-disk image is
    then genuinely corrupt, exactly like bit rot).
    """
    if kind not in KIND_NAMES:
        raise ValueError(f"unknown artifact kind {kind}")
    blob = "\x00".join(letters).encode("utf-8")
    fixed = _FIXED.pack(
        MAGIC, VERSION, kind, 0,
        count, len(payload), zlib.crc32(payload), len(blob),
    )
    header = fixed + blob
    header += struct.pack("<I", zlib.crc32(header))
    payload_offset = _align8(len(header))
    return (
        header + b"\x00" * (payload_offset - len(header)) + payload,
        payload_offset,
    )


def decode_header(buffer, file_size: int) -> ArtifactHeader:
    """Parse and validate an artifact header from *buffer*.

    *buffer* must expose at least the header bytes (the whole file or an
    mmap both work).  Structural problems raise :class:`TornArtifact`;
    the payload checksum is **not** verified here — callers holding the
    payload bytes do that separately (see :func:`verify_payload`), so the
    cheap startup sweep can validate headers without touching payloads.
    """
    if file_size < MIN_FILE_BYTES:
        raise TornArtifact(f"file is {file_size} bytes, header needs "
                           f"{MIN_FILE_BYTES}")
    try:
        magic, version, kind, _, count, payload_len, payload_crc, alpha_len \
            = _FIXED.unpack(bytes(buffer[:_FIXED.size]))
    except struct.error as error:  # pragma: no cover - guarded by size check
        raise TornArtifact(str(error))
    if magic != MAGIC:
        raise TornArtifact(f"bad magic {magic!r}")
    if version != VERSION:
        raise TornArtifact(f"unsupported version {version}")
    if kind not in KIND_NAMES:
        raise TornArtifact(f"unknown kind byte {kind}")
    header_len = _FIXED.size + alpha_len
    if file_size < header_len + 4:
        raise TornArtifact("file truncated inside the alphabet blob")
    header = bytes(buffer[:header_len])
    (stored_crc,) = struct.unpack(
        "<I", bytes(buffer[header_len:header_len + 4])
    )
    if zlib.crc32(header) != stored_crc:
        raise TornArtifact("header checksum mismatch")
    payload_offset = _align8(header_len + 4)
    if file_size != payload_offset + payload_len:
        raise TornArtifact(
            f"file is {file_size} bytes, header promises "
            f"{payload_offset + payload_len}"
        )
    blob = header[_FIXED.size:]
    letters = tuple(blob.decode("utf-8").split("\x00")) if blob else ()
    return ArtifactHeader(
        kind=kind, letters=letters, count=count,
        payload_offset=payload_offset, payload_len=payload_len,
        payload_crc=payload_crc,
    )


def verify_payload(header: ArtifactHeader, payload) -> None:
    """Checksum *payload* against the header; :class:`CorruptArtifact` on
    mismatch.  *payload* may be any buffer (a ``memoryview`` over an mmap
    keeps this zero-copy)."""
    if zlib.crc32(payload) != header.payload_crc:
        raise CorruptArtifact(
            f"payload checksum mismatch over {header.payload_len} bytes"
        )
