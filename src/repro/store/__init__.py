"""Crash-safe persistent store for compiled artifacts.

``BatchCache`` amortises compilation *within* a process; this package
makes the expensive carriers — sparse model-set row blocks and sharded
bitplanes — survive process restarts and be shared across workers, which
is the storage half of the revision-as-a-service item in the ROADMAP
(the view-revision workloads of arXiv:1301.5154 / arXiv:1411.2499 are
long-lived revise-then-query streams over a hot KB population; paying
the SAT enumeration again on every restart forfeits everything PRs 4-6
amortised).

Guarantees, in the order they matter:

* **Never serve a wrong bit.**  Every read checksums the payload
  (:func:`repro.store.format.verify_payload`); a mismatch quarantines
  the file, counts ``store-corrupt`` in :data:`repro.runtime.STATS`, and
  returns a miss so the caller recompiles from source.  Corruption can
  cost time, never correctness.
* **Crash-safe writes.**  Publishing is write-to-temp + ``fsync`` +
  atomic ``os.replace`` (+ directory fsync): a reader observes either
  the previous version or the new one, never a prefix.  A crash mid-
  write leaves only a temp file, which the startup recovery sweep
  (:meth:`ArtifactStore.recover`) deletes along with any structurally
  torn artifact.
* **Single writer at a time.**  Writers (and the sweep/GC) take an
  advisory ``flock`` on ``<root>/.lock``, so concurrent processes never
  interleave publishes.  Readers take no lock — the atomic rename makes
  that safe — and mmap the payload read-only, so forked
  :mod:`repro.runtime.pool` workers share the pages zero-copy.
* **Bounded size.**  ``REPRO_STORE_MAX_BYTES`` (read live) budgets the
  store; eviction drops the least-recently-*hit* artifacts (hits bump
  the file mtime) until the budget holds.

The store a process uses is named by the live ``REPRO_STORE`` env var
(:func:`active`; unset/empty disables persistence entirely).  Failures
on the write path — full disk, fsync errors, injected faults — are
swallowed and counted: persistence is an optimisation, and a broken
store must never break a compile that already succeeded.

Deterministic fault injection (``REPRO_FAULTS``, see
:mod:`repro.runtime.faults`): ``store-torn-write@N[:bytes]`` truncates
the N-th artifact write mid-temp-file (simulated crash),
``store-bit-flip@N[:bit]`` flips a payload bit of the N-th write after
its checksum was computed, ``store-fsync-fail@N`` fails the N-th
artifact fsync.
"""

from __future__ import annotations

import contextlib
import errno
import json
import mmap
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro import runtime as _runtime
from repro.obs import metrics as _metrics
from repro.runtime import faults as _faults

from ..logic.shards import ShardedTable
from ..logic.sparse import SparseModelSet
from . import format as _format
from .format import (  # re-exported: the public addressing/format surface
    ArtifactHeader,
    CorruptArtifact,
    SUFFIX,
    TornArtifact,
    artifact_key,
)

try:  # pragma: no cover - POSIX everywhere we run; gate anyway
    import fcntl as _fcntl
except ImportError:  # pragma: no cover
    _fcntl = None

__all__ = [
    "ArtifactHeader",
    "ArtifactStore",
    "CorruptArtifact",
    "DEFAULT_MAX_BYTES",
    "ENV_DIR",
    "ENV_MAX_BYTES",
    "SUFFIX",
    "TornArtifact",
    "active",
    "artifact_key",
    "reset_active",
]

#: Env var naming the store directory; unset or empty disables the store.
ENV_DIR = "REPRO_STORE"

#: Env var bounding the store's total artifact bytes (read live).
ENV_MAX_BYTES = "REPRO_STORE_MAX_BYTES"

#: Default byte budget when neither the env var nor the constructor set one.
DEFAULT_MAX_BYTES = 1 << 30


class ArtifactStore:
    """One on-disk artifact store rooted at a directory.

    Construction creates the directory if needed and runs the startup
    recovery sweep (temp files and torn artifacts are deleted) unless
    ``recover=False``.  Instances are cheap; per-instance ``stats``
    count hits/misses/puts/evictions/corruption for observability.
    """

    def __init__(self, root, max_bytes: Optional[int] = None,
                 recover: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._max_bytes = max_bytes
        #: Per-instance counters; the engine-wide ``store-corrupt`` total
        #: additionally lands in :data:`repro.runtime.STATS`.  A
        #: :class:`repro.obs.MirrorCounter`: every bump also feeds the
        #: ``store.<key>`` registry view (aggregated across instances,
        #: and across pool workers via the envelope merge).
        self.stats: Dict[str, int] = _metrics.MirrorCounter("store")
        for _key in ("hits", "misses", "puts", "refreshed",
                     "put_failures", "evictions", "corrupt",
                     "recovered_tmp", "recovered_torn"):
            self.stats[_key] = 0
        if recover:
            self.recover()

    # -- paths and locking --------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The artifact file a *key* publishes to."""
        if not key or any(c in key for c in "/\\\x00"):
            raise ValueError(f"invalid artifact key {key!r}")
        return self.root / f"{key}{SUFFIX}"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @contextlib.contextmanager
    def _lock(self) -> Iterator[None]:
        """Advisory exclusive lock serialising writers, GC and the sweep.

        Readers deliberately take no lock: publishes are atomic renames,
        so a read sees a complete old or new version either way.
        """
        if _fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self.root / ".lock", "wb") as handle:
            _fcntl.flock(handle, _fcntl.LOCK_EX)
            try:
                yield
            finally:
                _fcntl.flock(handle, _fcntl.LOCK_UN)

    def max_bytes(self) -> int:
        """The live byte budget: env override first, then the constructor
        value, then :data:`DEFAULT_MAX_BYTES`."""
        raw = os.environ.get(ENV_MAX_BYTES, "").strip()
        if raw:
            return max(0, int(raw))
        if self._max_bytes is not None:
            return self._max_bytes
        return DEFAULT_MAX_BYTES

    # -- startup recovery ---------------------------------------------------

    def recover(self) -> Dict[str, int]:
        """Sweep temp files and torn artifacts left by crashed writers.

        Cheap by design — header-level validation only (magic, sizes,
        header checksum); payload checksums are verified on every read
        anyway.  Returns ``{"tmp": n, "torn": m}``.
        """
        removed_tmp = 0
        removed_torn = 0
        with self._lock():
            for path in self.root.glob(f"*{SUFFIX}.tmp.*"):
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed_tmp += 1
            for path in self.root.glob(f"*{SUFFIX}"):
                try:
                    size = path.stat().st_size
                    with open(path, "rb") as handle:
                        head = handle.read(
                            min(size, _format.MIN_FILE_BYTES + 65536)
                        )
                    _format.decode_header(head, size)
                except TornArtifact:
                    with contextlib.suppress(OSError):
                        path.unlink()
                        removed_torn += 1
                except OSError:
                    continue
        self.stats["recovered_tmp"] += removed_tmp
        self.stats["recovered_torn"] += removed_torn
        return {"tmp": removed_tmp, "torn": removed_torn}

    # -- writes -------------------------------------------------------------

    def put_sparse(self, key: str, sparse: SparseModelSet) -> bool:
        """Persist a sparse carrier under *key*; True when it is on disk
        afterwards (newly published or already present)."""
        blob, payload_offset = _format.encode(
            _format.KIND_SPARSE, sparse.alphabet.letters, sparse.count(),
            sparse.payload_bytes(),
        )
        return self._put(key, blob, payload_offset)

    def put_sharded(self, key: str, table: ShardedTable) -> bool:
        """Persist a sharded bitplane under *key* (see :meth:`put_sparse`)."""
        payload = table.payload_bytes()
        blob, payload_offset = _format.encode(
            _format.KIND_SHARDED, table.alphabet.letters, len(payload) // 8,
            payload,
        )
        return self._put(key, blob, payload_offset)

    def _put(self, key: str, blob: bytes, payload_offset: int) -> bool:
        """Crash-safe publish: temp + fsync + atomic rename, under the
        writer lock, with the three store fault points armed.

        Never raises on I/O trouble — a failed put is a counted no-op,
        because the caller already holds the compiled artifact in memory
        and must not lose it to a persistence problem.
        """
        path = self.path_for(key)
        if _faults.ACTIVE:
            param = _faults.trip("store-bit-flip")
            if param is not None and len(blob) > payload_offset:
                bit = int(param, 0) if param else 0
                bit %= (len(blob) - payload_offset) * 8
                corrupted = bytearray(blob)
                corrupted[payload_offset + (bit >> 3)] ^= 1 << (bit & 7)
                blob = bytes(corrupted)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with self._lock():
                if path.exists():
                    # Same key, same content (keys are content-derived):
                    # just refresh recency so eviction keeps hot artifacts.
                    os.utime(path)
                    self.stats["refreshed"] += 1
                    return True
                torn = _faults.trip("store-torn-write") if _faults.ACTIVE \
                    else None
                with open(tmp, "wb") as handle:
                    if torn is not None:
                        # Simulated crash mid-write: a prefix lands in the
                        # temp file and the publish never happens.  The
                        # torn temp is deliberately left behind — exactly
                        # what a real crash leaves — for recover() to sweep.
                        cut = int(torn, 0) if torn else len(blob) // 2
                        handle.write(blob[:max(0, min(cut, len(blob)))])
                        handle.flush()
                        os.fsync(handle.fileno())
                        self.stats["put_failures"] += 1
                        return False
                    handle.write(blob)
                    handle.flush()
                    if _faults.ACTIVE and \
                            _faults.trip("store-fsync-fail") is not None:
                        raise OSError(errno.EIO, "injected store-fsync-fail")
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
                self._fsync_dir()
                self.stats["puts"] += 1
                self._evict_to_budget(self.max_bytes(), protect={path})
            return True
        except OSError:
            self.stats["put_failures"] += 1
            with contextlib.suppress(OSError):
                tmp.unlink()
            return False

    def _fsync_dir(self) -> None:
        with contextlib.suppress(OSError):
            fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    # -- reads --------------------------------------------------------------

    def get_sparse(self, key: str, alphabet,
                   backend: Optional[str] = None) -> Optional[SparseModelSet]:
        """The sparse carrier stored under *key*, or None (miss).

        The payload is checksummed before a single row is exposed; on the
        numpy backend the returned carrier is a zero-copy read-only view
        over the file's mmap — forked pool workers share the pages.  Any
        mismatch (checksum, kind, alphabet, geometry) quarantines the
        file and reads as a miss, so the caller recompiles from source.
        """
        loaded = self._read(key, _format.KIND_SPARSE)
        if loaded is None:
            return None
        header, payload = loaded
        path = self.path_for(key)
        letters = tuple(
            alphabet.letters if hasattr(alphabet, "letters")
            else sorted(alphabet)
        )
        if header.letters != letters:
            self._quarantine(path, "alphabet mismatch")
            return None
        try:
            sparse = SparseModelSet.from_payload(
                letters, payload, header.count, backend
            )
        except ValueError:
            self._quarantine(path, "payload geometry mismatch")
            return None
        self._record_hit(key, path)
        return sparse

    def get_sharded(self, key: str, alphabet,
                    backend: Optional[str] = None) -> Optional[ShardedTable]:
        """The sharded bitplane stored under *key*, or None (miss)."""
        loaded = self._read(key, _format.KIND_SHARDED)
        if loaded is None:
            return None
        header, payload = loaded
        path = self.path_for(key)
        letters = tuple(
            alphabet.letters if hasattr(alphabet, "letters")
            else sorted(alphabet)
        )
        if header.letters != letters:
            self._quarantine(path, "alphabet mismatch")
            return None
        try:
            table = ShardedTable.from_payload(letters, payload, backend)
        except ValueError:
            self._quarantine(path, "payload geometry mismatch")
            return None
        self._record_hit(key, path)
        return table

    def _read(self, key: str,
              expected_kind: int) -> Optional[Tuple[ArtifactHeader, memoryview]]:
        """Open, map and fully validate one artifact; None on any miss.

        Torn or corrupt files are quarantined here — the returned payload
        has survived the checksum, so downstream decoding can trust every
        byte (bar geometry checks, which the callers keep).
        """
        path = self.path_for(key)
        try:
            handle = open(path, "rb")
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except OSError:
            self.stats["misses"] += 1
            return None
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Zero-length or unmappable: an interrupted write at best.
            handle.close()
            self._quarantine(path, "unmappable file")
            return None
        handle.close()  # the mapping keeps the pages; fd is not needed
        view = memoryview(mapped)
        payload = None
        try:
            header = _format.decode_header(view, len(mapped))
            if header.kind != expected_kind:
                raise CorruptArtifact(
                    f"artifact kind {header.kind_name} where "
                    f"{_format.KIND_NAMES[expected_kind]} was expected"
                )
            payload = view[header.payload_offset:
                           header.payload_offset + header.payload_len]
            _format.verify_payload(header, payload)
        except (TornArtifact, CorruptArtifact):
            if payload is not None:
                payload.release()
            view.release()
            mapped.close()
            self._quarantine(path, "checksum or structure mismatch")
            return None
        return header, payload

    def _record_hit(self, key: str, path: Path) -> None:
        self.stats["hits"] += 1
        with contextlib.suppress(OSError):
            os.utime(path)  # hit recency drives eviction order
        self._bump_hit_count(key)

    # -- hit accounting (best-effort, for `repro store ls`) -----------------

    @property
    def _hits_path(self) -> Path:
        return self.root / "hits.json"

    def hit_counts(self) -> Dict[str, int]:
        """Cumulative per-key hit counts (best-effort sidecar)."""
        try:
            data = json.loads(self._hits_path.read_text())
        except (OSError, ValueError):
            return {}
        return {k: int(v) for k, v in data.items()} if isinstance(data, dict) \
            else {}

    def _bump_hit_count(self, key: str) -> None:
        # Best-effort observability, written with the same temp+rename
        # discipline so a crash can never truncate it; a lost increment
        # under concurrent readers is acceptable.
        try:
            counts = self.hit_counts()
            counts[key] = counts.get(key, 0) + 1
            tmp = self._hits_path.with_name(f"hits.json.tmp.{os.getpid()}")
            tmp.write_text(json.dumps(counts, sort_keys=True))
            os.replace(tmp, self._hits_path)
        except OSError:
            pass

    # -- quarantine ---------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad file out of the serving namespace, never deleting
        the evidence, and count it everywhere observability looks."""
        self.stats["corrupt"] += 1
        _runtime.STATS.inc("store-corrupt")
        self.stats["misses"] += 1
        with contextlib.suppress(OSError):
            self.quarantine_dir.mkdir(exist_ok=True)
            target = self.quarantine_dir / path.name
            serial = 0
            while target.exists():
                serial += 1
                target = self.quarantine_dir / f"{path.name}.{serial}"
            with self._lock():
                os.replace(path, target)

    # -- inventory, verification, eviction ----------------------------------

    def entries(self) -> List[Dict[str, object]]:
        """One dict per artifact: key, kind, letters, count, bytes, age_s."""
        now = time.time()
        rows: List[Dict[str, object]] = []
        hits = self.hit_counts()
        for path in sorted(self.root.glob(f"*{SUFFIX}")):
            key = path.name[: -len(SUFFIX)]
            try:
                stat = path.stat()
                with open(path, "rb") as handle:
                    head = handle.read(
                        min(stat.st_size, _format.MIN_FILE_BYTES + 65536)
                    )
                header = _format.decode_header(head, stat.st_size)
            except (OSError, TornArtifact):
                continue
            rows.append({
                "key": key,
                "kind": header.kind_name,
                "letters": len(header.letters),
                "count": header.count,
                "bytes": stat.st_size,
                "age_s": max(0.0, now - stat.st_mtime),
                "hits": hits.get(key, 0),
            })
        return rows

    def total_bytes(self) -> int:
        total = 0
        for path in self.root.glob(f"*{SUFFIX}"):
            with contextlib.suppress(OSError):
                total += path.stat().st_size
        return total

    def verify(self) -> Dict[str, object]:
        """Checksum every artifact end to end; quarantine the bad ones.

        Returns ``{"checked": n, "ok": m, "quarantined": [names...]}`` —
        the workhorse of ``repro store verify``.
        """
        checked = 0
        quarantined: List[str] = []
        for path in sorted(self.root.glob(f"*{SUFFIX}")):
            checked += 1
            try:
                size = path.stat().st_size
                with open(path, "rb") as handle:
                    data = handle.read()
                header = _format.decode_header(data, size)
                _format.verify_payload(
                    header,
                    memoryview(data)[header.payload_offset:
                                     header.payload_offset
                                     + header.payload_len],
                )
            except OSError:
                continue
            except (TornArtifact, CorruptArtifact):
                self._quarantine(path, "verify sweep")
                quarantined.append(path.name)
        return {
            "checked": checked,
            "ok": checked - len(quarantined),
            "quarantined": quarantined,
        }

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, int]:
        """Evict least-recently-hit artifacts down to the byte budget."""
        budget = self.max_bytes() if max_bytes is None else max(0, max_bytes)
        with self._lock():
            evicted, freed = self._evict_to_budget(budget, protect=())
        return {"evicted": evicted, "freed_bytes": freed,
                "remaining_bytes": self.total_bytes()}

    def _evict_to_budget(self, budget: int,
                         protect=frozenset()) -> Tuple[int, int]:
        """Delete oldest-hit artifacts until the budget holds (lock held).

        The just-published file is protected so a tight budget degrades
        to "store holds exactly the newest artifact", never to a publish
        that immediately deletes itself ahead of older-but-hot entries.
        """
        entries = []
        total = 0
        for path in self.root.glob(f"*{SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= budget:
            return 0, 0
        evicted = 0
        freed = 0
        for _, size, path in sorted(entries, key=lambda e: e[0]):
            if total <= budget:
                break
            if path in protect:
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                total -= size
                freed += size
                evicted += 1
        self.stats["evictions"] += evicted
        return evicted, freed


# -- the live store ---------------------------------------------------------

_active_stores: Dict[str, ArtifactStore] = {}


def active() -> Optional[ArtifactStore]:
    """The store named by the live ``REPRO_STORE`` env var, or None.

    Read at call time like every other engine knob; one
    :class:`ArtifactStore` instance is kept per directory (its recovery
    sweep runs once per process per directory).
    """
    root = os.environ.get(ENV_DIR, "").strip()
    if not root:
        return None
    key = os.path.abspath(root)
    store = _active_stores.get(key)
    if store is None:
        store = ArtifactStore(key)
        _active_stores[key] = store
    return store


def reset_active() -> None:
    """Drop the per-process store instances (tests and restart
    simulations: the next :func:`active` re-opens and re-sweeps)."""
    _active_stores.clear()
