"""Horn approximations (Kautz–Selman), as discussed in Section 2.3.

The paper credits Kautz and Selman with the first use of non-uniform
complexity for non-compactability: a polynomial-size *Horn upper bound*
(least Horn theory entailed by a formula, a.k.a. the Horn LUB) would imply
NP ⊆ P/poly.  This module implements exact Horn bounds at small alphabet
sizes, as a companion observable to the revision results:

* a theory is Horn-representable iff its model set is **closed under
  intersection** (bitwise AND of models);
* the Horn LUB's models are therefore the *intersection closure* of the
  model set;
* the greatest Horn lower bound(s) sit below: maximal intersection-closed
  subsets of the model set.

Functions take and return model sets (the library's ground-truth currency),
plus renderers to Horn clause sets.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..logic.formula import Formula, Var, big_and, big_or, land, lnot, lor
from ..logic.interpretation import Interpretation

ModelSet = FrozenSet[Interpretation]


def is_intersection_closed(models: Iterable[Interpretation]) -> bool:
    """Whether a model set is closed under pairwise intersection."""
    model_list = [frozenset(m) for m in models]
    model_set = set(model_list)
    for left, right in combinations(model_list, 2):
        if left & right not in model_set:
            return False
    return True


def intersection_closure(models: Iterable[Interpretation]) -> ModelSet:
    """The least intersection-closed superset — the Horn LUB's model set."""
    closed: Set[Interpretation] = {frozenset(m) for m in models}
    frontier = list(closed)
    while frontier:
        new: Set[Interpretation] = set()
        for fresh in frontier:
            for existing in closed:
                meet = fresh & existing
                if meet not in closed and meet not in new:
                    new.add(meet)
        closed |= new
        frontier = list(new)
    return frozenset(closed)


def horn_lub_models(models: Iterable[Interpretation]) -> ModelSet:
    """Models of the Horn least upper bound (weakest Horn consequence)."""
    return intersection_closure(models)


def horn_glb_models(models: Iterable[Interpretation]) -> List[ModelSet]:
    """All greatest Horn lower bounds: maximal intersection-closed subsets.

    Exponential search — small model sets only (this mirrors the
    intractability Kautz–Selman's compilation is trying to amortise).
    """
    model_list = [frozenset(m) for m in models]
    count = len(model_list)
    best: List[FrozenSet[Interpretation]] = []
    # Enumerate subsets largest-first; keep maximal closed ones.
    masks = sorted(range(1 << count), key=lambda m: -bin(m).count("1"))
    for mask in masks:
        subset = frozenset(
            model_list[i] for i in range(count) if mask >> i & 1
        )
        if any(subset <= kept for kept in best):
            continue
        if is_intersection_closed(subset):
            best.append(subset)
    return [frozenset(s) for s in best]


def horn_clauses_of_models(
    models: Iterable[Interpretation], alphabet: Sequence[str]
) -> List[Formula]:
    """A Horn clause set whose models (over ``alphabet``) are exactly the
    given intersection-closed set.

    Construction: for every interpretation *not* in the set, the set is
    separated by either a definite clause or a negative clause; we emit the
    standard canonical Horn axiomatisation: for each model-set-violating
    implication pattern, a clause ``(⋀ body) -> head`` or ``¬(⋀ body)``.
    Exponential in ``|alphabet|``; exact for small alphabets.
    """
    names = sorted(alphabet)
    model_set = {frozenset(m) for m in models}
    if not is_intersection_closed(model_set):
        raise ValueError("model set is not intersection-closed (not Horn)")
    clauses: List[Formula] = []
    # For each subset B of letters (clause body), the intersection of all
    # models containing B determines the entailed heads.
    for size in range(len(names) + 1):
        for body in combinations(names, size):
            body_set = frozenset(body)
            containing = [m for m in model_set if body_set <= m]
            if not containing:
                # body is impossible: negative clause ¬(b1 & ... & bk).
                clause = lnot(land(*(Var(b) for b in body)))
                clauses.append(clause)
                continue
            meet = frozenset.intersection(*containing)
            for head in meet - body_set:
                clauses.append(
                    lor(*([lnot(Var(b)) for b in body] + [Var(head)]))
                )
    # Deduplicate while preserving order.
    seen: Set[Formula] = set()
    unique: List[Formula] = []
    for clause in clauses:
        if clause not in seen:
            seen.add(clause)
            unique.append(clause)
    return unique


def horn_lub_formula(
    models: Iterable[Interpretation], alphabet: Sequence[str]
) -> Formula:
    """The Horn LUB as a conjunction of Horn clauses."""
    closure = horn_lub_models(models)
    return big_and(horn_clauses_of_models(closure, alphabet))
