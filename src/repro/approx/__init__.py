"""Approximate compilation companions (Horn bounds — Kautz–Selman)."""

from .horn import (
    horn_clauses_of_models,
    horn_glb_models,
    horn_lub_formula,
    horn_lub_models,
    intersection_closure,
    is_intersection_closed,
)

__all__ = [
    "horn_clauses_of_models",
    "horn_glb_models",
    "horn_lub_formula",
    "horn_lub_models",
    "intersection_closure",
    "is_intersection_closed",
]
