"""Recursive-descent parser for the library's formula syntax.

Grammar (loosest binding first)::

    iff      := implies ( "<->" implies )*
    implies  := xor ( "->" implies )?          # right-associative
    xor      := or ( "^" or )*                 # left-associative
    or       := and ( "|" and )*
    and      := unary ( "&" unary )*
    unary    := "~" unary | atom
    atom     := "true" | "false" | NAME | "(" iff ")"

``NAME`` is ``[A-Za-z_][A-Za-z0-9_']*`` — primes are allowed so that paper
notation like ``x'`` can be typed directly.  ``!`` is accepted as a synonym
for ``~``, ``<=>`` for ``<->``, and ``=>`` for ``->``.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from .formula import FALSE, TRUE, Formula, Var, iff, implies, land, lnot, lor, xor


class ParseError(ValueError):
    """Raised when the input text is not a well-formed formula."""


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->|<=>)
  | (?P<implies>->|=>)
  | (?P<xor>\^)
  | (?P<or>\|)
  | (?P<and>&)
  | (?P<not>~|!)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<name>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._source!r}")
        self._index += 1
        return token

    def _accept(self, kind: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return True
        return False

    def parse(self) -> Formula:
        result = self._iff()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected token {leftover.text!r} at position {leftover.pos}"
            )
        return result

    def _iff(self) -> Formula:
        result = self._implies()
        while self._accept("iff"):
            result = iff(result, self._implies())
        return result

    def _implies(self) -> Formula:
        antecedent = self._xor()
        if self._accept("implies"):
            return implies(antecedent, self._implies())
        return antecedent

    def _xor(self) -> Formula:
        result = self._or()
        while self._accept("xor"):
            result = xor(result, self._or())
        return result

    def _or(self) -> Formula:
        parts = [self._and()]
        while self._accept("or"):
            parts.append(self._and())
        if len(parts) == 1:
            return parts[0]
        return lor(*parts)

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._accept("and"):
            parts.append(self._unary())
        if len(parts) == 1:
            return parts[0]
        return land(*parts)

    def _unary(self) -> Formula:
        if self._accept("not"):
            return lnot(self._unary())
        return self._atom()

    def _atom(self) -> Formula:
        token = self._advance()
        if token.kind == "lparen":
            inner = self._iff()
            if not self._accept("rparen"):
                raise ParseError(f"missing ')' at position {token.pos}")
            return inner
        if token.kind == "name":
            lowered = token.text.lower()
            if lowered == "true":
                return TRUE
            if lowered == "false":
                return FALSE
            return Var(token.text)
        raise ParseError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )


def parse(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.formula.Formula`.

    >>> from repro.logic.parser import parse
    >>> str(parse("a & (b | ~c)"))
    'a & (b | ~c)'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty input")
    return _Parser(tokens, text).parse()
