"""Interpretations as sets of true letters, and symmetric-difference helpers.

The paper (Section 2) identifies an interpretation with the set of letters it
maps to true, and revision semantics are phrased in terms of the symmetric
difference ``M △ N`` between such sets, its cardinality, and minimality with
respect to set inclusion (``min⊆``) or cardinality.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

Interpretation = FrozenSet[str]


def interp(letters: Iterable[str] = ()) -> Interpretation:
    """Build an interpretation (frozenset of true letters)."""
    return frozenset(letters)


def symmetric_difference(m: Iterable[str], n: Iterable[str]) -> Interpretation:
    """``M △ N`` — the set of letters on which two interpretations disagree."""
    return frozenset(m) ^ frozenset(n)


def hamming_distance(m: Iterable[str], n: Iterable[str]) -> int:
    """``|M △ N|`` — cardinality of the symmetric difference."""
    return len(frozenset(m) ^ frozenset(n))


def all_interpretations(alphabet: Sequence[str]) -> Iterator[Interpretation]:
    """Enumerate all ``2^|alphabet|`` interpretations over ``alphabet``.

    Deterministic order: subsets in binary-counter order of the *sorted*
    alphabet, so tests and benchmarks are reproducible.
    """
    names = sorted(alphabet)
    count = len(names)
    for mask in range(1 << count):
        yield frozenset(names[i] for i in range(count) if mask >> i & 1)


def min_subset(sets: Iterable[FrozenSet[str]]) -> List[FrozenSet[str]]:
    """``min⊆ S``: the inclusion-minimal elements of a family of sets.

    Size-sorted pruning: candidates are visited smallest first, so only the
    accepted antichain needs checking (a strict subset is strictly smaller,
    hence already processed) — ``O(u·|antichain|)`` instead of the all-pairs
    ``O(u²)`` scan.  The bitmask engine mirrors this as
    :func:`repro.logic.bitmodels.min_subset_masks`.
    """
    unique = sorted(dict.fromkeys(sets), key=len)
    minimal: List[FrozenSet[str]] = []
    for candidate in unique:
        if not any(accepted <= candidate for accepted in minimal):
            minimal.append(candidate)
    return minimal


def max_subset(sets: Iterable[FrozenSet[str]]) -> List[FrozenSet[str]]:
    """``max⊆ S``: the inclusion-maximal elements of a family of sets."""
    unique = sorted(dict.fromkeys(sets), key=len, reverse=True)
    maximal: List[FrozenSet[str]] = []
    for candidate in unique:
        if not any(candidate <= accepted for accepted in maximal):
            maximal.append(candidate)
    return maximal


def min_cardinality(sets: Iterable[FrozenSet[str]]) -> int:
    """The minimum cardinality over a non-empty family of sets.

    Streams the family (no intermediate list) and short-circuits on an
    empty member, since no set is smaller.
    """
    best: int | None = None
    for candidate in sets:
        size = len(candidate)
        if size == 0:
            return 0
        if best is None or size < best:
            best = size
    if best is None:
        raise ValueError("min_cardinality of an empty family")
    return best


def restrict(model: Iterable[str], alphabet: Iterable[str]) -> Interpretation:
    """``M|S`` (paper, Section 6): the true letters of ``M`` within ``S``."""
    return frozenset(model) & frozenset(alphabet)


def subsets(universe: Sequence[str], max_size: int | None = None) -> Iterator[FrozenSet[str]]:
    """All subsets of ``universe`` (optionally only up to ``max_size``),
    smallest first — the iteration order used by the bounded-case compact
    constructions, which enumerate ``S ⊆ V(P)``."""
    names = sorted(universe)
    limit = len(names) if max_size is None else min(max_size, len(names))
    for size in range(limit + 1):
        for combo in combinations(names, size):
            yield frozenset(combo)


def format_interpretation(model: Iterable[str]) -> str:
    """Render an interpretation in the paper's ``{a, b, c}`` notation."""
    inside = ", ".join(sorted(model))
    return "{" + inside + "}"
